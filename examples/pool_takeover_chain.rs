//! The N-replica standby pool as an example: a takeover chain down the
//! rank order, with quorum-checked fencing and rank reassignment.
//!
//! Three replicas serve one client. The active (rank 0) is crashed:
//! rank 1 may take over only after a majority of surviving pool members
//! confirms the death over the heartbeat mesh. The fenced machine then
//! warm-reboots and re-integrates — rejoining at the *back* of the rank
//! order — before rank 1 is crashed too, handing the service to rank 2
//! with the rejoiner as its quorum witness.
//!
//! Run with: `cargo run --example pool_takeover_chain`

use std::rc::Rc;

use simnet::time::SimTime;
use sttcp::config::StTcpConfig;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::pool::PoolScenarioBuilder;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn main() {
    const REPLICAS: usize = 3;
    println!("ST-TCP standby pool: rank-ordered takeover chain\n");

    let mut s = PoolScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download {
            total: 2 * 1024 * 1024,
        },
    )
    .seed(7)
    .replicas(REPLICAS)
    .sttcp(StTcpConfig {
        reintegrate: true,
        ..StTcpConfig::default()
    })
    .build();

    s.crash_at(0, t(1_000)); // kill the active
    s.reboot_at(0, t(2_500)); // warm-reboot it: rejoins as a fresh backup
    s.crash_at(1, t(5_000)); // kill the new active too

    s.world.run_until(SimTime::from_secs(40));

    for i in 0..REPLICAS {
        let server = s.server(i);
        let name = s.world.node_name(s.servers[i]).to_string();
        for ev in server.events() {
            println!("  [{name}] {ev}");
        }
    }

    let log = s.client_log();
    println!(
        "\nclient: finished={} bytes={} connects={} resets={}",
        s.client_finished(),
        log.total_received,
        log.connects.len(),
        log.resets
    );
    assert!(s.client_finished());
    assert_eq!(log.integrity_violations, 0);
    assert_eq!(log.resets, 0);
    assert!(s.server(2).is_active(), "rank 2 must hold the service");
    let new_rank = s.server(0).pool_rank();
    assert!(new_rank >= REPLICAS as u8, "rejoiner must move to the back");

    println!(
        "two actives died; each successor was fenced by a survivor quorum before \
         taking over,\nand the rebooted machine rejoined as rank {new_rank} — one \
         client connection throughout."
    );
}
