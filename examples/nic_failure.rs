//! Demo 5 as an example: NIC failures at the primary and at the backup.
//!
//! With only the IP heartbeat dead (the serial heartbeat survives), the
//! servers must figure out *whose* network died: by comparing client
//! bytes received, client ACKs received, or — when the client is silent —
//! by pinging the gateway and exchanging the results over the serial
//! cable.
//!
//! Run with: `cargo run --example nic_failure`

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};
use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::server::StTcpServer;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;

fn run(fail_primary: bool, quiet_client: bool) {
    let workload = if quiet_client {
        ClientWorkload::Idle
    } else {
        ClientWorkload::EchoChat {
            chunk: 1024,
            period: SimDuration::from_millis(50),
            count: 150,
        }
    };
    let mut s = ScenarioBuilder::new(Rc::new(|| Box::new(EchoApp::default()) as _), workload)
        .seed(5)
        .sttcp(StTcpConfig {
            app_max_lag_time: SimDuration::from_secs(1),
            ..Default::default()
        })
        .build();

    let victim = if fail_primary { s.primary } else { s.backup };
    s.fail_nic_at(victim, SimTime::from_secs(2));
    s.world.run_until(SimTime::from_secs(40));

    println!(
        "--- NIC failure at {} ({} client) ---",
        if fail_primary { "PRIMARY" } else { "BACKUP" },
        if quiet_client { "quiet" } else { "chatty" },
    );
    for node in [s.primary, s.backup] {
        let server = s.world.node::<StTcpServer>(node).expect("server");
        let name = s.world.node_name(node).to_string();
        for ev in server.events() {
            println!("  [{name}] {ev}");
        }
    }
    if !quiet_client {
        let log = s.client_log();
        println!(
            "  client: finished={} roundtrips={} resets={}",
            s.client_finished(),
            log.echo_roundtrips,
            log.resets
        );
        assert!(s.client_finished());
        assert_eq!(log.integrity_violations, 0);
    }
    println!();
}

fn main() {
    println!("ST-TCP local-network failure handling (paper Demo 5)\n");
    run(true, false); // primary NIC dies; byte/ack-lag detection
    run(false, false); // backup NIC dies; primary continues non-FT
    run(true, true); // primary NIC dies with a silent client; ping path
    println!("all NIC failures were localized and recovered per Table 1 row 4.");
}
