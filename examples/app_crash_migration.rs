//! Demo 4 as an example: application crash failures, both flavours.
//!
//! Scenario A — the primary's application crashes but the socket stays
//! open (no FIN): the backup condemns it via AppMaxLagBytes/AppMaxLagTime
//! and takes over.
//!
//! Scenario B — the OS cleans the crashed application up and closes the
//! socket (FIN generated): ST-TCP *holds* the FIN (MaxDelayFIN protocol)
//! so the client never sees a bogus connection teardown, and the takeover
//! proceeds as in A.
//!
//! Run with: `cargo run --example app_crash_migration`

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};
use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::server::{AppCrashMode, StTcpServer};
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;

fn run(mode: AppCrashMode) {
    let cfg = StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(EchoApp::default()) as _),
        ClientWorkload::EchoChat {
            chunk: 1024,
            period: SimDuration::from_millis(50),
            count: 150,
        },
    )
    .seed(4)
    .sttcp(cfg)
    .build();

    s.crash_app_at(s.primary, SimTime::from_secs(2), mode);
    s.world.run_until(SimTime::from_secs(30));

    let log = s.client_log();
    println!("--- {mode:?} ---");
    println!("echo round trips completed: {}/150", log.echo_roundtrips);
    println!(
        "client resets/reconnects:   {}/{}",
        log.resets, log.reconnects
    );
    for node in [s.primary, s.backup] {
        let server = s.world.node::<StTcpServer>(node).expect("server");
        let name = s.world.node_name(node).to_string();
        for ev in server.events() {
            println!("  [{name}] {ev}");
        }
    }
    assert!(s.client_finished());
    assert_eq!(log.integrity_violations, 0);
    println!();
}

fn main() {
    println!("ST-TCP tolerating application crash failures (paper Demo 4)\n");
    run(AppCrashMode::SilentNoCleanup);
    run(AppCrashMode::CleanupFin);
    run(AppCrashMode::CleanupRst);
    println!("all three crash flavours were masked from the client.");
}
