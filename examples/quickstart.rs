//! Quickstart: a client-transparent failover in ~40 lines.
//!
//! Builds the paper's Figure 2 topology — a client (doubling as the
//! gateway), an ST-TCP primary, and an active backup behind one switch
//! with a serial heartbeat cable — starts a 1 MiB download, crashes the
//! primary halfway through, and shows that the client's byte stream
//! completes intact without a reconnect.
//!
//! Run with: `cargo run --example quickstart`

use std::rc::Rc;

use simnet::time::SimTime;
use sttcp::server::StTcpServer;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;

fn main() {
    const TOTAL: u64 = 1024 * 1024;

    let mut s = ScenarioBuilder::new(
        // Each server runs an identical, deterministic replica: a streamer
        // that serves `GET <n>` requests with pattern bytes.
        Rc::new(|| Box::new(StreamApp::new(8 * 1024, false)) as _),
        ClientWorkload::Download { total: TOTAL },
    )
    .seed(42)
    .build();

    // Kill the primary (power cut) one second in, mid-transfer.
    s.crash_primary_at(SimTime::from_secs(1));
    s.world.run_until(SimTime::from_secs(30));

    let log = s.client_log();
    println!("client finished:       {}", s.client_finished());
    println!("bytes received:        {}", log.total_received);
    println!("integrity violations:  {}", log.integrity_violations);
    println!(
        "connections used:      {} (1 = transparent)",
        log.connects.len()
    );
    println!("resets seen by client: {}", log.resets);

    let backup = s.world.node::<StTcpServer>(s.backup).expect("backup");
    for ev in backup.events() {
        println!("backup event: {ev}");
    }
    let stall = log.longest_stall(SimTime::from_millis(900), log.finished_at.unwrap());
    println!("client-visible stall around the crash: {stall}");

    assert!(s.client_finished());
    assert_eq!(log.integrity_violations, 0);
    assert_eq!(log.connects.len(), 1);
    println!("\nseamless failover: the client never noticed the primary died.");
}
