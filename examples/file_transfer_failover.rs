//! Demo 1 as an example: the "pie chart" progress view.
//!
//! Streams a file to the client while the primary is crashed mid-way, and
//! renders the client's progress series as an ASCII timeline — the
//! headless equivalent of the paper's GUI pie chart. A second run shows
//! the plain-TCP baseline, where the same crash forces the client to time
//! out, reconnect to a standby, and start over.
//!
//! Run with: `cargo run --example file_transfer_failover`

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::{ClientLog, ClientWorkload, ReconnectPolicy};
use sttcp_apps::scenario::{build_baseline, ScenarioBuilder};

const TOTAL: u64 = 2 * 1024 * 1024;
const CRASH_AT_MS: u64 = 1_500;

/// Renders progress as one row per 500 ms: percentage plus a bar.
fn render(log: &ClientLog, until: SimTime) {
    let mut samples = log.progress.iter().peekable();
    let mut pos = 0u64;
    let mut t = SimTime::ZERO;
    while t <= until {
        while let Some(&&(st, p)) = samples.peek() {
            if st <= t {
                pos = p;
                samples.next();
            } else {
                break;
            }
        }
        let pct = pos * 100 / TOTAL;
        let bar = "#".repeat((pct / 4) as usize);
        println!("  t={:>6}ms {:>3}% |{:<25}|", t.as_millis(), pct, bar);
        t += SimDuration::from_millis(500);
    }
}

fn main() {
    let app = || Rc::new(|| Box::new(StreamApp::new(8 * 1024, false)) as _);

    println!("=== ST-TCP: primary crashes at t={CRASH_AT_MS}ms ===");
    let mut s = ScenarioBuilder::new(app(), ClientWorkload::Download { total: TOTAL })
        .seed(1)
        .build();
    s.crash_primary_at(SimTime::from_millis(CRASH_AT_MS));
    s.world.run_until(SimTime::from_secs(30));
    let st_log = s.client_log().clone();
    render(
        &st_log,
        st_log.finished_at.unwrap_or(SimTime::from_secs(12)),
    );
    println!(
        "  -> finished={} connects={} resets={} worst stall={}\n",
        s.client_finished(),
        st_log.connects.len(),
        st_log.resets,
        st_log.longest_stall(
            SimTime::from_millis(CRASH_AT_MS - 100),
            st_log.finished_at.unwrap()
        )
    );

    println!("=== plain TCP + hot standby: same crash ===");
    let policy = ReconnectPolicy {
        stall_timeout: SimDuration::from_secs(3),
        targets: vec![("10.0.0.4".parse().unwrap(), 80)],
        reconnect_delay: SimDuration::from_millis(200),
    };
    let mut b = build_baseline(
        1,
        app(),
        ClientWorkload::Download { total: TOTAL },
        Default::default(),
        Some(policy),
    );
    b.crash_primary_at(SimTime::from_millis(CRASH_AT_MS));
    b.world.run_until(SimTime::from_secs(60));
    let base_log = b.client_log().clone();
    render(
        &base_log,
        base_log.finished_at.unwrap_or(SimTime::from_secs(20)),
    );
    println!(
        "  -> finished={} connects={} reconnects={} worst stall={}",
        b.client_finished(),
        base_log.connects.len(),
        base_log.reconnects,
        base_log.longest_stall(
            SimTime::from_millis(CRASH_AT_MS - 100),
            base_log.finished_at.unwrap_or(SimTime::from_secs(60))
        )
    );
    println!("\nnote how the baseline restarts from 0% after the stall-out,");
    println!("while ST-TCP's progress only pauses for the detection window.");
}
