//! Minimal, offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the upstream API used by this workspace's
//! property tests: the [`proptest!`] macro (supporting both `name: Type`
//! and `name in strategy` parameters and `#![proptest_config(..)]`),
//! `any::<T>()`, range and tuple strategies, `prop_map`,
//! [`prop_oneof!`] unions, `collection::vec`, `option::of`, and the
//! `prop_assert*` family.
//!
//! Inputs are generated from a fixed seed so runs are deterministic.
//! Unlike upstream there is no shrinking: on failure the offending input
//! is printed verbatim.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::Rng;
    use std::fmt::Debug;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
        U: Debug,
    {
        type Value = U;
        fn generate(&self, rng: &mut Rng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Strategy built by [`prop_oneof!`]: draws uniformly from one of
    /// several alternatives yielding the same value type.
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T: Debug> Union<T> {
        /// Builds a union over the given boxed alternatives.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "empty prop_oneof!");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (self.start as i128 + (draw % span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    (*self.start() as i128 + (draw % span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + u * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// `any::<T>()` — full-type-range generation.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical full-range generator.
    pub trait Arbitrary: Debug {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut Rng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut Rng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut Rng) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut Rng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut Rng) -> f64 {
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut Rng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    /// Strategy adapter returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Option strategies.
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    /// Strategy for `Option<S::Value>` (roughly 1 in 4 `None`).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    /// Generates `Some` values from `inner` (and `None` sometimes).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Deterministic case runner.
pub mod test_runner {
    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The generator behind every strategy draw (splitmix64).
    #[derive(Debug, Clone)]
    pub struct Rng {
        state: u64,
    }

    impl Rng {
        /// Creates a generator from a 64-bit seed.
        pub fn seed_from(seed: u64) -> Rng {
            Rng { state: seed }
        }

        /// Draws a uniformly random `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Subset of the upstream config: how many cases to run.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property does not hold for this input.
        Fail(String),
        /// The input does not satisfy a `prop_assume!` precondition.
        Reject(String),
    }

    impl TestCaseError {
        /// A property failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection with the given message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    /// Drives a strategy through the configured number of cases.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: Rng,
    }

    impl TestRunner {
        /// Creates a runner with a fixed deterministic seed.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner {
                config,
                rng: Rng::seed_from(0x5EED_CAFE_F00D_0001),
            }
        }

        /// Runs `test` against `cases` generated inputs, panicking on the
        /// first failure with the input printed.
        pub fn run<S, F>(&mut self, strategy: &S, test: F)
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            self.run_named("input", strategy, test)
        }

        /// Like [`TestRunner::run`], labelling inputs with `names` in
        /// failure reports.
        pub fn run_named<S, F>(&mut self, names: &str, strategy: &S, mut test: F)
        where
            S: Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let mut passed = 0u32;
            let mut attempts = 0u64;
            let max_attempts = (self.config.cases as u64).saturating_mul(256).max(1024);
            while passed < self.config.cases {
                attempts += 1;
                assert!(
                    attempts <= max_attempts,
                    "too many rejected inputs ({} passes in {} attempts)",
                    passed,
                    attempts
                );
                let value = strategy.generate(&mut self.rng);
                let desc = format!("{value:?}");
                match catch_unwind(AssertUnwindSafe(|| test(value))) {
                    Ok(Ok(())) => passed += 1,
                    Ok(Err(TestCaseError::Reject(_))) => {}
                    Ok(Err(TestCaseError::Fail(msg))) => {
                        panic!(
                            "proptest case failed after {} passes: {}\n({names}) = {desc}",
                            passed, msg
                        );
                    }
                    Err(payload) => {
                        let msg = payload
                            .downcast_ref::<String>()
                            .map(String::as_str)
                            .or_else(|| payload.downcast_ref::<&str>().copied())
                            .unwrap_or("<non-string panic>");
                        panic!(
                            "proptest case panicked after {} passes: {}\n({names}) = {desc}",
                            passed, msg
                        );
                    }
                }
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Draws uniformly from one of several strategies that all yield the
/// same value type (the upstream macro's unweighted form).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($arm),)+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Skips inputs that do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests. Parameters may be `name: Type` (arbitrary
/// value) or `name in strategy`; an optional leading
/// `#![proptest_config(..)]` sets the case count for the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case!(($cfg) [] [] ($($params)*) $body);
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // All parameters consumed: build the tuple strategy and run.
    (($cfg:expr) [$($pat:ident,)*] [$($strat:expr,)*] () $body:block) => {{
        let config = $cfg;
        let mut runner = $crate::test_runner::TestRunner::new(config);
        let strategy = ($($strat,)*);
        runner.run_named(stringify!($($pat),*), &strategy, |($($pat,)*)| {
            $body
            // A body that ends in `return Ok(())` makes this unreachable;
            // it exists for bodies that fall off the end instead.
            #[allow(unreachable_code)]
            ::std::result::Result::Ok(())
        });
    }};
    // name in strategy, ...
    (($cfg:expr) [$($pat:ident,)*] [$($strat:expr,)*] ($name:ident in $s:expr, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat,)* $name,] [$($strat,)* $s,] ($($rest)*) $body)
    };
    // name in strategy (final, no trailing comma)
    (($cfg:expr) [$($pat:ident,)*] [$($strat:expr,)*] ($name:ident in $s:expr) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat,)* $name,] [$($strat,)* $s,] () $body)
    };
    // name: Type, ...
    (($cfg:expr) [$($pat:ident,)*] [$($strat:expr,)*] ($name:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat,)* $name,] [$($strat,)* $crate::arbitrary::any::<$ty>(),] ($($rest)*) $body)
    };
    // name: Type (final, no trailing comma)
    (($cfg:expr) [$($pat:ident,)*] [$($strat:expr,)*] ($name:ident : $ty:ty) $body:block) => {
        $crate::__proptest_case!(($cfg) [$($pat,)* $name,] [$($strat,)* $crate::arbitrary::any::<$ty>(),] () $body)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_and_strategy_params_mix(x: u32, y in 10u64..20, z in 0.0f64..1.0, a: [u8; 4]) {
            let _ = x;
            prop_assert!((10..20).contains(&y), "y = {} out of range", y);
            prop_assert!((0.0..1.0).contains(&z));
            prop_assert_eq!(a.len(), 4);
        }

        #[test]
        fn assume_rejects(v in 0u8..10) {
            prop_assume!(v != 3);
            prop_assert_ne!(v, 3);
        }

        #[test]
        fn oneof_draws_from_every_arm(
            picks in crate::collection::vec(
                prop_oneof![
                    (0u32..10).prop_map(|v| ("low", v)),
                    (100u32..110).prop_map(|v| ("high", v)),
                ],
                200..201,
            ),
        ) {
            for (tag, v) in &picks {
                match *tag {
                    "low" => prop_assert!(*v < 10),
                    "high" => prop_assert!((100..110).contains(v)),
                    _ => prop_assert!(false, "unknown arm {}", tag),
                }
            }
            // 200 uniform draws over two arms hit both (p(miss) ~ 2^-199).
            prop_assert!(picks.iter().any(|(t, _)| *t == "low"));
            prop_assert!(picks.iter().any(|(t, _)| *t == "high"));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn vec_and_option_and_map(
            data in crate::collection::vec(any::<u8>(), 1..50),
            pair in crate::option::of((any::<u16>(), any::<u16>())),
        ) {
            prop_assert!(!data.is_empty() && data.len() < 50);
            if let Some((a, b)) = pair {
                let sum = (a as u32, b as u32);
                prop_assert_eq!(sum.0 + sum.1, a as u32 + b as u32);
            }
            return Ok(());
        }
    }

    #[test]
    fn failures_report_input() {
        let result = std::panic::catch_unwind(|| {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(8));
            runner.run(&(0u8..4,), |(v,)| {
                prop_assert!(v < 2, "saw {}", v);
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("saw"), "unexpected message: {msg}");
    }

    #[test]
    fn runner_is_deterministic() {
        let draw = || {
            let mut vals = Vec::new();
            let mut runner = TestRunner::new(ProptestConfig::with_cases(32));
            runner.run(&(0u64..1_000_000,), |(v,)| {
                vals.push(v);
                Ok(())
            });
            vals
        };
        assert_eq!(draw(), draw());
    }
}
