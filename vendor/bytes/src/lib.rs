//! Minimal, offline stand-in for the `bytes` crate.
//!
//! Implements exactly the subset of the upstream API this workspace uses:
//! [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`BufMut`] write trait. The
//! container image has no crates.io access, so the workspace vendors this
//! shim instead of the real crate; the API is source-compatible for every
//! call site in the tree.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(&[][..])).clone()
}

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the underlying allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation beyond a shared sentinel).
    pub fn new() -> Bytes {
        Bytes {
            data: empty_arc(),
            start: 0,
            end: 0,
        }
    }

    /// Copies a static slice into a buffer.
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }

    /// Copies an arbitrary slice into a new buffer.
    pub fn copy_from_slice(s: &[u8]) -> Bytes {
        let data: Arc<[u8]> = Arc::from(s);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Returns a sub-buffer sharing the same allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice [{lo}, {hi}) out of range for length {len}"
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Write interface for building wire buffers, big-endian like upstream.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the builder into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(b"hello world".to_vec());
        assert_eq!(b.slice(0..5).as_ref(), b"hello");
        assert_eq!(b.slice(6..).as_ref(), b"world");
        assert_eq!(b.slice(..).len(), 11);
        assert_eq!(b.slice(11..).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_out_of_range_panics() {
        Bytes::from_static(b"abc").slice(0..4);
    }

    #[test]
    fn builder_roundtrip_big_endian() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(1);
        m.put_u16(0x0203);
        m.put_u32(0x0405_0607);
        m.put_u64(0x0809_0a0b_0c0d_0e0f);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(
            b.as_ref(),
            &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, b'x', b'y'][..]
        );
    }

    #[test]
    fn equality_and_debug() {
        let a = Bytes::from_static(b"ab\x00");
        assert_eq!(a, Bytes::from(vec![b'a', b'b', 0]));
        assert_eq!(format!("{a:?}"), "b\"ab\\x00\"");
        assert!(Bytes::new().is_empty());
    }
}
