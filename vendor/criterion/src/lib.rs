//! Minimal, offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the upstream API this workspace's benches
//! use: `Criterion`, benchmark groups with throughput annotation,
//! `bench_function` / `bench_with_input`, `Bencher::iter` /
//! `iter_batched`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is a simple warm-up plus wall-clock mean over the
//! configured sample count — good enough for relative comparisons in a
//! container without crates.io access, not for statistical rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How a batched iteration sizes its batches (ignored; one per batch).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Work-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark id composed of a function name and a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: u32,
    last_mean: Duration,
}

impl Bencher {
    /// Times `routine` over the configured sample count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.last_mean = start.elapsed() / self.samples.max(1);
    }

    /// Times `routine` with a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.last_mean = total / self.samples.max(1);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(id: &str, mean: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{id:<44} time: {:>12}", fmt_duration(mean));
    if let Some(tp) = throughput {
        let per_sec = |units: u64| units as f64 / mean.as_secs_f64().max(1e-12);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!(
                    "   thrpt: {:.2} MiB/s",
                    per_sec(n) / (1 << 20) as f64
                ));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("   thrpt: {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// A named group of benchmarks sharing sample-size and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: u32,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u32;
        self
    }

    /// Annotates each iteration with work done, for throughput reporting.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id.id),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            last_mean: Duration::ZERO,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id.id),
            b.last_mean,
            self.throughput,
        );
        self
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 50,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 50,
            last_mean: Duration::ZERO,
        };
        f(&mut b);
        report(id, b.last_mean, None);
        self
    }

    /// Applies command-line configuration (no-op; API parity).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        g.throughput(Throughput::Bytes(1024));
        g.bench_function("iter", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function(format!("iter_{}", 2), |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        c.bench_function("top", |b| b.iter(|| 42));
    }
}
