//! End-to-end simulation benchmarks.
//!
//! `overhead/*` is the CPU-side companion to Demo 3: the wall-clock cost
//! of simulating the same transfer with and without ST-TCP (the ratio
//! reflects the extra work of the tap + replica + heartbeats).
//! `failover/*` runs a complete crash-detect-takeover cycle per heartbeat
//! period — a macro benchmark of the whole machinery (Demo 2's harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use sttcp_bench::experiments::{run_failover, run_overhead};

use std::rc::Rc;

use simnet::time::SimTime;
use simtcp::conn::TcpConfig;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::{build_baseline, ScenarioBuilder};

const TOTAL: u64 = 1024 * 1024;

fn bench_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("overhead");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(TOTAL));
    g.bench_function("sttcp_1mb_transfer", |b| {
        b.iter(|| {
            let mut s = ScenarioBuilder::new(
                Rc::new(|| Box::new(StreamApp::new(64 * 1024, false)) as _),
                ClientWorkload::Download { total: TOTAL },
            )
            .seed(1)
            .build();
            s.world.run_until(SimTime::from_secs(60));
            assert!(s.client_finished());
            s.world.events_processed()
        })
    });
    g.bench_function("plain_1mb_transfer", |b| {
        b.iter(|| {
            let mut s = build_baseline(
                1,
                Rc::new(|| Box::new(StreamApp::new(64 * 1024, false)) as _),
                ClientWorkload::Download { total: TOTAL },
                TcpConfig::default(),
                None,
            );
            s.world.run_until(SimTime::from_secs(60));
            assert!(s.client_finished());
            s.world.events_processed()
        })
    });
    g.finish();
}

fn bench_failover(c: &mut Criterion) {
    let mut g = c.benchmark_group("failover");
    g.sample_size(10);
    for hb_ms in [200u64, 500, 1_000] {
        g.bench_with_input(
            BenchmarkId::new("crash_takeover_complete", hb_ms),
            &hb_ms,
            |b, &hb_ms| {
                b.iter(|| {
                    let r = run_failover(9, hb_ms, TOTAL, 700);
                    assert!(r.transparent);
                    r.client_stall
                })
            },
        );
    }
    g.finish();
}

fn bench_demo3_verification(c: &mut Criterion) {
    // A small Demo 3 as a regression check inside the bench suite: the
    // virtual-time overhead must stay negligible.
    c.bench_function("overhead/run_overhead_2mb", |b| {
        b.iter(|| {
            let r = run_overhead(2, 2 * 1024 * 1024);
            assert!(r.overhead.abs() < 0.05);
            r.sttcp_time
        })
    });
}

criterion_group!(
    benches,
    bench_overhead,
    bench_failover,
    bench_demo3_verification
);
criterion_main!(benches);
