//! Wire-format microbenchmarks: the per-packet parse/emit costs that the
//! virtual clock cannot see. These bound the CPU component of ST-TCP's
//! failure-free overhead (Demo 3): the backup processes exactly one extra
//! copy of the client→server stream plus the heartbeats.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use bytes::Bytes;
use std::net::Ipv4Addr;

use simnet::frame::{EtherType, EthernetFrame};
use simnet::ip::{IcmpMessage, IpProto, Ipv4Packet};
use simnet::mac::MacAddr;

use simtcp::segment::{TcpFlags, TcpSegment};
use simtcp::seq::SeqNum;

use sttcp::config::Role;
use sttcp::heartbeat::{ConnHb, HbPayload};
use sttcp::recover::CtrlMsg;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn bench_ethernet(c: &mut Criterion) {
    let mut g = c.benchmark_group("ethernet");
    let frame = EthernetFrame::new(
        MacAddr::unicast(1),
        MacAddr::multicast(100),
        EtherType::Ipv4,
        Bytes::from(vec![7u8; 1460]),
    );
    g.throughput(Throughput::Bytes(frame.wire_len() as u64));
    g.bench_function("encode_1460", |b| b.iter(|| frame.encode()));
    let wire = frame.encode();
    g.bench_function("decode_1460", |b| {
        b.iter(|| EthernetFrame::decode(&wire).unwrap())
    });
    g.finish();
}

fn bench_ipv4(c: &mut Criterion) {
    let mut g = c.benchmark_group("ipv4");
    let pkt = Ipv4Packet::new(ip(1), ip(100), IpProto::Tcp, Bytes::from(vec![3u8; 1460]));
    g.throughput(Throughput::Bytes(pkt.wire_len() as u64));
    g.bench_function("encode_1460", |b| b.iter(|| pkt.encode()));
    let wire = pkt.encode();
    g.bench_function("decode_1460", |b| {
        b.iter(|| Ipv4Packet::decode(&wire).unwrap())
    });
    let icmp = IcmpMessage::EchoRequest { id: 7, seq: 3 };
    g.bench_function("icmp_roundtrip", |b| {
        b.iter(|| IcmpMessage::decode(&icmp.encode()).unwrap())
    });
    g.finish();
}

fn bench_tcp_segment(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_segment");
    for &len in &[0usize, 536, 1460] {
        let seg = TcpSegment {
            src_port: 80,
            dst_port: 40_000,
            seq: SeqNum(0x1234_5678),
            ack: SeqNum(0x8765_4321),
            flags: TcpFlags::ACK,
            window: 65_000,
            payload: Bytes::from(vec![0xAB; len]),
        };
        g.throughput(Throughput::Bytes(seg.wire_len() as u64));
        g.bench_function(format!("encode_{len}"), |b| {
            b.iter(|| seg.encode(ip(100), ip(1)))
        });
        let wire = seg.encode(ip(100), ip(1));
        g.bench_function(format!("decode_{len}"), |b| {
            b.iter(|| TcpSegment::decode(&wire, ip(100), ip(1)).unwrap())
        });
    }
    g.finish();
}

fn bench_heartbeat(c: &mut Criterion) {
    let mut g = c.benchmark_group("heartbeat");
    for &conns in &[1usize, 10, 100] {
        let hb = HbPayload {
            seqno: 42,
            role: Role::Backup,
            rank: 1,
            conns: (0..conns)
                .map(|i| ConnHb {
                    key: i as u32,
                    last_byte_received: 1_000_000 + i as u64,
                    last_ack_received: 999_000,
                    last_app_byte_written: 500_000,
                    last_app_byte_read: 998_000,
                    fin_generated: false,
                    rst_generated: false,
                    app_suspected: false,
                })
                .collect(),
            ping: None,
        };
        g.throughput(Throughput::Bytes(hb.wire_len() as u64));
        g.bench_function(format!("encode_{conns}conns"), |b| b.iter(|| hb.encode()));
        let wire = hb.encode();
        g.bench_function(format!("decode_{conns}conns"), |b| {
            b.iter(|| HbPayload::decode(&wire).unwrap())
        });
    }
    g.finish();
}

fn bench_ctrl(c: &mut Criterion) {
    let mut g = c.benchmark_group("recovery_ctrl");
    let reply = CtrlMsg::FetchReply {
        conn: 7,
        from: 123_456,
        data: Bytes::from(vec![5u8; 8 * 1024]),
    };
    g.throughput(Throughput::Bytes(8 * 1024));
    g.bench_function("reply_roundtrip_8k", |b| {
        b.iter_batched(
            || reply.encode(),
            |wire| CtrlMsg::decode(&wire).unwrap(),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_ethernet,
    bench_ipv4,
    bench_tcp_segment,
    bench_heartbeat,
    bench_ctrl
);
criterion_main!(benches);
