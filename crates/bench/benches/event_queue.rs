//! Event-queue churn microbenchmarks, driven through the public `World`
//! scheduling API (the queue itself is crate-private to `simnet`).
//!
//! Every simulated packet, timer, and fault is one push and one pop on
//! the event queue, so its per-event cost is a floor under everything
//! the harness measures. The workload here is a fleet of
//! self-rescheduling timers whose deltas are drawn from a deterministic
//! LCG, shaped to exercise the timing wheel's interesting regimes:
//!
//! * `near` — deltas under ~65 ms, the regime real protocol timers
//!   (RTO, delayed ACK, heartbeat) live in: the wheel's lowest levels.
//! * `mixed_horizon` — deltas spanning microseconds to days, forcing
//!   cascades through the upper levels and the far-future overflow
//!   heap.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use simnet::time::{SimDuration, SimTime};
use simnet::world::World;

/// Advances the per-timer LCG and returns the next raw 64-bit draw.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state
}

/// One self-rescheduling timer: draws its next delta from its own LCG
/// stream and schedules itself again, forever. `shape` maps the raw
/// draw to a delta in microseconds.
fn tick(w: &mut World, mut state: u64, shape: fn(u64) -> u64) {
    let delta = shape(lcg(&mut state));
    w.schedule_in(SimDuration::from_micros(delta), move |w| {
        tick(w, state, shape)
    });
}

/// Deltas in 1..=65_536 µs: lowest wheel levels only.
fn shape_near(raw: u64) -> u64 {
    (raw >> 33) % 65_536 + 1
}

/// Deltas from 1 µs to ~2.8 days, log-uniform-ish across wheel levels
/// and (past ~19 h) the overflow heap.
fn shape_mixed(raw: u64) -> u64 {
    let exp = (raw >> 59) % 32; // 0..32 bits of magnitude
    let mantissa = (raw >> 21) & ((1 << exp) | ((1 << exp) - 1));
    mantissa.max(1)
}

/// Builds a world with `timers` independent timer streams and runs it
/// until `horizon`, returning the number of events processed.
fn churn(timers: u64, horizon: SimTime, shape: fn(u64) -> u64) -> u64 {
    let mut w = World::new(0x5eed);
    w.start();
    for id in 0..timers {
        tick(&mut w, id.wrapping_mul(0x9E37_79B9_7F4A_7C15), shape);
    }
    w.run_until(horizon);
    w.events_processed()
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");

    // The workload is deterministic, so a dry run gives the exact
    // per-iteration event count for throughput reporting.
    let horizon = SimTime::from_millis(200);
    let near_events = churn(64, horizon, shape_near);
    g.throughput(Throughput::Elements(near_events));
    g.bench_function("timer_churn_near", |b| {
        b.iter(|| churn(64, horizon, shape_near))
    });

    let mixed_events = churn(64, horizon, shape_mixed);
    g.throughput(Throughput::Elements(mixed_events));
    g.bench_function("timer_churn_mixed_horizon", |b| {
        b.iter(|| churn(64, horizon, shape_mixed))
    });

    g.finish();
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
