//! TCP datapath microbenchmarks: buffer operations and whole-connection
//! transfer cost. `pair_transfer_1mb` is the per-byte CPU cost of the TCP
//! state machine itself; `sttcp` Demo 3's CPU-side overhead is bounded by
//! running this path once more (on the backup) per client byte.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use simnet::time::SimTime;
use simtcp::conn::{TcpConfig, TcpConn};
use simtcp::seq::SeqNum;
use simtcp::socket::FourTuple;
use std::net::Ipv4Addr;

fn tuple() -> FourTuple {
    FourTuple {
        local: (Ipv4Addr::new(10, 0, 0, 1), 40_000),
        remote: (Ipv4Addr::new(10, 0, 0, 100), 80),
    }
}

/// Establishes a connected conn pair by exchanging the handshake.
fn established() -> (TcpConn, TcpConn) {
    let now = SimTime::ZERO;
    let mut client = TcpConn::client(TcpConfig::default(), tuple(), SeqNum(1_000), now);
    let syn = client.poll_segment().unwrap();
    let mut server = TcpConn::server_from_syn(
        TcpConfig::default(),
        tuple().flipped(),
        SeqNum(2_000_000),
        &syn,
        now,
    );
    let synack = server.poll_segment().unwrap();
    client.on_segment(now, &synack);
    while let Some(s) = client.poll_segment() {
        server.on_segment(now, &s);
    }
    (client, server)
}

/// Pumps both directions until quiet.
fn pump(a: &mut TcpConn, b: &mut TcpConn, now: SimTime) {
    loop {
        let mut moved = false;
        while let Some(s) = a.poll_segment() {
            b.on_segment(now, &s);
            moved = true;
        }
        while let Some(s) = b.poll_segment() {
            a.on_segment(now, &s);
            moved = true;
        }
        if !moved {
            break;
        }
    }
}

fn bench_transfer(c: &mut Criterion) {
    let mut g = c.benchmark_group("tcp_conn");
    g.sample_size(20);
    const MB: usize = 1024 * 1024;
    g.throughput(Throughput::Bytes(MB as u64));
    let chunk = vec![0x5Au8; 64 * 1024];
    g.bench_function("pair_transfer_1mb", |b| {
        b.iter_batched(
            established,
            |(mut client, mut server)| {
                let now = SimTime::from_millis(1);
                let mut sent = 0usize;
                let mut received = 0usize;
                while received < MB {
                    if sent < MB {
                        sent += client.send(now, &chunk[..chunk.len().min(MB - sent)]);
                    }
                    pump(&mut client, &mut server, now);
                    received += server.recv(1 << 20).len();
                    // Reading reopened the receive window; emit the window
                    // update the driver (an endpoint, normally) would flush,
                    // and let the sender react. Without this the manual pump
                    // deadlocks at zero window (there are no timers here).
                    server.fill_output(now);
                    pump(&mut client, &mut server, now);
                    client.fill_output(now);
                }
                (client, server)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_handshake(c: &mut Criterion) {
    c.bench_function("tcp_conn/handshake", |b| b.iter(established));
}

fn bench_buffers(c: &mut Criterion) {
    use simtcp::recvbuf::RecvBuffer;
    use simtcp::sendbuf::SendBuffer;

    let mut g = c.benchmark_group("buffers");
    g.throughput(Throughput::Bytes(1460));
    let data = vec![1u8; 1460];
    let seg = bytes::Bytes::from(vec![1u8; 1460]);
    g.bench_function("sendbuf_write_ack_cycle", |b| {
        let mut sb = SendBuffer::new(256 * 1024);
        let mut off = 0u64;
        b.iter(|| {
            let n = sb.write(&data);
            off += n as u64;
            let s = sb.slice(off - n as u64, 1460);
            let _ = sb.ack_to(off);
            s
        })
    });
    g.bench_function("recvbuf_in_order_receive_read", |b| {
        let mut rb = RecvBuffer::new(256 * 1024, None);
        let mut off = 0i64;
        b.iter(|| {
            let o = rb.receive(off, &seg, false);
            off += 1460;
            let _ = rb.read(1460);
            o
        })
    });
    g.bench_function("recvbuf_hold_receive_release", |b| {
        let mut rb = RecvBuffer::new(256 * 1024, Some(1024 * 1024));
        let mut off = 0i64;
        b.iter(|| {
            let o = rb.receive(off, &seg, false);
            off += 1460;
            let _ = rb.read(1460);
            rb.release_until(off as u64);
            o
        })
    });
    g.finish();
}

criterion_group!(benches, bench_transfer, bench_handshake, bench_buffers);
criterion_main!(benches);
