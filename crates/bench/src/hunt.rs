//! The chaos-hunt sweep as a library: generate seeded fault schedules,
//! run each case, and fold outcome counters / phase aggregates /
//! detection-bound checks **in seed order**.
//!
//! Case *execution* fans out over a worker pool
//! ([`crate::parallel::parallel_seeds`]); each `World` is independent
//! and deterministic, so only the fold is order-sensitive. Folding in
//! seed order makes the summary — and the [`MetricsReport`] built from
//! it — bit-identical across `--threads` settings, which
//! `tests/chaos.rs` pins as a regression test.

use std::collections::BTreeMap;

use obs::json::Json;
use obs::report::MetricsReport;
use simnet::time::SimDuration;
use simnet::time::SimTime;
use sttcp::events::StTcpEvent;
use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{
    chaos_config, run_chaos_case, ChaosAction, ChaosOptions, ChaosReport, FaultSchedule,
};
use sttcp_apps::pool::{run_pool_case, PoolReport};

use crate::parallel::parallel_seeds;
use crate::phases::{
    detection_bound, failover_timeline, first_verdict, takeover_timelines, PhaseAgg,
};

/// What to sweep: a contiguous seed range, the schedule generator
/// flavour, and how many worker threads to run cases on.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of seeds to sweep.
    pub seeds: u64,
    /// First seed.
    pub start: u64,
    /// Quick profile (smaller download, shorter horizon) — recorded in
    /// the report; the caller picks the matching [`ChaosOptions`].
    pub quick: bool,
    /// Double-fault schedules (failure during repair).
    pub double: bool,
    /// Reintegrate-then-fail schedules (crash, warm reboot + rejoin,
    /// then crash the other side). Takes precedence over `double`; the
    /// caller must also set [`ChaosOptions::reintegrate`].
    pub reintegrate: bool,
    /// Worker threads for case execution (`<= 1` runs inline).
    pub threads: usize,
}

/// One executed sweep case, handed to the fold callback in seed order.
pub struct SweepCase {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// The generated fault schedule.
    pub schedule: FaultSchedule,
    /// The chaos run's report.
    pub report: ChaosReport,
}

/// A fault → verdict latency that exceeded the configured bound for the
/// detector that fired.
pub struct BoundViolation {
    /// Seed of the offending run.
    pub seed: u64,
    /// Verdict reason key (detector name).
    pub reason: &'static str,
    /// Measured detection latency.
    pub measured_us: u64,
    /// The configured bound it exceeded.
    pub bound_us: u64,
}

/// Seed-order fold of a whole sweep.
pub struct SweepSummary {
    /// Runs with no fault impact observed.
    pub clean: u64,
    /// Runs that failed over and finished the workload.
    pub recovered: u64,
    /// Runs that detected an unrecoverable fault pattern.
    pub detected: u64,
    /// Runs where service was (legitimately) lost.
    pub lost: u64,
    /// Seeds whose run violated an invariant.
    pub violated: Vec<u64>,
    /// Cross-seed failover phase-latency aggregation.
    pub agg: PhaseAgg,
    /// Failovers whose detection latency was checked against a bound.
    pub bound_checked: u64,
    /// Detection-bound violations, in seed order.
    pub bound_violations: Vec<BoundViolation>,
}

/// The survivor's event log: whichever side completed a takeover, or
/// failing that, whichever declared a verdict.
pub fn survivor_events(report: &ChaosReport) -> Option<&[StTcpEvent]> {
    let took_over =
        |evs: &[StTcpEvent]| evs.iter().any(|e| matches!(e, StTcpEvent::TookOver { .. }));
    if took_over(&report.backup_events) {
        Some(&report.backup_events)
    } else if took_over(&report.primary_events) {
        Some(&report.primary_events)
    } else if first_verdict(&report.backup_events).is_some() {
        Some(&report.backup_events)
    } else if first_verdict(&report.primary_events).is_some() {
        Some(&report.primary_events)
    } else {
        None
    }
}

/// The latest injected fault at or before `cutoff` — the lenient
/// attribution for chaos runs, where several faults may precede one
/// verdict and the detector answers for the most recent of them.
pub fn latest_fault_before(report: &ChaosReport, cutoff: SimTime) -> Option<SimTime> {
    report
        .faults
        .iter()
        .map(|(at, _)| *at)
        .filter(|at| *at <= cutoff)
        .max()
}

/// The moment the survivor's detection clock last (re)started before
/// `cutoff`: the latest fault, or the latest heartbeat-link recovery if
/// that came later. A heartbeat outage stalls lag/ping evidence (peer
/// positions stop refreshing), so a detector's configured bound can only
/// be charged from when heartbeat coverage was last restored.
pub fn detection_clock_start(
    report: &ChaosReport,
    events: &[StTcpEvent],
    cutoff: SimTime,
) -> Option<SimTime> {
    let fault = latest_fault_before(report, cutoff)?;
    let link_up = events
        .iter()
        .filter_map(|e| match e {
            StTcpEvent::HbLinkUp { at, .. } if *at <= cutoff => Some(*at),
            _ => None,
        })
        .max();
    Some(link_up.map_or(fault, |up| fault.max(up)))
}

/// Fault-grammar coverage over a set of generated schedules: which
/// action kinds, and which unordered 2-fault kind combinations, the
/// sweep actually exercised versus everything the grammar allows.
#[derive(Debug, Clone, Default)]
pub struct GrammarCoverage {
    /// Injections per action kind (verb), across all folded schedules.
    pub kinds: BTreeMap<&'static str, u64>,
    /// Unordered kind pairs co-occurring in one schedule, canonicalized
    /// (`first <= second` lexicographically).
    pub pairs: BTreeMap<(&'static str, &'static str), u64>,
}

impl GrammarCoverage {
    /// Folds one schedule in.
    pub fn add(&mut self, schedule: &FaultSchedule) {
        let kinds: Vec<&'static str> = schedule.actions.iter().map(|a| a.action.kind()).collect();
        for &k in &kinds {
            *self.kinds.entry(k).or_insert(0) += 1;
        }
        let mut seen: Vec<(&'static str, &'static str)> = Vec::new();
        for (i, &a) in kinds.iter().enumerate() {
            for &b in &kinds[i + 1..] {
                let pair = if a <= b { (a, b) } else { (b, a) };
                if !seen.contains(&pair) {
                    seen.push(pair);
                }
            }
        }
        for pair in seen {
            *self.pairs.entry(pair).or_insert(0) += 1;
        }
    }

    /// All unordered kind pairs the grammar allows (including a kind
    /// with itself: `crash`+`crash` on different sides is a real
    /// schedule).
    pub fn possible_pairs() -> usize {
        let n = ChaosAction::KINDS.len();
        n * (n + 1) / 2
    }

    /// Renders the exercised-vs-possible table the `--grammar` flag
    /// prints.
    pub fn render_table(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:>10}", "action kind", "injections");
        for kind in ChaosAction::KINDS {
            let n = self.kinds.get(kind).copied().unwrap_or(0);
            let mark = if n == 0 { "  <- never exercised" } else { "" };
            let _ = writeln!(out, "{kind:<16} {n:>10}{mark}");
        }
        let _ = writeln!(
            out,
            "\nkinds exercised:        {:>4} / {}",
            self.kinds.len(),
            ChaosAction::KINDS.len()
        );
        let _ = writeln!(
            out,
            "2-fault combos seen:    {:>4} / {} possible",
            self.pairs.len(),
            Self::possible_pairs()
        );
        let missing: Vec<String> = ChaosAction::KINDS
            .iter()
            .filter(|k| !self.kinds.contains_key(*k))
            .map(|k| (*k).to_string())
            .collect();
        if !missing.is_empty() {
            let _ = writeln!(out, "never exercised:        {}", missing.join(", "));
        }
        out
    }
}

/// Generates the schedule for `seed` under the sweep's generator
/// flavour.
pub fn schedule_for(cfg: &SweepConfig, seed: u64) -> FaultSchedule {
    if cfg.reintegrate {
        FaultSchedule::generate_reintegrate(seed)
    } else if cfg.double {
        FaultSchedule::generate_double(seed)
    } else {
        FaultSchedule::generate(seed)
    }
}

/// Runs the sweep: cases execute on up to `cfg.threads` workers, then
/// fold sequentially in seed order. `on_case` fires once per case (in
/// seed order) before the case is folded — the CLI hooks printing and
/// shrinking there; pass `|_| {}` when only the summary matters.
pub fn run_sweep(
    cfg: &SweepConfig,
    opts: &ChaosOptions,
    mut on_case: impl FnMut(&SweepCase),
) -> SweepSummary {
    let detection_cfg = chaos_config();
    let cases = parallel_seeds(cfg.threads, cfg.start, cfg.seeds, |seed| {
        let schedule = schedule_for(cfg, seed);
        let report = run_chaos_case(seed, &schedule, opts);
        SweepCase {
            seed,
            schedule,
            report,
        }
    });

    let mut s = SweepSummary {
        clean: 0,
        recovered: 0,
        detected: 0,
        lost: 0,
        violated: Vec::new(),
        agg: PhaseAgg::new(),
        bound_checked: 0,
        bound_violations: Vec::new(),
    };
    for case in &cases {
        on_case(case);
        let report = &case.report;

        // Fold any observed failover into the phase aggregation, and
        // check the fault → verdict latency against the configured bound
        // for whichever detector fired.
        if let Some(events) = survivor_events(report) {
            if let Some((ws, we)) = report.stall_window {
                let fault_at = latest_fault_before(report, we);
                if let Some(b) = failover_timeline(ws, we, fault_at, events).breakdown() {
                    s.agg.add(&b);
                }
            }
            if let Some((reason, at)) = first_verdict(events) {
                if let (Some(clock_start), Some(bound)) = (
                    detection_clock_start(report, events, at),
                    detection_bound(&detection_cfg, reason),
                ) {
                    s.bound_checked += 1;
                    let measured = at.saturating_since(clock_start);
                    if measured > bound {
                        s.bound_violations.push(BoundViolation {
                            seed: case.seed,
                            reason: reason.key(),
                            measured_us: measured.as_micros(),
                            bound_us: bound.as_micros(),
                        });
                    }
                }
            }
        }

        match report.outcome {
            Outcome::Clean => s.clean += 1,
            Outcome::Recovered => s.recovered += 1,
            Outcome::DetectedUnrecoverable => s.detected += 1,
            Outcome::ServiceLost => s.lost += 1,
            Outcome::Violation => s.violated.push(case.seed),
        }
    }
    s
}

/// One executed pool sweep case, handed to the fold callback in seed
/// order.
pub struct PoolSweepCase {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// The generated pool fault schedule.
    pub schedule: FaultSchedule,
    /// The pool run's report.
    pub report: PoolReport,
}

/// Seed-order fold of a pool sweep.
pub struct PoolSweepSummary {
    /// Runs with no fault impact observed.
    pub clean: u64,
    /// Runs that failed over (possibly several times) and finished.
    pub recovered: u64,
    /// Runs that detected an unrecoverable fault pattern.
    pub detected: u64,
    /// Runs where service was (legitimately) lost.
    pub lost: u64,
    /// Seeds whose run violated an invariant.
    pub violated: Vec<u64>,
    /// Total takeovers observed across all runs.
    pub takeovers: u64,
    /// Cross-seed failover phase-latency aggregation (one fold per
    /// takeover whose client stall was measurable).
    pub agg: PhaseAgg,
}

/// Runs the N-replica pool sweep: [`FaultSchedule::generate_pool`]
/// schedules (kill the active, usually reboot + rejoin it, kill the
/// next active) against [`run_pool_case`], folded in seed order — the
/// summary is bit-identical at any `threads` setting.
pub fn run_pool_sweep(
    seeds: u64,
    start: u64,
    threads: usize,
    opts: &ChaosOptions,
    mut on_case: impl FnMut(&PoolSweepCase),
) -> PoolSweepSummary {
    let cases = parallel_seeds(threads, start, seeds, |seed| {
        let schedule = FaultSchedule::generate_pool(seed);
        let report = run_pool_case(seed, &schedule, opts);
        PoolSweepCase {
            seed,
            schedule,
            report,
        }
    });

    let mut s = PoolSweepSummary {
        clean: 0,
        recovered: 0,
        detected: 0,
        lost: 0,
        violated: Vec::new(),
        takeovers: 0,
        agg: PhaseAgg::new(),
    };
    for case in &cases {
        on_case(case);
        let report = &case.report;
        s.takeovers += report.takeovers();
        for (_, tl) in takeover_timelines(&report.member_events, &report.faults, |at| {
            report
                .stall_window
                .filter(|&(ws, we)| at >= ws && at <= we + SimDuration::from_secs(1))
        }) {
            if let Some(b) = tl.breakdown() {
                s.agg.add(&b);
            }
        }
        match report.outcome {
            Outcome::Clean => s.clean += 1,
            Outcome::Recovered => s.recovered += 1,
            Outcome::DetectedUnrecoverable => s.detected += 1,
            Outcome::ServiceLost => s.lost += 1,
            Outcome::Violation => s.violated.push(case.seed),
        }
    }
    s
}

impl PoolSweepSummary {
    /// Builds the `--pool` [`MetricsReport`], bit-identical across
    /// thread counts.
    pub fn to_report(&self, seeds: u64, start: u64, quick: bool) -> MetricsReport {
        let mut report = MetricsReport::new("chaos_hunt");
        let mut cfg_j = Json::obj();
        cfg_j.set("seeds", Json::U64(seeds));
        cfg_j.set("start", Json::U64(start));
        cfg_j.set("quick", Json::Bool(quick));
        cfg_j.set("pool", Json::Bool(true));
        report.set("config", cfg_j);
        let mut outcomes = Json::obj();
        outcomes.set("clean", Json::U64(self.clean));
        outcomes.set("recovered", Json::U64(self.recovered));
        outcomes.set("detected_unrecoverable", Json::U64(self.detected));
        outcomes.set("service_lost", Json::U64(self.lost));
        outcomes.set("violations", Json::U64(self.violated.len() as u64));
        report.set("outcomes", outcomes);
        report.set("takeovers", Json::U64(self.takeovers));
        report.set("phases", self.agg.to_json());
        report
    }
}

impl SweepSummary {
    /// Builds the `chaos_hunt` [`MetricsReport`] — key order and
    /// content match what the CLI has always written, independent of
    /// `cfg.threads`.
    pub fn to_report(&self, cfg: &SweepConfig, enforce_bounds: bool) -> MetricsReport {
        let mut report = MetricsReport::new("chaos_hunt");
        let mut cfg_j = Json::obj();
        cfg_j.set("seeds", Json::U64(cfg.seeds));
        cfg_j.set("start", Json::U64(cfg.start));
        cfg_j.set("quick", Json::Bool(cfg.quick));
        cfg_j.set("double", Json::Bool(cfg.double));
        cfg_j.set("reintegrate", Json::Bool(cfg.reintegrate));
        report.set("config", cfg_j);
        let mut outcomes = Json::obj();
        outcomes.set("clean", Json::U64(self.clean));
        outcomes.set("recovered", Json::U64(self.recovered));
        outcomes.set("detected_unrecoverable", Json::U64(self.detected));
        outcomes.set("service_lost", Json::U64(self.lost));
        outcomes.set("violations", Json::U64(self.violated.len() as u64));
        report.set("outcomes", outcomes);
        report.set("phases", self.agg.to_json());
        let mut bounds = Json::obj();
        bounds.set("checked", Json::U64(self.bound_checked));
        bounds.set("enforced", Json::Bool(enforce_bounds));
        bounds.set(
            "exceeded",
            Json::Arr(
                self.bound_violations
                    .iter()
                    .map(|v| {
                        let mut o = Json::obj();
                        o.set("seed", Json::U64(v.seed));
                        o.set("reason", Json::from(v.reason));
                        o.set("measured_us", Json::U64(v.measured_us));
                        o.set("bound_us", Json::U64(v.bound_us));
                        o
                    })
                    .collect(),
            ),
        );
        report.set("detection_bounds", bounds);
        report
    }
}
