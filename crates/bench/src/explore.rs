//! The bounded-exhaustive explorer as a library: probe, enumerate the
//! milestone lattice, fan case execution out over a worker pool, and
//! fold **in lattice order** — the summary and the coverage
//! [`MetricsReport`] built from it are bit-identical at any `--threads`
//! setting, which `tests/explore.rs` pins as a regression test.
//!
//! The lattice itself (grammar, anchors, canonicalization, pruning)
//! lives in [`sttcp_apps::explore`]; this module adds the parallel
//! driver and the schema-versioned coverage report the `state_explore`
//! binary writes for CI.

use obs::json::Json;
use obs::report::MetricsReport;
use sttcp_apps::chaos::{ChaosOptions, ChaosWorkload, FaultSchedule};
use sttcp_apps::explore::{
    budget_indices, build_lattice, explore_case, probe_milestones, shrink_point, AnchorKind,
    ExploreSummary, Lattice, ViolationCase, EXPLORE_SCHEMA_VERSION,
};

use crate::parallel::parallel_map_indexed;

/// What to explore: the replay seed, the workload, worker threads, and
/// an optional point budget (a deterministic stride subset spanning the
/// lattice — the PR-CI smoke; `None` runs the full lattice).
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    /// Seed for the probe run and every lattice point.
    pub seed: u64,
    /// Which application/traffic pair to explore.
    pub workload: ChaosWorkload,
    /// Worker threads for case execution (`<= 1` runs inline).
    pub threads: usize,
    /// Maximum lattice points to execute, evenly strided; `None` = all.
    pub budget: Option<usize>,
}

/// Everything one exploration produced.
pub struct ExploreRun {
    /// The enumerated lattice (including points a budget skipped).
    pub lattice: Lattice,
    /// Indices into [`Lattice::schedules`] that actually ran.
    pub run_indices: Vec<usize>,
    /// The lattice-order fold.
    pub summary: ExploreSummary,
}

/// Probes, enumerates, executes, and folds. `on_violation` fires once
/// per *new* violation class, after its representative has been shrunk
/// — the CLI hooks printing there; pass `|_| {}` when only the summary
/// matters.
pub fn run_explore(
    cfg: &ExploreConfig,
    opts: &ChaosOptions,
    mut on_violation: impl FnMut(&ViolationCase),
) -> ExploreRun {
    let mut opts = opts.clone();
    opts.workload = cfg.workload;

    let (milestones, _probe) = probe_milestones(cfg.seed, &opts);
    let lattice = build_lattice(&milestones);
    let run_indices = match cfg.budget {
        Some(b) => budget_indices(lattice.schedules.len(), b),
        None => (0..lattice.schedules.len()).collect(),
    };

    let results = parallel_map_indexed(cfg.threads, &run_indices, |_, &i| {
        explore_case(cfg.seed, &lattice.schedules[i], &opts)
    });

    let mut summary = ExploreSummary::default();
    let mut shrink = |s: &FaultSchedule| shrink_point(cfg.seed, &opts, s);
    for (k, case) in results.iter().enumerate() {
        let idx = run_indices[k];
        let classes_before = summary.violations.len();
        summary.add(idx, &lattice.schedules[idx], case, &mut shrink);
        if summary.violations.len() > classes_before {
            on_violation(summary.violations.last().expect("just pushed"));
        }
    }

    ExploreRun {
        lattice,
        run_indices,
        summary,
    }
}

impl ExploreRun {
    /// Builds the schema-versioned coverage report. Deliberately
    /// excludes anything execution-environment-dependent (thread count,
    /// wall time): two runs of the same `(config, lattice)` must write
    /// byte-identical JSON.
    pub fn to_report(&self, cfg: &ExploreConfig) -> MetricsReport {
        let mut report = MetricsReport::new("state_explore");
        report.set(
            "schema_version",
            Json::U64(u64::from(EXPLORE_SCHEMA_VERSION)),
        );

        let mut cfg_j = Json::obj();
        cfg_j.set("seed", Json::U64(cfg.seed));
        cfg_j.set("workload", Json::Str(cfg.workload.key().to_string()));
        cfg_j.set(
            "budget",
            match cfg.budget {
                Some(b) => Json::U64(b as u64),
                None => Json::Null,
            },
        );
        report.set("config", cfg_j);

        let lat = &self.lattice;
        let mut lat_j = Json::obj();
        lat_j.set(
            "milestones",
            Json::Arr(
                lat.milestones
                    .iter()
                    .map(|m| {
                        let mut o = Json::obj();
                        o.set("kind", Json::Str(m.kind.to_string()));
                        o.set("at_ms", Json::U64(m.at.as_millis()));
                        o
                    })
                    .collect(),
            ),
        );
        let mut anchors_j = Json::obj();
        for kind in [
            AnchorKind::Before,
            AnchorKind::At,
            AnchorKind::After,
            AnchorKind::Between,
        ] {
            let n = lat.anchors.iter().filter(|a| a.kind == kind).count();
            anchors_j.set(kind.key(), Json::U64(n as u64));
        }
        anchors_j.set("total", Json::U64(lat.anchors.len() as u64));
        lat_j.set("anchors", anchors_j);
        lat_j.set(
            "pair_offsets_ms",
            Json::Arr(lat.offsets.iter().map(|&d| Json::U64(d)).collect()),
        );
        lat_j.set("single_points", Json::U64(lat.single_points as u64));
        lat_j.set("pair_time_pairs", Json::U64(lat.pair_time_pairs as u64));
        lat_j.set("pair_points", Json::U64(lat.pair_points as u64));
        let mut pruned = Json::obj();
        pruned.set("mirrored", Json::U64(lat.mirrored_pruned as u64));
        pruned.set("vacuous", Json::U64(lat.vacuous_pruned as u64));
        lat_j.set("pruned", pruned);
        lat_j.set("points_total", Json::U64(lat.schedules.len() as u64));
        report.set("lattice", lat_j);

        report.set("points_run", Json::U64(self.summary.points as u64));

        let mut outcomes = Json::obj();
        for (k, n) in &self.summary.outcomes {
            outcomes.set(k, Json::U64(*n));
        }
        report.set("outcomes", outcomes);
        report.set(
            "distinct_outcomes",
            Json::U64(self.summary.fingerprints.len() as u64),
        );

        let mut cells = Json::obj();
        for (k, n) in &self.summary.verdict_cells {
            cells.set(k, Json::U64(*n));
        }
        report.set("verdict_cells", cells);

        report.set(
            "violation_points",
            Json::U64(self.summary.violation_points as u64),
        );
        report.set(
            "violations",
            Json::Arr(
                self.summary
                    .violations
                    .iter()
                    .map(|v| {
                        let mut o = Json::obj();
                        o.set("index", Json::U64(v.index as u64));
                        o.set("schedule", Json::Str(v.schedule.to_string()));
                        o.set(
                            "invariants",
                            Json::Arr(
                                v.invariants
                                    .iter()
                                    .map(|i| Json::Str((*i).to_string()))
                                    .collect(),
                            ),
                        );
                        o.set("shrunk", Json::Str(v.shrunk.to_string()));
                        o.set("shrunk_len", Json::U64(v.shrunk.len() as u64));
                        o.set("shrink_runs", Json::U64(v.shrink_runs as u64));
                        o
                    })
                    .collect(),
            ),
        );
        report
    }
}
