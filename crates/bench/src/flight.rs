//! Flight-recorder dump files for the experiment CLIs.
//!
//! A [`FlightSnapshot`] captured by a chaos run (or replayed from a
//! shrunk reproducer) is written as **two** files: the schema-versioned
//! JSON dump ([`obs::flightdump::snapshot_to_json`]) and a Chrome
//! trace-event export loadable in `ui.perfetto.dev`
//! ([`obs::flightdump::snapshot_to_chrome_trace`]). File names derive
//! only from the caller-chosen stem (seed, lattice index, demo name) —
//! never wall time — so reruns overwrite rather than accumulate and the
//! `--json` reports that embed the paths stay byte-identical at any
//! `--threads` setting.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use obs::flightdump::{snapshot_to_chrome_trace, snapshot_to_json};
use obs::json::Json;
use simnet::flight::FlightSnapshot;

/// File paths of one written dump pair.
#[derive(Debug, Clone)]
pub struct FlightDumpPaths {
    /// The stem the files were named from.
    pub stem: String,
    /// The schema-versioned flight-recorder dump.
    pub dump: PathBuf,
    /// The Chrome trace-event export (open in `ui.perfetto.dev`).
    pub trace: PathBuf,
    /// Events in the snapshot (a quick triage signal in reports).
    pub events: usize,
}

/// Where a CLI's dumps go: next to its `--json` report (sibling
/// directory `<report-stem>_flight/`), or `flight_dumps/` in the
/// working directory when no report path was given.
pub fn flight_dir_for(json_path: Option<&Path>) -> PathBuf {
    match json_path {
        Some(p) => {
            let stem = p.file_stem().map_or_else(
                || "report".to_string(),
                |s| s.to_string_lossy().into_owned(),
            );
            p.parent()
                .unwrap_or_else(|| Path::new("."))
                .join(format!("{stem}_flight"))
        }
        None => PathBuf::from("flight_dumps"),
    }
}

/// Writes `snap` into `dir` as `<stem>.flight.json` plus
/// `<stem>.trace.json`, creating `dir` as needed.
pub fn write_flight_dump(
    dir: &Path,
    stem: &str,
    snap: &FlightSnapshot,
) -> io::Result<FlightDumpPaths> {
    fs::create_dir_all(dir)?;
    let dump = dir.join(format!("{stem}.flight.json"));
    let trace = dir.join(format!("{stem}.trace.json"));
    fs::write(&dump, format!("{}\n", snapshot_to_json(snap)))?;
    fs::write(&trace, format!("{}\n", snapshot_to_chrome_trace(snap)))?;
    Ok(FlightDumpPaths {
        stem: stem.to_string(),
        dump,
        trace,
        events: snap.events.len(),
    })
}

/// The `flight_dumps` section a CLI attaches to its `--json` report:
/// one `{stem, dump, trace, events}` object per written dump, in write
/// order (which callers keep deterministic — seed order, lattice
/// order).
pub fn dumps_to_json(written: &[FlightDumpPaths]) -> Json {
    Json::Arr(
        written
            .iter()
            .map(|w| {
                let mut o = Json::obj();
                o.set("stem", Json::Str(w.stem.clone()));
                o.set("dump", Json::Str(w.dump.display().to_string()));
                o.set("trace", Json::Str(w.trace.display().to_string()));
                o.set("events", Json::U64(w.events as u64));
                o
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::flight::{FlightEvent, FlightKind, SpanId};
    use simnet::node::NodeId;
    use simnet::time::SimTime;

    fn sample_snapshot() -> FlightSnapshot {
        FlightSnapshot {
            events: vec![FlightEvent {
                seq: 1,
                time: SimTime::from_millis(5),
                node: Some(NodeId(0)),
                span: SpanId::heartbeat(0, 0, 1),
                parent: SpanId::NONE,
                kind: FlightKind::HbEmit {
                    seqno: 1,
                    link: 0,
                    bytes: 34,
                    conns: 1,
                },
            }],
            hosts: vec!["primary".to_string()],
            window_ms: Some(2_000),
        }
    }

    #[test]
    fn dump_pair_written_and_valid() {
        let dir = std::env::temp_dir().join("bench_flight_test");
        let snap = sample_snapshot();
        let w = write_flight_dump(&dir, "seed7", &snap).unwrap();
        let raw = std::fs::read_to_string(&w.dump).unwrap();
        let parsed = Json::parse(&raw).unwrap();
        obs::flightdump::validate(&parsed).unwrap();
        let trace = std::fs::read_to_string(&w.trace).unwrap();
        assert!(trace.contains("traceEvents"));
        assert_eq!(w.events, 1);
        let arr = dumps_to_json(&[w]);
        let s = arr.to_string();
        assert!(s.contains("seed7.flight.json"));
        assert!(s.contains("seed7.trace.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flight_dir_tracks_report_path() {
        let d = flight_dir_for(Some(Path::new("out/chaos.json")));
        assert_eq!(d, PathBuf::from("out/chaos_flight"));
        assert_eq!(flight_dir_for(None), PathBuf::from("flight_dumps"));
    }
}
