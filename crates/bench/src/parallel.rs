//! Deterministic parallel fan-out for independent simulation runs.
//!
//! Every `World` is single-threaded and deterministic, so a sweep over
//! seeds is embarrassingly parallel: each worker owns its worlds
//! outright and only the *folding* of results has to happen in seed
//! order. [`parallel_map_indexed`] runs a closure over a work list on a
//! scoped `std::thread` pool and returns the results **in input
//! order**, which makes any order-dependent fold over them (counters,
//! histograms, violation lists) bit-identical to a sequential run — the
//! property the `--threads` determinism regression test pins.
//!
//! No work-stealing, no channels: workers claim indices from a shared
//! atomic cursor, accumulate `(index, result)` pairs locally, and the
//! caller reassembles the output vector after the scope joins. This
//! keeps the pool dependency-free (std only) and free of `unsafe`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `f(index, &item)` over every item, on up to `threads` worker
/// threads, returning results in input order.
///
/// With `threads <= 1` (or a single-item list) the closure runs inline
/// on the caller's thread — no pool is spun up, so `f` may rely on
/// running sequentially in that configuration.
///
/// # Panics
///
/// Propagates a panic from `f` (the scope join panics), and panics if a
/// worker died before producing its claimed result — both indicate a
/// bug in `f`, not in the pool.
pub fn parallel_map_indexed<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, it)| f(i, it)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);
    let mut collected: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            collected.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    for (i, r) in collected.into_iter().flatten() {
        out[i] = Some(r);
    }
    out.into_iter()
        .map(|r| r.expect("parallel worker dropped a result"))
        .collect()
}

/// Maps `f` over a contiguous seed range `start..start + count`, in up
/// to `threads` workers, returning results in seed order.
pub fn parallel_seeds<R, F>(threads: usize, start: u64, count: u64, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(u64) -> R + Sync,
{
    let seeds: Vec<u64> = (start..start + count).collect();
    parallel_map_indexed(threads, &seeds, |_, &seed| f(seed))
}

/// The host's available parallelism, for binaries defaulting
/// `--threads` to "all cores".
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<u64> = (0..257).collect();
        for threads in [1, 2, 4, 7] {
            let out = parallel_map_indexed(threads, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            assert_eq!(out.len(), items.len());
            for (i, r) in out.iter().enumerate() {
                assert_eq!(*r, i as u64 * 3 + 1);
            }
        }
    }

    #[test]
    fn parallel_matches_sequential_fold() {
        let seq = parallel_seeds(1, 10, 100, |s| s.wrapping_mul(0x9E37_79B9));
        let par = parallel_seeds(4, 10, 100, |s| s.wrapping_mul(0x9E37_79B9));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single_item_lists() {
        let empty: Vec<u32> = Vec::new();
        assert!(parallel_map_indexed(4, &empty, |_, x| *x).is_empty());
        assert_eq!(parallel_map_indexed(4, &[9u32], |_, x| *x + 1), vec![10]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = parallel_map_indexed(16, &[1u32, 2, 3], |_, x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }
}
