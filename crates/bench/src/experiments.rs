//! Experiment runners: one function per table/figure of the paper.
//!
//! Each runner builds the standard topology, injects the prescribed
//! failure, runs to completion, and extracts the metrics the paper
//! reports. The binaries in `src/bin/` are thin printers over these
//! functions, and the Criterion benches reuse the cheap ones.

use std::rc::Rc;

use obs::json::Json;
use obs::report::MetricsReport;
use obs::timeline::PhaseBreakdown;

use simnet::link::{LinkDir, LinkId};
use simnet::node::NodeId;
use simnet::serial::{SerialDir, SerialParams, SerialState};
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;

use simtcp::conn::{ConnStats, TcpConfig};

use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::events::{FailureReason, StTcpEvent};
use sttcp::heartbeat::{ConnHb, HbPayload, HB_CONN_LEN, HB_HEADER_LEN};
use sttcp::server::AppCrashMode;

use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::{ClientWorkload, ReconnectPolicy};
use sttcp_apps::scenario::{build_baseline, AppMaker, Scenario, ScenarioBuilder};

use crate::phases::{detection_bound, failover_timeline};

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn stream_app(chunk: usize) -> AppMaker {
    Rc::new(move || Box::new(StreamApp::new(chunk, false)) as _)
}

fn echo_app() -> AppMaker {
    Rc::new(|| Box::new(EchoApp::default()) as _)
}

fn chat_workload() -> ClientWorkload {
    ClientWorkload::EchoChat {
        chunk: 1024,
        period: SimDuration::from_millis(50),
        count: 400,
    }
}

fn fast_cfg(hb_ms: u64) -> StTcpConfig {
    StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        max_delay_fin: SimDuration::from_secs(5),
        ..StTcpConfig::with_hb_period(SimDuration::from_millis(hb_ms))
    }
}

fn detection_of(s: &Scenario, node: NodeId) -> Option<(FailureReason, SimTime)> {
    s.server(node).events().iter().find_map(|e| match e {
        StTcpEvent::PeerDeclaredFailed { reason, at } => Some((*reason, *at)),
        _ => None,
    })
}

// ---------------------------------------------------------------------
// Metrics-report assembly
// ---------------------------------------------------------------------

fn link_stats_json(w: &World, l: LinkId) -> Json {
    let a = w.link(l).stats(LinkDir::AtoB);
    let b = w.link(l).stats(LinkDir::BtoA);
    let mut o = Json::obj();
    o.set("offered", Json::U64(a.offered + b.offered));
    o.set("delivered", Json::U64(a.delivered + b.delivered));
    o.set("dropped_loss", Json::U64(a.dropped_loss + b.dropped_loss));
    o.set("dropped_down", Json::U64(a.dropped_down + b.dropped_down));
    o.set("corrupted", Json::U64(a.corrupted + b.corrupted));
    o.set(
        "bytes_delivered",
        Json::U64(a.bytes_delivered + b.bytes_delivered),
    );
    o
}

fn conn_stats_json(s: ConnStats) -> Json {
    let mut o = Json::obj();
    o.set("segs_out", Json::U64(s.segs_out));
    o.set("segs_in", Json::U64(s.segs_in));
    o.set("bytes_sent", Json::U64(s.bytes_sent));
    o.set("bytes_retransmitted", Json::U64(s.bytes_retransmitted));
    o.set("rto_fires", Json::U64(s.rto_fires));
    o.set("fast_retransmits", Json::U64(s.fast_retransmits));
    o
}

/// Assembles the four instrumented layers of a finished scenario into a
/// [`MetricsReport`]: `simnet` (per-link frame stats and fault
/// episodes), `tcp` (per-server transfer counters), and `core` (each
/// server's [`sttcp::metrics::ServerMetrics`]). The caller adds the
/// run-specific `client` and `phases` sections.
pub fn scenario_report(kind: &str, s: &Scenario) -> MetricsReport {
    let mut report = MetricsReport::new(kind);

    let mut links = Json::obj();
    links.set("client", link_stats_json(&s.world, s.link_client));
    links.set("primary", link_stats_json(&s.world, s.link_primary));
    links.set("backup", link_stats_json(&s.world, s.link_backup));
    let mut simnet_sec = Json::obj();
    simnet_sec.set("links", links);
    let faults: Vec<Json> = s
        .world
        .faults()
        .iter()
        .map(|(at, what)| {
            let mut f = Json::obj();
            f.set("at_us", Json::U64(at.as_micros()));
            f.set("what", Json::from(what.as_str()));
            f
        })
        .collect();
    simnet_sec.set("faults", Json::Arr(faults));
    report.set("simnet", simnet_sec);

    let mut tcp_sec = Json::obj();
    tcp_sec.set("primary", conn_stats_json(s.server(s.primary).tcp_stats()));
    tcp_sec.set("backup", conn_stats_json(s.server(s.backup).tcp_stats()));
    report.set("tcp", tcp_sec);

    let mut core_sec = Json::obj();
    core_sec.set("primary", s.server(s.primary).metrics().to_json());
    core_sec.set("backup", s.server(s.backup).metrics().to_json());
    report.set("core", core_sec);

    report
}

// ---------------------------------------------------------------------
// Demo 1 / Demo 2: failover
// ---------------------------------------------------------------------

/// One failover measurement (Demos 1 and 2).
#[derive(Debug, Clone)]
pub struct FailoverRun {
    /// Heartbeat period used.
    pub hb_period: SimDuration,
    /// Crash injection time.
    pub crash_at: SimTime,
    /// Crash → backup's failure verdict.
    pub detection: Option<SimDuration>,
    /// Crash → takeover complete (egress unsuppressed).
    pub takeover: Option<SimDuration>,
    /// Longest client-visible progress stall around the crash — the
    /// user-experienced failover time (detection + TCP restart delay).
    pub client_stall: SimDuration,
    /// The client finished its download on one connection.
    pub transparent: bool,
    /// Pattern violations (must be 0).
    pub violations: u64,
    /// The client's progress series (ms, bytes) for plotting.
    pub progress: Vec<(f64, f64)>,
    /// Phase breakdown of the longest client stall (present whenever the
    /// stall window is measurable; its `total` equals `client_stall`).
    pub breakdown: Option<PhaseBreakdown>,
    /// Full metrics report: simnet/tcp/core sections plus the client and
    /// phase data above.
    pub report: MetricsReport,
    /// The always-on flight recorder's tail at end of run — the causal
    /// trace of the crash → detection → takeover chain, ready for
    /// [`crate::flight::write_flight_dump`].
    pub flight: simnet::flight::FlightSnapshot,
}

/// Runs one primary-crash failover with the given heartbeat period.
pub fn run_failover(seed: u64, hb_ms: u64, total: u64, crash_ms: u64) -> FailoverRun {
    let cfg = StTcpConfig::with_hb_period(SimDuration::from_millis(hb_ms));
    let mut s = ScenarioBuilder::new(stream_app(4096), ClientWorkload::Download { total })
        .seed(seed)
        .sttcp(cfg)
        .build();
    s.crash_primary_at(t(crash_ms));
    s.world.run_until(t(crash_ms + 60_000 + total / 100));
    let log = s.client_log().clone();
    let crash = t(crash_ms);
    let end = log.finished_at.unwrap_or(s.world.now());
    let detection = detection_of(&s, s.backup).map(|(_, at)| at.saturating_since(crash));
    let takeover = s
        .server(s.backup)
        .took_over_at()
        .map(|at| at.saturating_since(crash));
    let stall_from = crash - SimDuration::from_millis(100);
    let client_stall = log.longest_stall(stall_from, end);
    // Anchor the phase timeline to the same window `client_stall` was
    // measured on: the breakdown's total equals the stall by construction.
    let breakdown = log
        .longest_stall_window(stall_from, end)
        .and_then(|(ws, we)| {
            failover_timeline(ws, we, Some(crash), s.server(s.backup).events()).breakdown()
        });

    let mut report = scenario_report("demo1_failover", &s);
    let mut config = Json::obj();
    config.set("seed", Json::U64(seed));
    config.set(
        "hb_period_us",
        Json::U64(SimDuration::from_millis(hb_ms).as_micros()),
    );
    config.set("crash_at_us", Json::U64(crash.as_micros()));
    config.set("total_bytes", Json::U64(total));
    report.set("config", config);
    let mut client = Json::obj();
    client.set("stall_us", Json::U64(client_stall.as_micros()));
    if let Some((ws, we)) = log.longest_stall_window(stall_from, end) {
        let mut w = Json::obj();
        w.set("start_us", Json::U64(ws.as_micros()));
        w.set("end_us", Json::U64(we.as_micros()));
        client.set("stall_window", w);
    }
    client.set("bytes_received", Json::U64(log.total_received));
    client.set("integrity_violations", Json::U64(log.integrity_violations));
    client.set("resets", Json::U64(u64::from(log.resets)));
    client.set(
        "transparent",
        Json::Bool(s.client_finished() && log.connects.len() == 1 && log.resets == 0),
    );
    report.set("client", client);
    if let Some(b) = &breakdown {
        report.set("phases", b.to_json());
    }

    FailoverRun {
        flight: s.world.flight_snapshot(None),
        hb_period: SimDuration::from_millis(hb_ms),
        crash_at: crash,
        detection,
        takeover,
        client_stall,
        transparent: s.client_finished() && log.connects.len() == 1 && log.resets == 0,
        violations: log.integrity_violations,
        progress: log
            .progress
            .iter()
            .map(|&(at, b)| (at.as_micros() as f64 / 1_000.0, b as f64))
            .collect(),
        breakdown,
        report,
    }
}

/// Runs the plain-TCP-with-standby baseline for the same crash (Demo 1's
/// contrast). Returns (disruption, reconnects, finished).
pub fn run_baseline_failover(
    seed: u64,
    total: u64,
    crash_ms: u64,
    stall_timeout: SimDuration,
) -> (SimDuration, u32, bool) {
    let policy = ReconnectPolicy {
        stall_timeout,
        targets: vec![("10.0.0.4".parse().unwrap(), 80)],
        reconnect_delay: SimDuration::from_millis(200),
    };
    let mut b = build_baseline(
        seed,
        stream_app(4096),
        ClientWorkload::Download { total },
        TcpConfig::default(),
        Some(policy),
    );
    b.crash_primary_at(t(crash_ms));
    b.world.run_until(t(crash_ms + 120_000));
    let log = b.client_log();
    let end = log.finished_at.unwrap_or(b.world.now());
    (
        log.longest_stall(t(crash_ms - 100), end),
        log.reconnects,
        b.client_finished(),
    )
}

/// A client-push failover run (EchoChat): at the crash the client has
/// unacked data in flight, so the post-detection restart is paced by the
/// *client's* retransmission backoff — the component the paper singles
/// out in Demo 2. Returns (detection, client stall, roundtrips done).
pub fn run_failover_push(
    seed: u64,
    hb_ms: u64,
    crash_ms: u64,
) -> (Option<SimDuration>, SimDuration, u32) {
    let cfg = StTcpConfig::with_hb_period(SimDuration::from_millis(hb_ms));
    let mut s = ScenarioBuilder::new(
        echo_app(),
        ClientWorkload::EchoChat {
            chunk: 1024,
            period: SimDuration::from_millis(25),
            count: 1_000,
        },
    )
    .seed(seed)
    .sttcp(cfg)
    .build();
    s.crash_primary_at(t(crash_ms));
    s.world.run_until(t(crash_ms + 90_000));
    assert!(
        s.client_finished() && s.client_log().integrity_violations == 0,
        "push failover failed"
    );
    let crash = t(crash_ms);
    let detection = detection_of(&s, s.backup).map(|(_, at)| at.saturating_since(crash));
    let log = s.client_log();
    let stall = log.longest_stall(
        crash - SimDuration::from_millis(100),
        log.finished_at.unwrap(),
    );
    (detection, stall, log.echo_roundtrips)
}

/// Demo 2: sweeps the heartbeat period over the paper's three values with
/// several crash phases each.
pub fn run_hb_sweep(trials: u32, total: u64) -> Vec<FailoverRun> {
    let mut out = Vec::new();
    for &hb_ms in &[200u64, 500, 1_000] {
        for i in 0..trials {
            // Vary seed and crash phase relative to the heartbeat.
            let crash_ms = 1_000 + (i as u64 * 137) % hb_ms;
            out.push(run_failover(100 + i as u64, hb_ms, total, crash_ms));
        }
    }
    out
}

// ---------------------------------------------------------------------
// Demo 3: failure-free overhead
// ---------------------------------------------------------------------

/// A failure-free transfer measurement with and without ST-TCP (Demo 3).
#[derive(Debug, Clone)]
pub struct OverheadRun {
    /// Transfer size in bytes.
    pub bytes: u64,
    /// Virtual completion time with ST-TCP (primary + active backup).
    pub sttcp_time: SimDuration,
    /// Virtual completion time with a plain TCP server.
    pub plain_time: SimDuration,
    /// Relative overhead `(sttcp - plain) / plain`.
    pub overhead: f64,
    /// Frames delivered to the client NIC in the ST-TCP run.
    pub sttcp_client_frames: u64,
    /// Frames delivered to the client NIC in the plain run.
    pub plain_client_frames: u64,
    /// Heartbeat bytes carried by the serial link during the ST-TCP run.
    pub hb_serial_bytes: u64,
}

/// Runs Demo 3: the same download with ST-TCP enabled and disabled.
pub fn run_overhead(seed: u64, total: u64) -> OverheadRun {
    let chunk = 64 * 1024;
    // ST-TCP run.
    let mut s = ScenarioBuilder::new(stream_app(chunk), ClientWorkload::Download { total })
        .seed(seed)
        .build();
    let deadline = t(600_000);
    s.world.run_until(deadline);
    assert!(s.client_finished(), "sttcp transfer incomplete");
    let connect = s.client_log().connects[0];
    let sttcp_time = s
        .client_log()
        .finished_at
        .unwrap()
        .saturating_since(connect);
    let sttcp_client_frames = s.world.link(s.link_client).stats(LinkDir::BtoA).delivered;
    let hb = s.world.serial(s.serial);
    let hb_serial_bytes =
        hb.stats(SerialDir::AtoB).bytes_delivered + hb.stats(SerialDir::BtoA).bytes_delivered;

    // Plain run.
    let mut b = build_baseline(
        seed,
        stream_app(chunk),
        ClientWorkload::Download { total },
        TcpConfig::default(),
        None,
    );
    b.world.run_until(deadline);
    assert!(b.client_finished(), "plain transfer incomplete");
    let connect = b.client_log().connects[0];
    let plain_time = b
        .client_log()
        .finished_at
        .unwrap()
        .saturating_since(connect);
    let plain_client_frames = b.world.link(b.link_client).stats(LinkDir::BtoA).delivered;

    let overhead = (sttcp_time.as_micros() as f64 - plain_time.as_micros() as f64)
        / plain_time.as_micros() as f64;
    OverheadRun {
        bytes: total,
        sttcp_time,
        plain_time,
        overhead,
        sttcp_client_frames,
        plain_client_frames,
        hb_serial_bytes,
    }
}

// ---------------------------------------------------------------------
// Table 1: the full single-failure matrix
// ---------------------------------------------------------------------

/// Outcome of one Table 1 scenario.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Row number in the paper's table (1-5).
    pub row: u32,
    /// Failure location ("primary" or "backup").
    pub location: &'static str,
    /// What was injected.
    pub failure: String,
    /// The symptom observed (which detector fired, if any).
    pub symptom: String,
    /// The recovery action taken.
    pub recovery: String,
    /// Crash → detection latency, when a detector fired.
    pub detection: Option<SimDuration>,
    /// Which detector fired, when one did.
    pub reason: Option<FailureReason>,
    /// The configured worst-case detection latency for that detector
    /// (`detection` must stay within it).
    pub bound: Option<SimDuration>,
    /// The client's stream stayed correct and uninterrupted.
    pub client_ok: bool,
}

impl Table1Row {
    /// True when the measured detection latency violates its configured
    /// bound. Rows without a verdict or without a time-bounded detector
    /// never violate.
    pub fn bound_violated(&self) -> bool {
        matches!((self.detection, self.bound), (Some(d), Some(b)) if d > b)
    }
}

/// Runs all ten Table 1 scenarios and reports each row's observed
/// symptom and recovery action.
pub fn run_table1_matrix(seed: u64) -> Vec<Table1Row> {
    run_table1_matrix_threaded(seed, 1)
}

/// [`run_table1_matrix`] with the ten independent scenarios fanned out
/// over up to `threads` workers. Each scenario's seed derives from
/// `seed` and its fixed case index alone, so the rows come back in the
/// same order with the same content as a sequential run.
pub fn run_table1_matrix_threaded(seed: u64, threads: usize) -> Vec<Table1Row> {
    let cases: Vec<u32> = (0..10).collect();
    crate::parallel::parallel_map_indexed(threads, &cases, |_, &case| table1_case(seed, case))
}

/// Runs one of the ten Table 1 scenarios (`case` in `0..10`). The case
/// index doubles as the seed bump, matching the order the sequential
/// matrix has always used.
fn table1_case(seed: u64, case: u32) -> Table1Row {
    let inject_at = 2_000u64;

    let finish = |mut s: Scenario| -> Scenario {
        s.world.run_until(t(90_000));
        s
    };
    let client_ok = |s: &Scenario| {
        s.client_finished()
            && s.client_log().integrity_violations == 0
            && s.client_log().resets == 0
            && s.client_log().connects.len() == 1
    };
    let recovery_of = |s: &Scenario| -> String {
        let b = s.server(s.backup);
        let p = s.server(s.primary);
        if b.took_over_at().is_some() {
            "backup took over; primary shut down".into()
        } else if p
            .events()
            .iter()
            .any(|e| matches!(e, StTcpEvent::WentNonFt { .. }))
        {
            "primary non-fault-tolerant; backup shut down".into()
        } else if b
            .events()
            .iter()
            .any(|e| matches!(e, StTcpEvent::RecoveryCompleted { .. }))
        {
            "backup fetched missed bytes from primary".into()
        } else {
            "none required (normal TCP behaviour)".into()
        }
    };
    let symptom_of = |s: &Scenario,
                      detector_node: NodeId|
     -> (String, Option<FailureReason>, Option<SimDuration>) {
        match detection_of(s, detector_node) {
            Some((reason, at)) => (
                reason.to_string(),
                Some(reason),
                Some(at.saturating_since(t(inject_at))),
            ),
            None => ("no failure declared".into(), None, None),
        }
    };
    let bound_of =
        |reason: Option<FailureReason>| reason.and_then(|r| detection_bound(&fast_cfg(200), r));

    let s_seed = seed + case as u64;
    let on_primary = case.is_multiple_of(2);
    let location = if on_primary { "primary" } else { "backup" };
    match case {
        // Row 1: HW/OS crash.
        0 | 1 => {
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(fast_cfg(200))
                .build();
            if on_primary {
                s.crash_primary_at(t(inject_at));
            } else {
                s.crash_backup_at(t(inject_at));
            }
            let s = finish(s);
            let detector = if on_primary { s.backup } else { s.primary };
            let (symptom, reason, det) = symptom_of(&s, detector);
            Table1Row {
                row: 1,
                location,
                failure: "HW/OS crash".into(),
                symptom,
                recovery: recovery_of(&s),
                detection: det,
                reason,
                bound: bound_of(reason),
                client_ok: client_ok(&s),
            }
        }
        // Row 2: application crash without cleanup.
        2 | 3 => {
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(fast_cfg(200))
                .build();
            let victim = if on_primary { s.primary } else { s.backup };
            let detector = if on_primary { s.backup } else { s.primary };
            s.crash_app_at(victim, t(inject_at), AppCrashMode::SilentNoCleanup);
            let s = finish(s);
            let (symptom, reason, det) = symptom_of(&s, detector);
            Table1Row {
                row: 2,
                location,
                failure: "app crash, no FIN/RST".into(),
                symptom,
                recovery: recovery_of(&s),
                detection: det,
                reason,
                bound: bound_of(reason),
                client_ok: client_ok(&s),
            }
        }
        // Row 3: application crash with cleanup (FIN generated).
        4 | 5 => {
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(fast_cfg(200))
                .build();
            let victim = if on_primary { s.primary } else { s.backup };
            let detector = if on_primary { s.backup } else { s.primary };
            s.crash_app_at(victim, t(inject_at), AppCrashMode::CleanupFin);
            let s = finish(s);
            let (symptom, reason, det) = symptom_of(&s, detector);
            let held = s
                .server(victim)
                .events()
                .iter()
                .any(|e| matches!(e, StTcpEvent::FinHeld { .. }));
            Table1Row {
                row: 3,
                location,
                failure: format!(
                    "app crash, FIN generated{}",
                    if held { " (held)" } else { "" }
                ),
                symptom,
                recovery: recovery_of(&s),
                detection: det,
                reason,
                bound: bound_of(reason),
                client_ok: client_ok(&s),
            }
        }
        // Row 4: NIC failure.
        6 | 7 => {
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(fast_cfg(200))
                .build();
            let victim = if on_primary { s.primary } else { s.backup };
            let detector = if on_primary { s.backup } else { s.primary };
            s.fail_nic_at(victim, t(inject_at));
            let s = finish(s);
            let (symptom, reason, det) = symptom_of(&s, detector);
            Table1Row {
                row: 4,
                location,
                failure: "NIC failure".into(),
                symptom,
                recovery: recovery_of(&s),
                detection: det,
                reason,
                bound: bound_of(reason),
                client_ok: client_ok(&s),
            }
        }
        // Row 5: temporary network failure — client frames lost on the tap.
        8 => {
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(fast_cfg(200))
                .build();
            s.drop_backup_tap_at(t(inject_at), 20);
            let s = finish(s);
            let recovered = s
                .server(s.backup)
                .events()
                .iter()
                .any(|e| matches!(e, StTcpEvent::RecoveryCompleted { .. }));
            Table1Row {
                row: 5,
                location: "backup",
                failure: "20 client frames lost on the tap".into(),
                symptom: if recovered {
                    "HB up; backup missed client bytes".into()
                } else {
                    "loss not observed".into()
                },
                recovery: recovery_of(&s),
                detection: None,
                reason: None,
                bound: None,
                client_ok: client_ok(&s),
            }
        }
        // Row 5: temporary network failure — short outage toward the
        // primary.
        _ => {
            // Paper-default lag thresholds here: a 300 ms outage takes TCP
            // about a second of fast-retransmit hole-filling to repair, which
            // must stay comfortably inside AppMaxLagTime (2 s default) — the
            // whole point of the row is that *temporary* failures shorter
            // than the thresholds never trigger ST-TCP.
            let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
                .seed(s_seed)
                .sttcp(StTcpConfig::with_hb_period(SimDuration::from_millis(200)))
                .build();
            s.drop_primary_tap_for(t(inject_at), SimDuration::from_millis(300));
            let s = finish(s);
            let no_verdicts =
                detection_of(&s, s.primary).is_none() && detection_of(&s, s.backup).is_none();
            Table1Row {
                row: 5,
                location: "primary",
                failure: "300ms client-frame outage toward primary".into(),
                symptom: if no_verdicts {
                    "primary missed bytes; client retransmits".into()
                } else {
                    "unexpected failure verdict".into()
                },
                recovery: recovery_of(&s),
                detection: None,
                reason: None,
                bound: None,
                client_ok: client_ok(&s),
            }
        }
    }
}

// ---------------------------------------------------------------------
// §3: serial-link capacity
// ---------------------------------------------------------------------

/// Serial heartbeat capacity analysis (the paper's "~100 connections on a
/// 115.2 kbps serial link" claim).
#[derive(Debug, Clone)]
pub struct SerialCapacity {
    /// Heartbeat period assumed.
    pub hb_period: SimDuration,
    /// Measured wire bytes per connection record.
    pub bytes_per_conn: usize,
    /// Header bytes per heartbeat message.
    pub header_bytes: usize,
    /// Computed bandwidth per connection in bits/s (with 8N1 framing).
    pub bits_per_sec_per_conn: f64,
    /// Largest connection count whose heartbeat serializes within one
    /// period on the RS-232 model.
    pub max_conns: usize,
    /// Link utilization at `max_conns`.
    pub utilization_at_max: f64,
}

/// Measures heartbeat wire cost and serial capacity by binary search on
/// the channel model.
pub fn run_serial_capacity(hb_ms: u64) -> SerialCapacity {
    let period = SimDuration::from_millis(hb_ms);
    let chan = SerialState::new(
        (NodeId(0), simnet::node::SerialPortId(0)),
        (NodeId(1), simnet::node::SerialPortId(0)),
        SerialParams::rs232(),
    );
    let wire_len = |conns: usize| -> usize {
        let hb = HbPayload {
            seqno: 0,
            role: sttcp::config::Role::Primary,
            rank: 0,
            conns: vec![ConnHb::default(); conns],
            ping: None,
        };
        hb.encode().len()
    };
    // Hard cap from the u16 count field; search the feasible region.
    let mut max_conns = 0;
    for n in 1..=6_000usize {
        // The HB must fully serialize within one period (both directions
        // are independent, so one direction's budget is the whole period).
        if chan.serialization_time(wire_len(n)) <= period {
            max_conns = n;
        } else {
            break;
        }
    }
    let per_conn_bits = (HB_CONN_LEN as f64) * 10.0; // 8N1 framing
    let bits_per_sec_per_conn = per_conn_bits / period.as_secs_f64();
    let utilization_at_max =
        chan.serialization_time(wire_len(max_conns)).as_secs_f64() / period.as_secs_f64();
    SerialCapacity {
        hb_period: period,
        bytes_per_conn: HB_CONN_LEN,
        header_bytes: HB_HEADER_LEN,
        bits_per_sec_per_conn,
        max_conns,
        utilization_at_max,
    }
}

// ---------------------------------------------------------------------
// §4.3: temporary network failure sweep
// ---------------------------------------------------------------------

/// One loss-burst recovery measurement (E-S2).
#[derive(Debug, Clone)]
pub struct TempNetFailRun {
    /// Frames dropped on the backup's tap.
    pub burst: u64,
    /// The backup issued at least one fetch request.
    pub recovery_requested: bool,
    /// The backup fully caught up.
    pub recovered: bool,
    /// Injection → recovery completion.
    pub recovery_time: Option<SimDuration>,
    /// Anybody declared failed? (Expected only in the overflow case.)
    pub verdict: Option<FailureReason>,
    /// Client stream survived intact.
    pub client_ok: bool,
}

/// Runs a loss burst of `burst` frames against the backup tap; with
/// `tiny_hold`, the primary's extended receive buffer is shrunk so the
/// burst overflows it (the paper's "backup considered failed" case needs
/// a *sustained* outage — modelled by a long drop window instead of a
/// burst when `tiny_hold` is set).
pub fn run_temp_netfail(seed: u64, burst: u64, tiny_hold: bool) -> TempNetFailRun {
    let inject = 2_000u64;
    let mut cfg = fast_cfg(200);
    if tiny_hold {
        cfg.hold_buf = 2 * 1024;
        // Keep the recovery channel from refilling the gap: sustained
        // outage on the tap.
        cfg.recovery_interval = SimDuration::from_secs(600);
    }
    let mut s = ScenarioBuilder::new(echo_app(), chat_workload())
        .seed(seed)
        .sttcp(cfg)
        .build();
    s.drop_backup_tap_at(t(inject), burst);
    s.world.run_until(t(90_000));

    let backup_events = s.server(s.backup).events().to_vec();
    let requested = backup_events
        .iter()
        .any(|e| matches!(e, StTcpEvent::RecoveryRequested { .. }));
    let recovered_at = backup_events.iter().find_map(|e| match e {
        StTcpEvent::RecoveryCompleted { at, .. } => Some(*at),
        _ => None,
    });
    let verdict = detection_of(&s, s.primary)
        .or(detection_of(&s, s.backup))
        .map(|(r, _)| r);
    TempNetFailRun {
        burst,
        recovery_requested: requested,
        recovered: recovered_at.is_some(),
        recovery_time: recovered_at.map(|at| at.saturating_since(t(inject))),
        verdict,
        client_ok: s.client_finished() && s.client_log().integrity_violations == 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_runner_produces_sane_metrics() {
        // 512 KiB at ~400 KB/s spans ~1.3 s; the crash at 700 ms lands
        // mid-transfer.
        let r = run_failover(5, 200, 512 * 1024, 700);
        assert!(r.transparent, "{r:?}");
        assert_eq!(r.violations, 0);
        let d = r.detection.expect("detected");
        assert!(d >= SimDuration::from_millis(300) && d <= SimDuration::from_millis(700));
        assert!(r.takeover.unwrap() >= d);
        assert!(r.client_stall >= d);
        assert!(!r.progress.is_empty());
    }

    #[test]
    fn failover_phases_sum_to_the_client_stall() {
        let r = run_failover(5, 200, 512 * 1024, 700);
        let b = r.breakdown.expect("stall window measurable");
        // The breakdown partitions the same window longest_stall measured:
        // totals agree exactly, and the six phases sum to the total.
        assert_eq!(b.total, r.client_stall);
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        assert_eq!(sum, b.total);
        // The verdict-bounded part of the stall respects the configured
        // detection bound for the detector that fired.
        let cfg = StTcpConfig::with_hb_period(SimDuration::from_millis(200));
        let bound = detection_bound(&cfg, FailureReason::HbBothLinksDown).unwrap();
        assert!(b.detection() <= bound, "{:?} > {bound:?}", b.detection());
        // Every layer reported a section.
        let j = r.report.to_json();
        for sec in [
            "\"simnet\"",
            "\"tcp\"",
            "\"core\"",
            "\"client\"",
            "\"phases\"",
            "\"config\"",
        ] {
            assert!(j.contains(sec), "report missing {sec}: {j}");
        }
        // Cross-check: the client section's stall equals the phase total.
        let stall_us = r
            .report
            .get("client")
            .and_then(|c| c.get("stall_us"))
            .cloned();
        assert_eq!(stall_us, Some(Json::U64(b.total.as_micros())));
    }

    #[test]
    fn serial_capacity_matches_paper_scale() {
        let c = run_serial_capacity(200);
        assert_eq!(c.bytes_per_conn, 21);
        // ~0.8-1.1 kbit/s per connection at 200 ms (paper says ~0.8).
        assert!(c.bits_per_sec_per_conn > 800.0 && c.bits_per_sec_per_conn < 1_200.0);
        // On the order of 100 connections.
        assert!(
            c.max_conns >= 80 && c.max_conns <= 130,
            "max_conns = {}",
            c.max_conns
        );
        assert!(c.utilization_at_max <= 1.0);
    }

    #[test]
    fn overhead_runner_reports_small_overhead() {
        let r = run_overhead(6, 2 * 1024 * 1024);
        assert!(r.overhead.abs() < 0.05, "overhead {}", r.overhead);
        assert!(r.hb_serial_bytes > 0);
    }

    #[test]
    fn temp_netfail_runner_recovers_small_bursts() {
        let r = run_temp_netfail(7, 10, false);
        assert!(r.recovery_requested && r.recovered, "{r:?}");
        assert!(r.client_ok);
        assert_eq!(r.verdict, None);
    }
}
