//! # sttcp-bench — the experiment harness
//!
//! Regenerates every table and demo from *"A System Demonstration of
//! ST-TCP"* (DSN 2005) against the simulated reproduction:
//!
//! | Binary | Paper element |
//! |---|---|
//! | `table1_matrix` | Table 1 — all ten single-failure scenarios |
//! | `demo1_failover` | Demo 1 — client-transparent seamless failover |
//! | `demo2_hb_sweep` | Demo 2 — failover time vs heartbeat frequency |
//! | `demo3_overhead` | Demo 3 — failure-free overhead |
//! | `demo4_app_crash` | Demo 4 — application crash failures |
//! | `demo5_nic_failure` | Demo 5 — NIC failures |
//! | `serial_capacity` | §3 — serial heartbeat-link capacity |
//! | `temp_netfail` | §4.3 / Table 1 row 5 — temporary network failures |
//! | `demo6_reintegration` | beyond the paper — backup re-integration after failover |
//! | `demo7_pool` | beyond the paper — N-replica pool, quorum-fenced rank takeover |
//! | `state_explore` | beyond the paper — bounded-exhaustive fault-timing lattice |
//!
//! Run any of them with `cargo run -p sttcp-bench --bin <name>`; the
//! Criterion micro-benchmarks (`cargo bench`) cover the per-segment CPU
//! costs the virtual clock cannot see.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod explore;
pub mod flight;
pub mod hunt;
pub mod parallel;
pub mod phases;
pub mod report;
