//! Plain-text table and series rendering for experiment output.
//!
//! Every experiment binary prints through these helpers so the harness
//! output has one consistent, diffable shape (EXPERIMENTS.md records it
//! verbatim).

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Table {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate() {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let sep = {
            let mut s = String::from("|");
            for w in &widths {
                s.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Renders a `(x, y)` series as an ASCII sparkline block, `rows` lines
/// tall, for quick visual inspection of progress curves.
pub fn render_series(points: &[(f64, f64)], width: usize, rows: usize) -> String {
    if points.is_empty() || width == 0 || rows == 0 {
        return String::new();
    }
    let (x_min, x_max) = points
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(x, _)| {
            (lo.min(x), hi.max(x))
        });
    let (y_min, y_max) = points
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &(_, y)| {
            (lo.min(y), hi.max(y))
        });
    let x_span = (x_max - x_min).max(f64::MIN_POSITIVE);
    let y_span = (y_max - y_min).max(f64::MIN_POSITIVE);
    // Bin by x, keeping the max y per bin.
    let mut bins: Vec<Option<f64>> = vec![None; width];
    for &(x, y) in points {
        let i = (((x - x_min) / x_span) * (width as f64 - 1.0)).round() as usize;
        let e = &mut bins[i.min(width - 1)];
        *e = Some(e.map_or(y, |v: f64| v.max(y)));
    }
    let mut grid = vec![vec![' '; width]; rows];
    let mut last = None;
    for (i, b) in bins.iter().enumerate() {
        let y = match b.or(last) {
            Some(y) => y,
            None => continue,
        };
        last = Some(y);
        let r = (((y - y_min) / y_span) * (rows as f64 - 1.0)).round() as usize;
        let r = rows - 1 - r.min(rows - 1);
        grid[r][i] = '*';
    }
    let mut out = String::new();
    for row in grid {
        out.push_str(&row.into_iter().collect::<String>());
        out.push('\n');
    }
    out
}

/// Formats a fraction as a signed percentage with two decimals.
pub fn pct(fraction: f64) -> String {
    format!("{:+.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["alpha", "1"]);
        t.row(vec!["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines are equally wide.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(s.contains("alpha"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only one"]);
    }

    #[test]
    fn series_renders_monotone_curve() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64)).collect();
        let s = render_series(&pts, 40, 8);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 8);
        // Rising curve: the top row has stars only to the right of the
        // bottom row's stars.
        let first_star = |l: &str| l.find('*');
        let top = first_star(lines[0]).unwrap();
        let bottom = first_star(lines[7]).unwrap();
        assert!(top > bottom);
    }

    #[test]
    fn series_degenerate_inputs() {
        assert_eq!(render_series(&[], 10, 4), "");
        let flat = vec![(0.0, 5.0), (1.0, 5.0)];
        let s = render_series(&flat, 10, 2);
        assert!(s.contains('*'));
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.0123), "+1.23%");
        assert_eq!(pct(-0.5), "-50.00%");
    }
}
