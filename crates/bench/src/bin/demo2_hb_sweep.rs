//! Regenerates **Demo 2**: dependence of failover time on heartbeat
//! frequency.
//!
//! Sweeps the heartbeat period over the paper's three values (200 ms,
//! 500 ms, 1 s) with several crash phases per period, and decomposes the
//! client-visible failover time into the detection component (heartbeat
//! timeout) and the TCP-restart component (retransmission backoff).
//!
//! Run with: `cargo run -p sttcp-bench --bin demo2_hb_sweep --release`

use simnet::time::SimDuration;
use sttcp_bench::experiments::{run_failover_push, run_hb_sweep};
use sttcp_bench::report::Table;

fn main() {
    const TOTAL: u64 = 2 * 1024 * 1024;
    const TRIALS: u32 = 5;

    println!("Demo 2 — failover time vs heartbeat period ({TRIALS} trials each)\n");
    let runs = run_hb_sweep(TRIALS, TOTAL);

    let mut t = Table::new(vec![
        "HB period",
        "detection min/avg/max",
        "takeover avg",
        "client stall min/avg/max",
        "restart component avg",
    ]);
    for &hb in &[200u64, 500, 1_000] {
        let group: Vec<_> = runs
            .iter()
            .filter(|r| r.hb_period == SimDuration::from_millis(hb))
            .collect();
        assert!(group.iter().all(|r| r.transparent && r.violations == 0));
        let stats = |f: &dyn Fn(&&&sttcp_bench::experiments::FailoverRun) -> u64| {
            let mut v: Vec<u64> = group.iter().map(|r| f(&r)).collect();
            v.sort_unstable();
            let avg = v.iter().sum::<u64>() / v.len() as u64;
            (v[0], avg, v[v.len() - 1])
        };
        let (dmin, davg, dmax) = stats(&|r| r.detection.unwrap().as_millis());
        let (_, tavg, _) = stats(&|r| r.takeover.unwrap().as_millis());
        let (smin, savg, smax) = stats(&|r| r.client_stall.as_millis());
        let restart = savg.saturating_sub(davg);
        t.row(vec![
            format!("{hb} ms"),
            format!("{dmin}/{davg}/{dmax} ms"),
            format!("{tavg} ms"),
            format!("{smin}/{savg}/{smax} ms"),
            format!("~{restart} ms"),
        ]);
    }
    println!("{t}");
    println!(
        "shape check: failover time grows with the heartbeat period\n\
         (detection ≈ 2-3 periods) plus a backoff-quantized TCP restart delay,\n\
         exactly the decomposition the paper describes.\n"
    );

    // The paper's second failover-time component — "the delay until the
    // next client … retransmission" — only appears when the *client* has
    // unacked data at the crash. A client-push (echo) workload shows it:
    // the stall exceeds detection by the client's backed-off RTO gap.
    println!("client-push workload (client retransmission paces the restart):\n");
    let mut t2 = Table::new(vec![
        "HB period",
        "detection",
        "client stall",
        "restart component (client RTO backoff)",
    ]);
    for &hb in &[200u64, 500, 1_000] {
        let (det, stall, _rt) = run_failover_push(7, hb, 2_000);
        let det = det.expect("detected");
        t2.row(vec![
            format!("{hb} ms"),
            det.to_string(),
            stall.to_string(),
            stall.saturating_sub(det).to_string(),
        ]);
    }
    println!("{t2}");
    println!(
        "note: the paper expects this component to grow with detection time\n\
         (client/backup RTOs back off while the failure goes undetected). Here\n\
         it is small and *constant*, for two reasons our implementation makes\n\
         explicit: (1) the multicast tap keeps capturing client segments while\n\
         the primary is dead, so the new primary already holds the client's\n\
         in-flight data and acks it at takeover; (2) takeover actively rewinds\n\
         and retransmits rather than waiting for the next backed-off RTO.\n\
         Disable the takeover rewind and the paper's backoff-quantized delay\n\
         reappears — the restart cost is an implementation choice, not a\n\
         protocol constant."
    );
}
