//! Regenerates **Demo 7**: the N-replica standby pool.
//!
//! Streams a 4 MiB download to a client served by a three-member pool
//! (one active, two tapping standbys on a pairwise heartbeat mesh).
//! The demo kills the active mid-transfer: the rank-1 standby may take
//! over only after a quorum of surviving members confirms the peer dead
//! (quorum-checked fencing, replacing the pair's single-shot STONITH).
//! The fenced machine then warm-reboots and re-integrates — rejoining
//! as a fresh backup under a new rank at the back of the order. Finally
//! the second active is killed too: the rank-2 standby fences it with
//! the rejoiner's vote and finishes the verified transfer on the same
//! client connection.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo7_pool --release`
//!
//! `--json <path>` additionally writes the run's `MetricsReport`
//! (config, milestones, pool-strength samples, client verdicts, and the
//! per-takeover phase breakdowns) to `path`.

use std::path::PathBuf;
use std::process::exit;
use std::rc::Rc;

use obs::json::Json;
use obs::report::MetricsReport;
use simnet::time::{SimDuration, SimTime};
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::pool::PoolScenarioBuilder;
use sttcp_bench::flight::{dumps_to_json, flight_dir_for, write_flight_dump};
use sttcp_bench::phases::failover_timeline;
use sttcp_bench::report::{render_series, Table};

fn parse_args() -> Option<PathBuf> {
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: demo7_pool [--json <path>]");
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    json
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn event_at(events: &[StTcpEvent], f: impl Fn(&StTcpEvent) -> Option<SimTime>) -> Option<SimTime> {
    events.iter().find_map(f)
}

fn main() {
    const REPLICAS: usize = 3;
    const TOTAL: u64 = 4 * 1024 * 1024;
    const CRASH1_MS: u64 = 1_000;
    const REBOOT_MS: u64 = 2_500;
    const CRASH2_MS: u64 = 5_000;
    let json_path = parse_args();

    println!("Demo 7 — N-replica standby pool ({REPLICAS} members)\n");
    println!(
        "schedule: crash rank-0 (active) @{CRASH1_MS}ms, warm-reboot it @{REBOOT_MS}ms, \
         crash rank-1 (new active) @{CRASH2_MS}ms"
    );

    let mut s = PoolScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total: TOTAL },
    )
    .seed(7)
    .replicas(REPLICAS)
    .sttcp(StTcpConfig {
        reintegrate: true,
        ..StTcpConfig::default()
    })
    .build();
    s.crash_at(0, t(CRASH1_MS));
    s.reboot_at(0, t(REBOOT_MS));
    s.crash_at(1, t(CRASH2_MS));

    // Sample the pool-strength gauge (live, unfenced members as the
    // current active counts them) alongside the run.
    let horizon = t(60_000);
    let step = SimDuration::from_millis(250);
    let mut strength: Vec<(SimTime, u64)> = Vec::new();
    loop {
        let now = s.world.now();
        if let Some(active) = (0..REPLICAS).find(|&i| s.server(i).is_active()) {
            if let Some(v) = s.server(active).pool_strength() {
                match strength.last() {
                    Some(&(_, last)) if last == v => {}
                    _ => strength.push((now, v)),
                }
            }
        }
        if s.client_finished() || now >= horizon {
            break;
        }
        s.world.run_until((now + step).min(horizon));
    }

    let log = s.client_log().clone();
    assert!(
        s.client_finished(),
        "client did not finish: {} / {TOTAL} bytes",
        log.total_received
    );
    assert_eq!(log.integrity_violations, 0, "stream integrity violated");
    assert_eq!(log.resets, 0, "client saw a connection reset");
    assert_eq!(log.connects.len(), 1, "client had to reconnect");
    let end = log.finished_at.unwrap_or(s.world.now());

    // First takeover is rank-1's story, the second rank-2's; the
    // re-integration milestones live on the rebooted rank-0's log.
    let member_events: Vec<Vec<StTcpEvent>> = (0..REPLICAS)
        .map(|i| s.server(i).events().to_vec())
        .collect();
    let quorum1 = event_at(&member_events[1], |e| match e {
        StTcpEvent::FenceQuorumReached { at, .. } => Some(*at),
        _ => None,
    });
    let takeover1 = event_at(&member_events[1], |e| match e {
        StTcpEvent::TookOver { at } => Some(*at),
        _ => None,
    });
    let rejoined_at = s
        .server(0)
        .reintegrated_at()
        .expect("rebooted ex-active never completed re-integration");
    let new_rank = s.server(0).pool_rank();
    assert!(
        new_rank >= REPLICAS as u8,
        "rejoiner kept rank {new_rank} instead of moving to the back"
    );
    let quorum2 = event_at(&member_events[2], |e| match e {
        StTcpEvent::FenceQuorumReached { at, .. } => Some(*at),
        _ => None,
    });
    let takeover2 = event_at(&member_events[2], |e| match e {
        StTcpEvent::TookOver { at } => Some(*at),
        _ => None,
    });
    assert!(
        s.server(2).is_active(),
        "rank-2 must hold the service at end of run"
    );
    for (i, tk, q) in [(1usize, takeover1, quorum1), (2, takeover2, quorum2)] {
        let tk = tk.unwrap_or_else(|| panic!("rank-{i} never took over"));
        let q = q.unwrap_or_else(|| panic!("rank-{i} took over without a fence quorum"));
        assert!(q <= tk, "rank-{i}: quorum at {q} after takeover at {tk}");
    }

    println!("\nclient progress (x: time, y: bytes; two actives crashed):\n");
    print!(
        "{}",
        render_series(
            &log.progress
                .iter()
                .map(|&(at, b)| (at.as_micros() as f64 / 1_000.0, b as f64))
                .collect::<Vec<_>>(),
            72,
            12,
        )
    );

    let fmt = |at: Option<SimTime>| at.map(|a| a.to_string()).unwrap_or_default();
    let mut mt = Table::new(vec!["milestone", "time"]);
    mt.row(vec![
        "rank-0 (active) crashed".into(),
        t(CRASH1_MS).to_string(),
    ]);
    mt.row(vec!["rank-1 fence quorum (2 votes)".into(), fmt(quorum1)]);
    mt.row(vec!["rank-1 takeover".into(), fmt(takeover1)]);
    mt.row(vec!["rank-0 warm reboot".into(), t(REBOOT_MS).to_string()]);
    mt.row(vec![
        format!("rank-0 rejoined as rank-{new_rank}"),
        rejoined_at.to_string(),
    ]);
    mt.row(vec![
        "rank-1 (active) crashed".into(),
        t(CRASH2_MS).to_string(),
    ]);
    mt.row(vec!["rank-2 fence quorum".into(), fmt(quorum2)]);
    mt.row(vec!["rank-2 takeover".into(), fmt(takeover2)]);
    mt.row(vec!["transfer complete".into(), end.to_string()]);
    println!("\n{mt}");

    println!("pool strength as seen by the current active:\n");
    let mut st = Table::new(vec!["time", "live members"]);
    for (at, v) in &strength {
        st.row(vec![at.to_string(), v.to_string()]);
    }
    println!("{st}");

    // Per-takeover phase breakdowns, each anchored to the client stall
    // it caused and restricted to its own failover epoch.
    let mut phase_json = Vec::new();
    for (label, crash_ms, events) in [
        (
            "first takeover (rank-1, quorum-fenced)",
            CRASH1_MS,
            &member_events[1],
        ),
        (
            "second takeover (rank-2, rejoiner votes)",
            CRASH2_MS,
            &member_events[2],
        ),
    ] {
        let from = t(crash_ms) - SimDuration::from_millis(100);
        let to = t(crash_ms + 10_000).min(end);
        let Some((ws, we)) = log.longest_stall_window(from, to) else {
            continue;
        };
        let in_window: Vec<StTcpEvent> = events
            .iter()
            .filter(|e| e.at() <= we && e.at() >= t(crash_ms))
            .cloned()
            .collect();
        let Some(b) = failover_timeline(ws, we, Some(t(crash_ms)), &in_window).breakdown() else {
            continue;
        };
        println!("{label} — phase breakdown (stall {}):\n", b.total);
        let mut pt = Table::new(vec!["phase", "duration"]);
        for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
            pt.row(vec![p.name().to_string(), d.to_string()]);
        }
        println!("{pt}");
        phase_json.push((label, b));
    }

    if let Some(path) = json_path {
        let mut report = MetricsReport::new("demo7_pool");
        let mut config = Json::obj();
        config.set("seed", Json::U64(7));
        config.set("replicas", Json::U64(REPLICAS as u64));
        config.set("total_bytes", Json::U64(TOTAL));
        config.set("crash_rank0_us", Json::U64(t(CRASH1_MS).as_micros()));
        config.set("reboot_rank0_us", Json::U64(t(REBOOT_MS).as_micros()));
        config.set("crash_rank1_us", Json::U64(t(CRASH2_MS).as_micros()));
        report.set("config", config);

        let mut ms = Json::obj();
        let set_at = |o: &mut Json, k: &str, at: Option<SimTime>| {
            if let Some(at) = at {
                o.set(k, Json::U64(at.as_micros()));
            }
        };
        set_at(&mut ms, "rank1_quorum_us", quorum1);
        set_at(&mut ms, "rank1_takeover_us", takeover1);
        ms.set("rank0_rejoined_us", Json::U64(rejoined_at.as_micros()));
        ms.set("rank0_new_rank", Json::U64(u64::from(new_rank)));
        set_at(&mut ms, "rank2_quorum_us", quorum2);
        set_at(&mut ms, "rank2_takeover_us", takeover2);
        ms.set("finished_us", Json::U64(end.as_micros()));
        report.set("milestones", ms);

        let gauge = Json::Arr(
            strength
                .iter()
                .map(|&(at, v)| {
                    let mut o = Json::obj();
                    o.set("at_us", Json::U64(at.as_micros()));
                    o.set("live", Json::U64(v));
                    o
                })
                .collect(),
        );
        report.set("pool_strength", gauge);

        let mut client = Json::obj();
        client.set("bytes_received", Json::U64(log.total_received));
        client.set("integrity_violations", Json::U64(log.integrity_violations));
        client.set("resets", Json::U64(u64::from(log.resets)));
        client.set(
            "transparent",
            Json::Bool(log.connects.len() == 1 && log.resets == 0),
        );
        report.set("client", client);

        let mut phases = Json::obj();
        for (i, (_, b)) in phase_json.iter().enumerate() {
            phases.set(
                if i == 0 {
                    "first_takeover"
                } else {
                    "second_takeover"
                },
                b.to_json(),
            );
        }
        report.set("phases", phases);

        // Both quorum-fenced takeovers, as a causal trace: heartbeat
        // silence → fence request/acks → commit → verdict → takeover.
        match write_flight_dump(
            &flight_dir_for(Some(&path)),
            "demo7",
            &s.world.flight_snapshot(None),
        ) {
            Ok(w) => {
                println!(
                    "flight dump: {} ({} events; open {} in ui.perfetto.dev)",
                    w.dump.display(),
                    w.events,
                    w.trace.display()
                );
                report.set("flight_dumps", dumps_to_json(&[w]));
            }
            Err(e) => eprintln!("failed to write flight dump: {e}"),
        }

        if let Err(e) = report.write_to(&path) {
            eprintln!("failed to write {}: {e}", path.display());
            exit(1);
        }
        println!("metrics report written to {}", path.display());
    }

    println!(
        "\nthe pool survived two active failures: each takeover waited for a quorum of\n\
         survivors to confirm the death, the fenced machine rejoined at the back of the\n\
         rank order, and the client kept one connection with zero integrity violations."
    );
}
