//! Regenerates the paper's **§3 serial-link capacity analysis**: how many
//! simultaneous TCP connections one RS-232 null-modem heartbeat link can
//! carry at each heartbeat period.
//!
//! The paper estimates <20 bytes and ~0.8 kbit/s per connection at a
//! 200 ms period, for roughly 100 connections on 115.2 kbps; this binary
//! measures our implementation's actual wire format against the modelled
//! channel.
//!
//! Run with: `cargo run -p sttcp-bench --bin serial_capacity --release`

use sttcp_bench::experiments::run_serial_capacity;
use sttcp_bench::report::Table;

fn main() {
    println!("§3 — serial heartbeat link capacity (RS-232, 115.2 kbps, 8N1)\n");
    let mut t = Table::new(vec![
        "HB period",
        "bytes/conn",
        "kbit/s per conn",
        "max connections",
        "link utilization",
    ]);
    for hb_ms in [100u64, 200, 500, 1_000] {
        let c = run_serial_capacity(hb_ms);
        t.row(vec![
            format!("{hb_ms} ms"),
            format!("{} (+{} hdr/msg)", c.bytes_per_conn, c.header_bytes),
            format!("{:.2}", c.bits_per_sec_per_conn / 1_000.0),
            c.max_conns.to_string(),
            format!("{:.0}%", c.utilization_at_max * 100.0),
        ]);
    }
    println!("{t}");
    let c200 = run_serial_capacity(200);
    println!(
        "at the paper's 200 ms period: {} B/conn ≈ {:.2} kbit/s/conn ⇒ {} connections\n\
         (paper: <20 B, ~0.8 kbit/s, ~100 connections — same order; our record\n\
         carries one extra flag byte). Beyond that, the paper recommends a\n\
         crossover-Ethernet secondary link, which `SerialParams::crossover_ethernet()`\n\
         models at 100 Mbit/s.",
        c200.bytes_per_conn,
        c200.bits_per_sec_per_conn / 1_000.0,
        c200.max_conns
    );
}
