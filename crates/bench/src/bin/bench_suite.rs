//! Simulator throughput suite: measures wall-clock events/sec,
//! bytes/sec, and chaos seeds/sec, and writes a schema-versioned
//! `BENCH_simperf.json` so the performance trajectory is recorded
//! alongside the correctness results.
//!
//! Three measurements:
//!
//! 1. **Steady state** — one fault-free download through the full
//!    ST-TCP stack (`events_per_sec`, `bytes_per_sec`). This is the
//!    single-run number the acceptance gate compares against the
//!    pre-change baseline.
//! 2. **Chaos sweep, 1 thread** — quick-profile `chaos_hunt` seeds per
//!    second on one core (`seeds_per_sec_1t`).
//! 3. **Chaos sweep, N threads** — the same seed range on the worker
//!    pool (`seeds_per_sec_mt`), demonstrating the fan-out speedup.
//!
//! Baseline numbers (measured on the pre-change tree with this same
//! binary) are passed back in via `--baseline-*` flags and embedded in
//! the report, so one file tells the whole before/after story.
//!
//! A fourth, opt-in measurement (`--scale`) ramps thousands of
//! simulated clients against one delta-heartbeat pair with sharded
//! serial links and records conns/sec, heartbeat bytes/conn and
//! bytes/round, and the failover stall at each connection count into a
//! `scale` report section.
//!
//! Options:
//! * `--out PATH`                     report path (default `BENCH_simperf.json`)
//! * `--check PATH`                   regression-gate mode: read the
//!   checked-in report at PATH, re-measure steady state (best of 3 to
//!   tolerate machine noise), and exit 1 if the best fresh events/sec
//!   falls more than 10% below the snapshot's, or if heartbeat
//!   bytes/conn regresses more than 10% above the snapshot's. Skips the
//!   sweeps and writes nothing.
//! * `--scale`                        also run the client-ramp scale bench and
//!   record the `scale` section (budget-gated: exits 1 if HB bytes/conn
//!   exceeds the budget or failover stalls unbounded)
//! * `--scale-conns LIST`             comma-separated connection counts for
//!   `--scale` (default `100,1000,10000,100000`)
//! * `--scale-smoke N`                CI smoke: run ONLY the `N`-connection
//!   ramp point, assert the budget and bounded failover stall, write
//!   nothing
//! * `--download-bytes N`             steady-state download size (default 4 MiB)
//! * `--chaos-seeds N`                seeds per chaos sweep (default 64)
//! * `--threads N`                    worker threads for the parallel sweep
//!   (default: all cores)
//! * `--baseline-events-per-sec X`    pre-change steady-state events/sec
//! * `--baseline-bytes-per-sec X`     pre-change steady-state bytes/sec
//! * `--baseline-seeds-per-sec X`     pre-change 1-thread seeds/sec

use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use obs::json::Json;
use obs::report::MetricsReport;
use simnet::profile::Component;
use simnet::time::SimTime;
use sttcp::config::StTcpConfig;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::chaos::ChaosOptions;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::pool::PoolScenarioBuilder;
use sttcp_apps::scenario::ScenarioBuilder;
use sttcp_bench::hunt::{run_sweep, SweepConfig};
use sttcp_bench::parallel::default_threads;

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    scale: bool,
    scale_conns: Vec<u64>,
    scale_smoke: Option<u64>,
    download_bytes: u64,
    chaos_seeds: u64,
    threads: usize,
    baseline_events_per_sec: Option<f64>,
    baseline_bytes_per_sec: Option<f64>,
    baseline_seeds_per_sec: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("BENCH_simperf.json"),
        check: None,
        scale: false,
        scale_conns: vec![100, 1000, 10_000, 100_000],
        scale_smoke: None,
        download_bytes: 4 * 1024 * 1024,
        chaos_seeds: 64,
        threads: default_threads(),
        baseline_events_per_sec: None,
        baseline_bytes_per_sec: None,
        baseline_seeds_per_sec: None,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_suite [--out PATH] [--check PATH] [--scale] \
             [--scale-conns LIST] [--scale-smoke N] [--download-bytes N] \
             [--chaos-seeds N] [--threads N] [--baseline-events-per-sec X] \
             [--baseline-bytes-per-sec X] [--baseline-seeds-per-sec X]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name}: {v:?} is not a number");
                std::process::exit(2);
            })
        }
        match a.as_str() {
            "--out" => args.out = PathBuf::from(val("--out")),
            "--check" => args.check = Some(PathBuf::from(val("--check"))),
            "--scale" => args.scale = true,
            "--scale-conns" => {
                args.scale_conns = val("--scale-conns")
                    .split(',')
                    .map(|s| num("--scale-conns", s.trim().to_string()))
                    .collect();
                if args.scale_conns.is_empty() {
                    die("--scale-conns needs at least one count");
                }
            }
            "--scale-smoke" => {
                args.scale_smoke = Some(num("--scale-smoke", val("--scale-smoke")));
            }
            "--download-bytes" => {
                args.download_bytes = num("--download-bytes", val("--download-bytes"));
            }
            "--chaos-seeds" => args.chaos_seeds = num("--chaos-seeds", val("--chaos-seeds")),
            "--threads" => args.threads = num("--threads", val("--threads")),
            "--baseline-events-per-sec" => {
                args.baseline_events_per_sec = Some(num(
                    "--baseline-events-per-sec",
                    val("--baseline-events-per-sec"),
                ));
            }
            "--baseline-bytes-per-sec" => {
                args.baseline_bytes_per_sec = Some(num(
                    "--baseline-bytes-per-sec",
                    val("--baseline-bytes-per-sec"),
                ));
            }
            "--baseline-seeds-per-sec" => {
                args.baseline_seeds_per_sec = Some(num(
                    "--baseline-seeds-per-sec",
                    val("--baseline-seeds-per-sec"),
                ));
            }
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

struct SteadyState {
    events: u64,
    bytes: u64,
    wall_us: u64,
    events_per_sec: f64,
    bytes_per_sec: f64,
    /// Virtual-time-deterministic heartbeat payload bytes per announced
    /// connection entry — the `--check` bandwidth gate.
    hb_bytes_per_conn: u64,
}

/// One fault-free download through the full ST-TCP stack: primary +
/// backup + verifying client, heartbeats on, no injected faults.
fn steady_state(total: u64) -> SteadyState {
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total },
    )
    .seed(1)
    .build();
    let started = Instant::now();
    // Generous virtual horizon; the loop exits when the client finishes.
    let horizon = SimTime::from_millis(10_000 + total / 100);
    let step = SimTime::from_millis(500);
    let mut until = step;
    while !s.client_finished() && until <= horizon {
        s.world.run_until(until);
        until = SimTime::from_micros(until.as_micros() + step.as_micros());
    }
    let wall = started.elapsed();
    assert!(s.client_finished(), "steady-state download did not finish");
    let events = s.world.events_processed();
    let bytes = s.client_log().total_received;
    let secs = wall.as_secs_f64().max(1e-9);
    SteadyState {
        events,
        bytes,
        wall_us: wall.as_micros() as u64,
        events_per_sec: events as f64 / secs,
        bytes_per_sec: bytes as f64 / secs,
        hb_bytes_per_conn: s
            .server(s.primary)
            .metrics()
            .hb_bandwidth()
            .bytes_per_conn(),
    }
}

/// A second, *profiled* steady-state run: per-component wall-clock
/// attribution (simnet/tcp/sttcp/pool/app buckets) plus heartbeat
/// bandwidth accounting. Kept separate from [`steady_state`] so
/// profiler overhead never touches the numbers the `--check` gate
/// compares. Returns the `profile` and `hb_bandwidth` report sections.
fn profiled_sections(total: u64) -> (Json, Json) {
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total },
    )
    .seed(1)
    .build();
    s.world.set_profiling(true);
    let horizon = SimTime::from_millis(10_000 + total / 100);
    let step = SimTime::from_millis(500);
    let mut until = step;
    while !s.client_finished() && until <= horizon {
        s.world.run_until(until);
        until = SimTime::from_micros(until.as_micros() + step.as_micros());
    }
    assert!(s.client_finished(), "profiled download did not finish");

    let p = s.world.profiler();
    let hb = s.server(s.primary).metrics().hb_bandwidth().to_json();

    // A short profiled pool-mode run (3 replicas, small download) so the
    // `pool` bucket reflects real fencing/membership work instead of
    // sitting empty: pair-mode scenarios never execute pool code.
    let mut p3 = PoolScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total: 256 * 1024 },
    )
    .seed(1)
    .replicas(3)
    .build();
    p3.world.set_profiling(true);
    p3.world.run_until(SimTime::from_millis(5_000));
    assert!(
        p3.client_finished(),
        "profiled pool download did not finish"
    );
    let pp = p3.world.profiler();

    let mut profile = Json::obj();
    for c in Component::ALL {
        let a = p.stats(c);
        let b = pp.stats(c);
        let mut o = Json::obj();
        o.set("scopes", Json::U64(a.scopes + b.scopes));
        o.set("self_us", Json::U64((a.self_ns + b.self_ns) / 1_000));
        o.set("total_us", Json::U64((a.total_ns + b.total_ns) / 1_000));
        profile.set(c.key(), o);
    }
    profile.set(
        "total_self_us",
        Json::U64((p.total_self_ns() + pp.total_self_ns()) / 1_000),
    );
    (profile, hb)
}

struct ChaosRate {
    wall_us: u64,
    seeds_per_sec: f64,
}

/// Times a quick-profile chaos sweep at the given thread count.
fn chaos_rate(seeds: u64, threads: usize) -> ChaosRate {
    let cfg = SweepConfig {
        seeds,
        start: 0,
        quick: true,
        double: false,
        reintegrate: false,
        threads,
    };
    let opts = ChaosOptions::quick();
    let started = Instant::now();
    let summary = run_sweep(&cfg, &opts, |_| {});
    let wall = started.elapsed();
    assert!(
        summary.violated.is_empty(),
        "chaos sweep hit invariant violations: {:?}",
        summary.violated
    );
    ChaosRate {
        wall_us: wall.as_micros() as u64,
        seeds_per_sec: seeds as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Steady-state heartbeat budget asserted by `--scale`/`--scale-smoke`:
/// bytes per round divided by live connections, in delta mode with an
/// idle-heavy mix. The v1 full-state format costs ~21 bytes/conn; the
/// delta format must come in far under that.
const SCALE_BUDGET_BYTES_PER_CONN: f64 = 8.0;
/// Upper bound on the post-crash takeover stall at any ramp size.
const SCALE_MAX_STALL_US: u64 = 5_000_000;
/// Records per batched heartbeat part at scale: rounds touching more
/// connections than this split into multi-part v3 envelopes, so a
/// resync burst never serializes one giant frame.
const SCALE_HB_BATCH: usize = 1_024;
/// Connection-establishment floor at the 10k ramp point, wall-clock
/// conns/sec. Set at 5x the pre-wheel snapshot (541/s measured before
/// O(active) tick scheduling landed) so the scale gate locks the win
/// in: a change that quietly reintroduces an O(n)-per-tick walk fails
/// here long before the budget gates notice.
const SCALE_MIN_CONNS_PER_SEC_10K: f64 = 2_705.0;

struct ScalePoint {
    conns: u64,
    live_conns: u64,
    ramp_wall_us: u64,
    conns_per_sec: f64,
    hb_bytes_per_round: f64,
    hb_bytes_per_conn: f64,
    failover_stall_us: u64,
}

/// One ramp point: `total_conns` clients (1 ms connect stagger, an
/// idle-heavy mix with one downloader per 500 connections) against a
/// batched delta-heartbeat pair with 4 sharded serial links. Measures the
/// connection-establishment rate, the steady-state heartbeat cost once
/// every counter is acknowledged, and the takeover stall after a
/// primary crash.
fn scale_point(total_conns: u64) -> ScalePoint {
    assert!(total_conns >= 1);
    let extra = total_conns - 1;
    let workloads: Vec<ClientWorkload> = (0..extra)
        .map(|i| {
            if i % 500 == 0 {
                ClientWorkload::Download { total: 64 * 1024 }
            } else {
                ClientWorkload::Idle
            }
        })
        .collect();
    let cfg = StTcpConfig {
        hb_delta: true,
        hb_batch: SCALE_HB_BATCH,
        ..Default::default()
    };
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total: 256 * 1024 },
    )
    .extra_clients(workloads)
    .seed(7)
    .sttcp(cfg)
    .serial_links(4)
    .build();

    // Ramp: clients connect 1 ms apart starting at t = 100 ms; give the
    // tail some settling room before calling the ramp done.
    let ramp_end = SimTime::from_millis(100 + extra + 500);
    let started = Instant::now();
    s.world.run_until(ramp_end);
    let ramp_wall = started.elapsed();
    let live = s.server(s.primary).conn_keys().len() as u64;

    // Steady window: 2 s of virtual time with all counters acked.
    let before = s.server(s.primary).metrics().hb_bandwidth();
    let steady_end = SimTime::from_micros(ramp_end.as_micros() + 2_000_000);
    s.world.run_until(steady_end);
    let after = s.server(s.primary).metrics().hb_bandwidth();
    let rounds = (after.rounds - before.rounds).max(1);
    let bytes = after.total_bytes() - before.total_bytes();
    let per_round = bytes as f64 / rounds as f64;
    let per_conn = per_round / live.max(1) as f64;

    // Failover: kill the primary, time the takeover stall.
    let crash_at = SimTime::from_micros(steady_end.as_micros() + 10_000);
    s.crash_primary_at(crash_at);
    let horizon = SimTime::from_micros(crash_at.as_micros() + 30_000_000);
    let mut until = crash_at;
    let mut took = None;
    while took.is_none() && until < horizon {
        until = SimTime::from_micros(until.as_micros() + 100_000);
        s.world.run_until(until);
        took = s.server(s.backup).took_over_at();
    }
    let stall = took.unwrap_or(horizon).saturating_since(crash_at);

    ScalePoint {
        conns: total_conns,
        live_conns: live,
        ramp_wall_us: ramp_wall.as_micros() as u64,
        conns_per_sec: live as f64 / ramp_wall.as_secs_f64().max(1e-9),
        hb_bytes_per_round: per_round,
        hb_bytes_per_conn: per_conn,
        failover_stall_us: stall.as_micros(),
    }
}

/// Runs the ramp at each count, printing a table and enforcing the
/// heartbeat budget and the stall bound. Returns the `scale` report
/// section and whether every point passed.
fn run_scale(counts: &[u64]) -> (Json, bool) {
    let mut points = Vec::new();
    let mut ok = true;
    println!("bench_suite: scale ramp (batched delta heartbeats, 4 serial links)...");
    println!("  conns     live  conns/s   HB B/round  HB B/conn  stall_ms");
    for &n in counts {
        let p = scale_point(n);
        println!(
            "  {:>7} {:>7}  {:>8.0}  {:>10.1}  {:>9.3}  {:>8.1}",
            p.conns,
            p.live_conns,
            p.conns_per_sec,
            p.hb_bytes_per_round,
            p.hb_bytes_per_conn,
            p.failover_stall_us as f64 / 1e3,
        );
        if p.hb_bytes_per_conn >= SCALE_BUDGET_BYTES_PER_CONN {
            eprintln!(
                "SCALE BUDGET EXCEEDED: {:.3} bytes/conn at {} conns (budget {})",
                p.hb_bytes_per_conn, p.conns, SCALE_BUDGET_BYTES_PER_CONN
            );
            ok = false;
        }
        if p.failover_stall_us > SCALE_MAX_STALL_US {
            eprintln!(
                "SCALE STALL UNBOUNDED: {:.1} ms takeover stall at {} conns (bound {} ms)",
                p.failover_stall_us as f64 / 1e3,
                p.conns,
                SCALE_MAX_STALL_US / 1_000
            );
            ok = false;
        }
        if p.conns == 10_000 && p.conns_per_sec < SCALE_MIN_CONNS_PER_SEC_10K {
            eprintln!(
                "SCALE RAMP REGRESSION: {:.0} conns/s at {} conns (floor {:.0})",
                p.conns_per_sec, p.conns, SCALE_MIN_CONNS_PER_SEC_10K
            );
            ok = false;
        }
        points.push(p);
    }
    let mut section = Json::obj();
    section.set(
        "budget_bytes_per_conn",
        Json::F64(SCALE_BUDGET_BYTES_PER_CONN),
    );
    section.set("max_stall_us", Json::U64(SCALE_MAX_STALL_US));
    section.set("serial_links", Json::U64(4));
    section.set("hb_batch", Json::U64(SCALE_HB_BATCH as u64));
    section.set(
        "min_conns_per_sec_10k",
        Json::F64(SCALE_MIN_CONNS_PER_SEC_10K),
    );
    section.set(
        "points",
        Json::Arr(
            points
                .iter()
                .map(|p| {
                    let mut o = Json::obj();
                    o.set("conns", Json::U64(p.conns));
                    o.set("live_conns", Json::U64(p.live_conns));
                    o.set("ramp_wall_us", Json::U64(p.ramp_wall_us));
                    o.set("conns_per_sec", Json::F64(p.conns_per_sec));
                    o.set("hb_bytes_per_round", Json::F64(p.hb_bytes_per_round));
                    o.set("hb_bytes_per_conn", Json::F64(p.hb_bytes_per_conn));
                    o.set("failover_stall_us", Json::U64(p.failover_stall_us));
                    o
                })
                .collect(),
        ),
    );
    (section, ok)
}

/// Pulls the first numeric value following `"<key>":` out of a report.
/// The reports are written by our own `Json` printer (no whitespace
/// after the colon), so a string scan is exact — and it keeps the gate
/// independent of any JSON-parsing code the change under test may have
/// touched.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Regression-gate mode: compare a fresh steady-state measurement
/// against the checked-in snapshot. Best of 3 runs, 10% tolerance on
/// events/sec — the floor rides the snapshot, so regenerating it after
/// a perf win locks the win in instead of defending 80% of the old
/// number. Also gates heartbeat `bytes_per_conn` (virtual-time
/// deterministic, so the tolerance only covers snapshot rounding):
/// fresh must stay within 10% of the snapshot.
fn check_against(path: &PathBuf, fallback_download_bytes: u64) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let baseline = scan_number(&text, "events_per_sec").unwrap_or_else(|| {
        eprintln!(
            "--check: no \"events_per_sec\" in {} — regenerate it with --out",
            path.display()
        );
        std::process::exit(2);
    });
    let baseline_bpc = scan_number(&text, "bytes_per_conn");
    let download_bytes = scan_number(&text, "download_bytes")
        .map(|b| b as u64)
        .unwrap_or(fallback_download_bytes);
    println!(
        "bench_suite --check: snapshot {:.0} events/s ({} byte download), best of 3 runs...",
        baseline, download_bytes
    );
    let mut best = 0f64;
    let mut bytes_per_conn = 0u64;
    for run in 1..=3 {
        let s = steady_state(download_bytes);
        println!(
            "  run {run}: {:.0} events/s ({:.3} s)",
            s.events_per_sec,
            s.wall_us as f64 / 1e6
        );
        best = best.max(s.events_per_sec);
        bytes_per_conn = s.hb_bytes_per_conn;
    }
    let mut failed = false;
    let ratio = best / baseline.max(1e-9);
    if ratio < 0.9 {
        eprintln!(
            "REGRESSION: best {:.0} events/s is {:.1}% of the {:.0} events/s snapshot \
             (gate: >= 90%)",
            best,
            ratio * 100.0,
            baseline
        );
        failed = true;
    } else {
        println!(
            "ok: best {:.0} events/s is {:.1}% of the snapshot (gate: >= 90%)",
            best,
            ratio * 100.0
        );
    }
    match baseline_bpc {
        Some(b) if bytes_per_conn as f64 > b * 1.1 => {
            eprintln!(
                "REGRESSION: heartbeat {bytes_per_conn} bytes/conn vs snapshot {b:.0} \
                 (gate: <= 110%)"
            );
            failed = true;
        }
        Some(b) => {
            println!(
                "ok: heartbeat {bytes_per_conn} bytes/conn vs snapshot {b:.0} (gate: <= 110%)"
            );
        }
        None => {
            println!("note: snapshot has no \"bytes_per_conn\"; bandwidth gate skipped");
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    let args = parse_args();

    if let Some(n) = args.scale_smoke {
        let (_, ok) = run_scale(&[n]);
        std::process::exit(if ok { 0 } else { 1 });
    }

    if let Some(path) = &args.check {
        check_against(path, args.download_bytes);
    }

    println!(
        "bench_suite: steady-state download ({} bytes, best of 3)...",
        args.download_bytes
    );
    // Best of 3, mirroring --check: the snapshot this writes is the
    // gate's baseline, so both sides must tolerate machine noise the
    // same way — a cold single-run baseline would weaken the gate.
    let mut steady = steady_state(args.download_bytes);
    for _ in 0..2 {
        let s = steady_state(args.download_bytes);
        if s.events_per_sec > steady.events_per_sec {
            steady = s;
        }
    }
    println!(
        "  {} events in {:.3} s — {:.0} events/s, {:.0} bytes/s",
        steady.events,
        steady.wall_us as f64 / 1e6,
        steady.events_per_sec,
        steady.bytes_per_sec,
    );

    println!(
        "bench_suite: chaos sweep ({} seeds, 1 thread)...",
        args.chaos_seeds
    );
    let chaos_1t = chaos_rate(args.chaos_seeds, 1);
    println!(
        "  {:.3} s — {:.2} seeds/s",
        chaos_1t.wall_us as f64 / 1e6,
        chaos_1t.seeds_per_sec,
    );

    println!(
        "bench_suite: chaos sweep ({} seeds, {} threads)...",
        args.chaos_seeds, args.threads
    );
    let chaos_mt = chaos_rate(args.chaos_seeds, args.threads);
    println!(
        "  {:.3} s — {:.2} seeds/s ({:.2}x)",
        chaos_mt.wall_us as f64 / 1e6,
        chaos_mt.seeds_per_sec,
        chaos_mt.seeds_per_sec / chaos_1t.seeds_per_sec.max(1e-9),
    );

    println!("bench_suite: profiled steady-state run (attribution only)...");
    let (profile, hb_bandwidth) = profiled_sections(args.download_bytes);

    let scale = args.scale.then(|| {
        let (section, ok) = run_scale(&args.scale_conns);
        if !ok {
            std::process::exit(1);
        }
        section
    });

    let mut report = MetricsReport::new("bench_suite");
    let mut config = Json::obj();
    config.set("download_bytes", Json::U64(args.download_bytes));
    config.set("chaos_seeds", Json::U64(args.chaos_seeds));
    config.set("threads", Json::U64(args.threads as u64));
    report.set("config", config);

    let mut current = Json::obj();
    let mut ss = Json::obj();
    ss.set("events", Json::U64(steady.events));
    ss.set("bytes", Json::U64(steady.bytes));
    ss.set("wall_us", Json::U64(steady.wall_us));
    ss.set("events_per_sec", Json::F64(steady.events_per_sec));
    ss.set("bytes_per_sec", Json::F64(steady.bytes_per_sec));
    current.set("steady_state", ss);
    let mut ch = Json::obj();
    ch.set("seeds", Json::U64(args.chaos_seeds));
    ch.set("wall_us_1t", Json::U64(chaos_1t.wall_us));
    ch.set("seeds_per_sec_1t", Json::F64(chaos_1t.seeds_per_sec));
    ch.set("threads", Json::U64(args.threads as u64));
    ch.set("wall_us_mt", Json::U64(chaos_mt.wall_us));
    ch.set("seeds_per_sec_mt", Json::F64(chaos_mt.seeds_per_sec));
    ch.set(
        "speedup",
        Json::F64(chaos_mt.seeds_per_sec / chaos_1t.seeds_per_sec.max(1e-9)),
    );
    current.set("chaos", ch);
    current.set("profile", profile);
    current.set("hb_bandwidth", hb_bandwidth);
    if let Some(scale) = scale {
        current.set("scale", scale);
    }
    report.set("current", current);

    if args.baseline_events_per_sec.is_some()
        || args.baseline_bytes_per_sec.is_some()
        || args.baseline_seeds_per_sec.is_some()
    {
        let mut baseline = Json::obj();
        if let Some(x) = args.baseline_events_per_sec {
            baseline.set("events_per_sec", Json::F64(x));
            baseline.set(
                "events_per_sec_ratio",
                Json::F64(steady.events_per_sec / x.max(1e-9)),
            );
        }
        if let Some(x) = args.baseline_bytes_per_sec {
            baseline.set("bytes_per_sec", Json::F64(x));
        }
        if let Some(x) = args.baseline_seeds_per_sec {
            baseline.set("seeds_per_sec_1t", Json::F64(x));
        }
        report.set("baseline", baseline);
    }

    match report.write_to(&args.out) {
        Ok(()) => println!("report written to {}", args.out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
}
