//! Simulator throughput suite: measures wall-clock events/sec,
//! bytes/sec, and chaos seeds/sec, and writes a schema-versioned
//! `BENCH_simperf.json` so the performance trajectory is recorded
//! alongside the correctness results.
//!
//! Three measurements:
//!
//! 1. **Steady state** — one fault-free download through the full
//!    ST-TCP stack (`events_per_sec`, `bytes_per_sec`). This is the
//!    single-run number the acceptance gate compares against the
//!    pre-change baseline.
//! 2. **Chaos sweep, 1 thread** — quick-profile `chaos_hunt` seeds per
//!    second on one core (`seeds_per_sec_1t`).
//! 3. **Chaos sweep, N threads** — the same seed range on the worker
//!    pool (`seeds_per_sec_mt`), demonstrating the fan-out speedup.
//!
//! Baseline numbers (measured on the pre-change tree with this same
//! binary) are passed back in via `--baseline-*` flags and embedded in
//! the report, so one file tells the whole before/after story.
//!
//! Options:
//! * `--out PATH`                     report path (default `BENCH_simperf.json`)
//! * `--check PATH`                   regression-gate mode: read the
//!   checked-in report at PATH, re-measure steady state (best of 3 to
//!   tolerate machine noise), and exit 1 if the best fresh events/sec
//!   falls more than 20% below the snapshot's. Skips the sweeps and
//!   writes nothing.
//! * `--download-bytes N`             steady-state download size (default 4 MiB)
//! * `--chaos-seeds N`                seeds per chaos sweep (default 64)
//! * `--threads N`                    worker threads for the parallel sweep
//!   (default: all cores)
//! * `--baseline-events-per-sec X`    pre-change steady-state events/sec
//! * `--baseline-bytes-per-sec X`     pre-change steady-state bytes/sec
//! * `--baseline-seeds-per-sec X`     pre-change 1-thread seeds/sec

use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

use obs::json::Json;
use obs::report::MetricsReport;
use simnet::profile::Component;
use simnet::time::SimTime;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::chaos::ChaosOptions;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;
use sttcp_bench::hunt::{run_sweep, SweepConfig};
use sttcp_bench::parallel::default_threads;

struct Args {
    out: PathBuf,
    check: Option<PathBuf>,
    download_bytes: u64,
    chaos_seeds: u64,
    threads: usize,
    baseline_events_per_sec: Option<f64>,
    baseline_bytes_per_sec: Option<f64>,
    baseline_seeds_per_sec: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        out: PathBuf::from("BENCH_simperf.json"),
        check: None,
        download_bytes: 4 * 1024 * 1024,
        chaos_seeds: 64,
        threads: default_threads(),
        baseline_events_per_sec: None,
        baseline_bytes_per_sec: None,
        baseline_seeds_per_sec: None,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: bench_suite [--out PATH] [--check PATH] [--download-bytes N] \
             [--chaos-seeds N] [--threads N] [--baseline-events-per-sec X] \
             [--baseline-bytes-per-sec X] [--baseline-seeds-per-sec X]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{name}: {v:?} is not a number");
                std::process::exit(2);
            })
        }
        match a.as_str() {
            "--out" => args.out = PathBuf::from(val("--out")),
            "--check" => args.check = Some(PathBuf::from(val("--check"))),
            "--download-bytes" => {
                args.download_bytes = num("--download-bytes", val("--download-bytes"));
            }
            "--chaos-seeds" => args.chaos_seeds = num("--chaos-seeds", val("--chaos-seeds")),
            "--threads" => args.threads = num("--threads", val("--threads")),
            "--baseline-events-per-sec" => {
                args.baseline_events_per_sec = Some(num(
                    "--baseline-events-per-sec",
                    val("--baseline-events-per-sec"),
                ));
            }
            "--baseline-bytes-per-sec" => {
                args.baseline_bytes_per_sec = Some(num(
                    "--baseline-bytes-per-sec",
                    val("--baseline-bytes-per-sec"),
                ));
            }
            "--baseline-seeds-per-sec" => {
                args.baseline_seeds_per_sec = Some(num(
                    "--baseline-seeds-per-sec",
                    val("--baseline-seeds-per-sec"),
                ));
            }
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

struct SteadyState {
    events: u64,
    bytes: u64,
    wall_us: u64,
    events_per_sec: f64,
    bytes_per_sec: f64,
}

/// One fault-free download through the full ST-TCP stack: primary +
/// backup + verifying client, heartbeats on, no injected faults.
fn steady_state(total: u64) -> SteadyState {
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total },
    )
    .seed(1)
    .build();
    let started = Instant::now();
    // Generous virtual horizon; the loop exits when the client finishes.
    let horizon = SimTime::from_millis(10_000 + total / 100);
    let step = SimTime::from_millis(500);
    let mut until = step;
    while !s.client_finished() && until <= horizon {
        s.world.run_until(until);
        until = SimTime::from_micros(until.as_micros() + step.as_micros());
    }
    let wall = started.elapsed();
    assert!(s.client_finished(), "steady-state download did not finish");
    let events = s.world.events_processed();
    let bytes = s.client_log().total_received;
    let secs = wall.as_secs_f64().max(1e-9);
    SteadyState {
        events,
        bytes,
        wall_us: wall.as_micros() as u64,
        events_per_sec: events as f64 / secs,
        bytes_per_sec: bytes as f64 / secs,
    }
}

/// A second, *profiled* steady-state run: per-component wall-clock
/// attribution (simnet/tcp/sttcp/pool/app buckets) plus heartbeat
/// bandwidth accounting. Kept separate from [`steady_state`] so
/// profiler overhead never touches the numbers the `--check` gate
/// compares. Returns the `profile` and `hb_bandwidth` report sections.
fn profiled_sections(total: u64) -> (Json, Json) {
    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total },
    )
    .seed(1)
    .build();
    s.world.set_profiling(true);
    let horizon = SimTime::from_millis(10_000 + total / 100);
    let step = SimTime::from_millis(500);
    let mut until = step;
    while !s.client_finished() && until <= horizon {
        s.world.run_until(until);
        until = SimTime::from_micros(until.as_micros() + step.as_micros());
    }
    assert!(s.client_finished(), "profiled download did not finish");

    let p = s.world.profiler();
    let mut profile = Json::obj();
    for c in Component::ALL {
        let st = p.stats(c);
        let mut o = Json::obj();
        o.set("scopes", Json::U64(st.scopes));
        o.set("self_us", Json::U64(st.self_ns / 1_000));
        o.set("total_us", Json::U64(st.total_ns / 1_000));
        profile.set(c.key(), o);
    }
    profile.set("total_self_us", Json::U64(p.total_self_ns() / 1_000));

    let hb = s.server(s.primary).metrics().hb_bandwidth().to_json();
    (profile, hb)
}

struct ChaosRate {
    wall_us: u64,
    seeds_per_sec: f64,
}

/// Times a quick-profile chaos sweep at the given thread count.
fn chaos_rate(seeds: u64, threads: usize) -> ChaosRate {
    let cfg = SweepConfig {
        seeds,
        start: 0,
        quick: true,
        double: false,
        reintegrate: false,
        threads,
    };
    let opts = ChaosOptions::quick();
    let started = Instant::now();
    let summary = run_sweep(&cfg, &opts, |_| {});
    let wall = started.elapsed();
    assert!(
        summary.violated.is_empty(),
        "chaos sweep hit invariant violations: {:?}",
        summary.violated
    );
    ChaosRate {
        wall_us: wall.as_micros() as u64,
        seeds_per_sec: seeds as f64 / wall.as_secs_f64().max(1e-9),
    }
}

/// Pulls the first numeric value following `"<key>":` out of a report.
/// The reports are written by our own `Json` printer (no whitespace
/// after the colon), so a string scan is exact — and it keeps the gate
/// independent of any JSON-parsing code the change under test may have
/// touched.
fn scan_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Regression-gate mode: compare a fresh steady-state measurement
/// against the checked-in snapshot. Best of 3 runs, 20% tolerance —
/// noisy-neighbor slowdowns on shared CI runners rarely survive three
/// attempts, while a real O(n) regression in the hot path shows up in
/// all of them.
fn check_against(path: &PathBuf, fallback_download_bytes: u64) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("--check: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let baseline = scan_number(&text, "events_per_sec").unwrap_or_else(|| {
        eprintln!(
            "--check: no \"events_per_sec\" in {} — regenerate it with --out",
            path.display()
        );
        std::process::exit(2);
    });
    let download_bytes = scan_number(&text, "download_bytes")
        .map(|b| b as u64)
        .unwrap_or(fallback_download_bytes);
    println!(
        "bench_suite --check: snapshot {:.0} events/s ({} byte download), best of 3 runs...",
        baseline, download_bytes
    );
    let mut best = 0f64;
    for run in 1..=3 {
        let s = steady_state(download_bytes);
        println!(
            "  run {run}: {:.0} events/s ({:.3} s)",
            s.events_per_sec,
            s.wall_us as f64 / 1e6
        );
        best = best.max(s.events_per_sec);
    }
    let ratio = best / baseline.max(1e-9);
    if ratio < 0.8 {
        eprintln!(
            "REGRESSION: best {:.0} events/s is {:.1}% of the {:.0} events/s snapshot \
             (gate: >= 80%)",
            best,
            ratio * 100.0,
            baseline
        );
        std::process::exit(1);
    }
    println!(
        "ok: best {:.0} events/s is {:.1}% of the snapshot (gate: >= 80%)",
        best,
        ratio * 100.0
    );
    std::process::exit(0);
}

fn main() {
    let args = parse_args();

    if let Some(path) = &args.check {
        check_against(path, args.download_bytes);
    }

    println!(
        "bench_suite: steady-state download ({} bytes, best of 3)...",
        args.download_bytes
    );
    // Best of 3, mirroring --check: the snapshot this writes is the
    // gate's baseline, so both sides must tolerate machine noise the
    // same way — a cold single-run baseline would weaken the gate.
    let mut steady = steady_state(args.download_bytes);
    for _ in 0..2 {
        let s = steady_state(args.download_bytes);
        if s.events_per_sec > steady.events_per_sec {
            steady = s;
        }
    }
    println!(
        "  {} events in {:.3} s — {:.0} events/s, {:.0} bytes/s",
        steady.events,
        steady.wall_us as f64 / 1e6,
        steady.events_per_sec,
        steady.bytes_per_sec,
    );

    println!(
        "bench_suite: chaos sweep ({} seeds, 1 thread)...",
        args.chaos_seeds
    );
    let chaos_1t = chaos_rate(args.chaos_seeds, 1);
    println!(
        "  {:.3} s — {:.2} seeds/s",
        chaos_1t.wall_us as f64 / 1e6,
        chaos_1t.seeds_per_sec,
    );

    println!(
        "bench_suite: chaos sweep ({} seeds, {} threads)...",
        args.chaos_seeds, args.threads
    );
    let chaos_mt = chaos_rate(args.chaos_seeds, args.threads);
    println!(
        "  {:.3} s — {:.2} seeds/s ({:.2}x)",
        chaos_mt.wall_us as f64 / 1e6,
        chaos_mt.seeds_per_sec,
        chaos_mt.seeds_per_sec / chaos_1t.seeds_per_sec.max(1e-9),
    );

    println!("bench_suite: profiled steady-state run (attribution only)...");
    let (profile, hb_bandwidth) = profiled_sections(args.download_bytes);

    let mut report = MetricsReport::new("bench_suite");
    let mut config = Json::obj();
    config.set("download_bytes", Json::U64(args.download_bytes));
    config.set("chaos_seeds", Json::U64(args.chaos_seeds));
    config.set("threads", Json::U64(args.threads as u64));
    report.set("config", config);

    let mut current = Json::obj();
    let mut ss = Json::obj();
    ss.set("events", Json::U64(steady.events));
    ss.set("bytes", Json::U64(steady.bytes));
    ss.set("wall_us", Json::U64(steady.wall_us));
    ss.set("events_per_sec", Json::F64(steady.events_per_sec));
    ss.set("bytes_per_sec", Json::F64(steady.bytes_per_sec));
    current.set("steady_state", ss);
    let mut ch = Json::obj();
    ch.set("seeds", Json::U64(args.chaos_seeds));
    ch.set("wall_us_1t", Json::U64(chaos_1t.wall_us));
    ch.set("seeds_per_sec_1t", Json::F64(chaos_1t.seeds_per_sec));
    ch.set("threads", Json::U64(args.threads as u64));
    ch.set("wall_us_mt", Json::U64(chaos_mt.wall_us));
    ch.set("seeds_per_sec_mt", Json::F64(chaos_mt.seeds_per_sec));
    ch.set(
        "speedup",
        Json::F64(chaos_mt.seeds_per_sec / chaos_1t.seeds_per_sec.max(1e-9)),
    );
    current.set("chaos", ch);
    current.set("profile", profile);
    current.set("hb_bandwidth", hb_bandwidth);
    report.set("current", current);

    if args.baseline_events_per_sec.is_some()
        || args.baseline_bytes_per_sec.is_some()
        || args.baseline_seeds_per_sec.is_some()
    {
        let mut baseline = Json::obj();
        if let Some(x) = args.baseline_events_per_sec {
            baseline.set("events_per_sec", Json::F64(x));
            baseline.set(
                "events_per_sec_ratio",
                Json::F64(steady.events_per_sec / x.max(1e-9)),
            );
        }
        if let Some(x) = args.baseline_bytes_per_sec {
            baseline.set("bytes_per_sec", Json::F64(x));
        }
        if let Some(x) = args.baseline_seeds_per_sec {
            baseline.set("seeds_per_sec_1t", Json::F64(x));
        }
        report.set("baseline", baseline);
    }

    match report.write_to(&args.out) {
        Ok(()) => println!("report written to {}", args.out.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", args.out.display());
            std::process::exit(1);
        }
    }
}
