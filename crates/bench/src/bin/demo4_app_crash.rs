//! Regenerates **Demo 4**: application crash failures.
//!
//! Runs the paper's two scenarios — application crash *without* cleanup
//! (socket stays open, no FIN) and *with* cleanup (OS closes the socket,
//! FIN generated) — at the primary, plus the backup-side variants and the
//! RST flavour, reporting detection paths and client outcomes.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo4_app_crash --release`

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};
use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp::server::AppCrashMode;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;
use sttcp_bench::report::Table;

fn main() {
    println!("Demo 4 — application crash failures\n");
    let cases = [
        ("primary", AppCrashMode::SilentNoCleanup),
        ("primary", AppCrashMode::CleanupFin),
        ("primary", AppCrashMode::CleanupRst),
        ("backup", AppCrashMode::SilentNoCleanup),
        ("backup", AppCrashMode::CleanupFin),
    ];
    let mut t = Table::new(vec![
        "crash site",
        "mode",
        "FIN/RST held?",
        "symptom",
        "recovery",
        "detect",
        "client",
    ]);
    for (i, (loc, mode)) in cases.iter().enumerate() {
        let mut s = ScenarioBuilder::new(
            Rc::new(|| Box::new(EchoApp::default()) as _),
            ClientWorkload::EchoChat {
                chunk: 1024,
                period: SimDuration::from_millis(50),
                count: 300,
            },
        )
        .seed(40 + i as u64)
        .sttcp(StTcpConfig {
            app_max_lag_time: SimDuration::from_secs(1),
            max_delay_fin: SimDuration::from_secs(5),
            ..Default::default()
        })
        .build();
        let inject = SimTime::from_secs(3);
        let victim = if *loc == "primary" {
            s.primary
        } else {
            s.backup
        };
        let detector = if *loc == "primary" {
            s.backup
        } else {
            s.primary
        };
        s.crash_app_at(victim, inject, *mode);
        s.world.run_until(SimTime::from_secs(90));

        let held = s
            .server(victim)
            .events()
            .iter()
            .any(|e| matches!(e, StTcpEvent::FinHeld { .. }));
        let (symptom, det) = s
            .server(detector)
            .events()
            .iter()
            .find_map(|e| match e {
                StTcpEvent::PeerDeclaredFailed { reason, at } => {
                    Some((reason.to_string(), at.saturating_since(inject)))
                }
                _ => None,
            })
            .unwrap_or(("none".into(), SimDuration::ZERO));
        let recovery = if s.server(s.backup).took_over_at().is_some() {
            "takeover"
        } else {
            "primary non-FT"
        };
        let log = s.client_log();
        let ok = s.client_finished() && log.integrity_violations == 0 && log.resets == 0;
        t.row(vec![
            loc.to_string(),
            format!("{mode:?}"),
            if matches!(mode, AppCrashMode::SilentNoCleanup) {
                "n/a (none generated)".into()
            } else {
                format!("{held}")
            },
            symptom,
            recovery.to_string(),
            det.to_string(),
            if ok {
                "intact".into()
            } else {
                "DISRUPTED".to_string()
            },
        ]);
    }
    println!("{t}");
    println!(
        "in every case the crash was detected at the transport layer and the\n\
         connection migrated (or the primary continued non-FT) without the\n\
         client seeing a FIN, RST, or byte-stream error."
    );
}
