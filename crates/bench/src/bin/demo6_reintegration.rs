//! Regenerates **Demo 6**: backup re-integration after failover.
//!
//! Streams a 4 MiB download, crashes the primary mid-transfer, lets the
//! backup take over, then warm-reboots the crashed machine with
//! re-integration enabled: the replacement requests per-connection state
//! snapshots over the heartbeat links, replays them into a suppressed
//! replica, and rejoins lockstep on the *live* connection. With
//! redundancy restored, the demo crashes the surviving server too — the
//! re-integrated node must detect the failure, fence, take over, and
//! finish the verified transfer on the same client connection.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo6_reintegration --release`
//!
//! `--json <path>` additionally writes the run's full `MetricsReport`
//! (simnet/tcp/core/client sections, milestones, and the phase timeline
//! of both failovers, including the new `reintegration` phase) to `path`.

use std::path::PathBuf;
use std::process::exit;
use std::rc::Rc;

use obs::json::Json;
use simnet::time::{SimDuration, SimTime};
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp_apps::apps::StreamApp;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;
use sttcp_bench::experiments::scenario_report;
use sttcp_bench::phases::failover_timeline;
use sttcp_bench::report::{render_series, Table};

fn parse_args() -> Option<PathBuf> {
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: demo6_reintegration [--json <path>]");
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    json
}

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn event_at(events: &[StTcpEvent], f: impl Fn(&StTcpEvent) -> Option<SimTime>) -> Option<SimTime> {
    events.iter().find_map(f)
}

fn main() {
    const TOTAL: u64 = 4 * 1024 * 1024;
    const CRASH1_MS: u64 = 1_000;
    const REBOOT_MS: u64 = 2_500;
    const CRASH2_MS: u64 = 5_000;
    let json_path = parse_args();

    println!("Demo 6 — backup re-integration after failover\n");
    println!(
        "schedule: crash primary @{CRASH1_MS}ms, warm-reboot it @{REBOOT_MS}ms, \
         crash backup @{CRASH2_MS}ms"
    );

    let mut s = ScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download { total: TOTAL },
    )
    .seed(6)
    .sttcp(StTcpConfig {
        reintegrate: true,
        ..StTcpConfig::default()
    })
    .build();
    s.crash_primary_at(t(CRASH1_MS));
    let rebooted = s.primary;
    s.world.schedule(t(REBOOT_MS), move |w| {
        if !w.is_powered(rebooted) {
            w.restore_node(rebooted);
        }
    });
    s.crash_backup_at(t(CRASH2_MS));

    // Pause just before the second crash: at this point the pair must be
    // fault-tolerant again, with both replicas in digest lockstep on the
    // live connection — the property the snapshot protocol exists for.
    s.world
        .run_until(t(CRASH2_MS) - SimDuration::from_micros(1));
    let rejoined_at = s
        .server(s.primary)
        .reintegrated_at()
        .expect("rebooted primary never completed re-integration");
    let key = s.first_conn_key();
    let digest_rejoined = s.server(s.primary).app_digest(key);
    let digest_active = s.server(s.backup).app_digest(key);
    assert!(
        digest_rejoined.is_some() && digest_rejoined == digest_active,
        "replica digests diverged after re-integration: {digest_rejoined:?} vs {digest_active:?}"
    );
    println!(
        "\nat t={CRASH2_MS}ms (before the second crash): redundancy restored at {rejoined_at}, \
         app digests in lockstep ({:#018x})",
        digest_rejoined.unwrap()
    );

    let horizon = t(60_000);
    let step = SimDuration::from_millis(500);
    while !s.client_finished() && s.world.now() < horizon {
        let next = s.world.now() + step;
        s.world.run_until(next.min(horizon));
    }

    let log = s.client_log().clone();
    assert!(
        s.client_finished(),
        "client did not finish: {} / {TOTAL} bytes",
        log.total_received
    );
    assert_eq!(log.integrity_violations, 0, "stream integrity violated");
    let end = log.finished_at.unwrap_or(s.world.now());

    // The first failover is the backup's story, the second the rebooted
    // primary's; re-integration milestones live on the joiner's log.
    let backup_events = s.server(s.backup).events().to_vec();
    let primary_events = s.server(s.primary).events().to_vec();
    let verdict1 = event_at(&backup_events, |e| match e {
        StTcpEvent::PeerDeclaredFailed { at, .. } => Some(*at),
        _ => None,
    });
    let takeover1 = event_at(&backup_events, |e| match e {
        StTcpEvent::TookOver { at } => Some(*at),
        _ => None,
    });
    let join_started = event_at(&primary_events, |e| match e {
        StTcpEvent::ReintegrationStarted { at } => Some(*at),
        _ => None,
    });
    let verdict2 = event_at(&primary_events, |e| match e {
        StTcpEvent::PeerDeclaredFailed { at, .. } => Some(*at),
        _ => None,
    });
    let takeover2 = event_at(&primary_events, |e| match e {
        StTcpEvent::TookOver { at } => Some(*at),
        _ => None,
    });
    assert!(
        takeover2.is_some_and(|at| at > rejoined_at),
        "the re-integrated primary must perform the second takeover"
    );

    println!("\nclient progress (x: time, y: bytes; both servers crashed once):\n");
    print!(
        "{}",
        render_series(
            &log.progress
                .iter()
                .map(|&(at, b)| (at.as_micros() as f64 / 1_000.0, b as f64))
                .collect::<Vec<_>>(),
            72,
            12,
        )
    );

    let fmt = |at: Option<SimTime>| at.map(|a| a.to_string()).unwrap_or_default();
    let mut mt = Table::new(vec!["milestone", "time"]);
    mt.row(vec!["primary crashed".into(), t(CRASH1_MS).to_string()]);
    mt.row(vec!["backup verdict".into(), fmt(verdict1)]);
    mt.row(vec!["backup takeover".into(), fmt(takeover1)]);
    mt.row(vec!["primary warm reboot".into(), t(REBOOT_MS).to_string()]);
    mt.row(vec!["re-integration started".into(), fmt(join_started)]);
    mt.row(vec!["redundancy restored".into(), rejoined_at.to_string()]);
    mt.row(vec!["backup crashed".into(), t(CRASH2_MS).to_string()]);
    mt.row(vec!["primary verdict".into(), fmt(verdict2)]);
    mt.row(vec!["primary takeover".into(), fmt(takeover2)]);
    mt.row(vec!["transfer complete".into(), end.to_string()]);
    println!("\n{mt}");

    let join_duration = join_started.map(|from| rejoined_at.saturating_since(from));
    println!(
        "re-integration took {} from reboot to lockstep; the client saw none of it.",
        join_duration
            .map(|d| d.to_string())
            .unwrap_or_else(|| "?".into())
    );

    // Phase timelines for both failovers, each anchored to the client
    // stall it caused. The second one is served by the re-integrated
    // node — proof the snapshot protocol rebuilt a working backup.
    let mut phase_json = Vec::new();
    for (label, crash_ms, events) in [
        (
            "first failover (backup takes over)",
            CRASH1_MS,
            &backup_events,
        ),
        (
            "second failover (re-integrated primary takes over)",
            CRASH2_MS,
            &primary_events,
        ),
    ] {
        let from = t(crash_ms) - SimDuration::from_millis(100);
        let to = t(crash_ms + 10_000).min(end);
        let Some((ws, we)) = log.longest_stall_window(from, to) else {
            continue;
        };
        // Only marks from this failover: a later milestone (e.g. the
        // re-integration that follows the first takeover) would clamp to
        // the window end and misattribute the stall tail.
        let in_window: Vec<StTcpEvent> = events.iter().filter(|e| e.at() <= we).cloned().collect();
        let Some(b) = failover_timeline(ws, we, Some(t(crash_ms)), &in_window).breakdown() else {
            continue;
        };
        println!("{label} — phase breakdown (stall {}):\n", b.total);
        let mut pt = Table::new(vec!["phase", "duration"]);
        for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
            pt.row(vec![p.name().to_string(), d.to_string()]);
        }
        println!("{pt}");
        phase_json.push((label, b));
    }

    if let Some(path) = json_path {
        let mut report = scenario_report("demo6_reintegration", &s);
        let mut config = Json::obj();
        config.set("seed", Json::U64(6));
        config.set("total_bytes", Json::U64(TOTAL));
        config.set("crash_primary_us", Json::U64(t(CRASH1_MS).as_micros()));
        config.set("reboot_primary_us", Json::U64(t(REBOOT_MS).as_micros()));
        config.set("crash_backup_us", Json::U64(t(CRASH2_MS).as_micros()));
        report.set("config", config);

        let mut ms = Json::obj();
        let set_at = |o: &mut Json, k: &str, at: Option<SimTime>| {
            if let Some(at) = at {
                o.set(k, Json::U64(at.as_micros()));
            }
        };
        set_at(&mut ms, "backup_verdict_us", verdict1);
        set_at(&mut ms, "backup_takeover_us", takeover1);
        set_at(&mut ms, "reintegration_started_us", join_started);
        ms.set("redundancy_restored_us", Json::U64(rejoined_at.as_micros()));
        if let Some(d) = join_duration {
            ms.set("reintegration_us", Json::U64(d.as_micros()));
        }
        set_at(&mut ms, "primary_verdict_us", verdict2);
        set_at(&mut ms, "primary_takeover_us", takeover2);
        ms.set("finished_us", Json::U64(end.as_micros()));
        report.set("milestones", ms);

        let mut client = Json::obj();
        client.set("bytes_received", Json::U64(log.total_received));
        client.set("integrity_violations", Json::U64(log.integrity_violations));
        client.set("resets", Json::U64(u64::from(log.resets)));
        client.set(
            "transparent",
            Json::Bool(log.connects.len() == 1 && log.resets == 0),
        );
        report.set("client", client);

        let mut phases = Json::obj();
        for (i, (_, b)) in phase_json.iter().enumerate() {
            phases.set(
                if i == 0 {
                    "first_failover"
                } else {
                    "second_failover"
                },
                b.to_json(),
            );
        }
        report.set("phases", phases);

        if let Err(e) = report.write_to(&path) {
            eprintln!("failed to write {}: {e}", path.display());
            exit(1);
        }
        println!("metrics report written to {}", path.display());
    }

    println!(
        "\nthe pair survived two failures: a crash, a rebuilt backup joined on the live\n\
         connection, and a second crash — one client connection, zero integrity violations."
    );
}
