//! Flight-recorder dump validation: check schema-versioned dumps (and
//! their Chrome trace-event exports) on disk, or run the built-in
//! self-test that exercises the whole capture → dump → validate →
//! round-trip pipeline on a seeded chaos case.
//!
//! Run with: `cargo run -p sttcp-bench --bin trace_check -- --selftest`
//! or `cargo run -p sttcp-bench --bin trace_check -- DUMP...`
//!
//! * `--selftest`  run a seeded crash case with the flight recorder
//!   forced on, write the dump pair to a temp directory, and verify:
//!   schema validation, parse round-trip, causal linkage
//!   (fault → heartbeat → verdict → stonith → takeover), and that a
//!   replay produces a byte-identical dump.
//! * `DUMP...`     validate files: `*.flight.json` against the flight
//!   schema, `*.trace.json` as parseable Chrome trace JSON.
//!
//! Exit status is 1 on any validation failure.

use std::path::Path;
use std::process::ExitCode;

use obs::flightdump::{from_json, snapshot_to_json, validate};
use obs::json::Json;
use simnet::flight::FlightKind;
use sttcp_apps::chaos::{run_chaos_case, ChaosOptions, FaultSchedule};
use sttcp_bench::flight::write_flight_dump;

fn validate_file(path: &Path) -> Result<String, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: read: {e}", path.display()))?;
    let json =
        Json::parse(&text).map_err(|e| format!("{}: not valid JSON: {e}", path.display()))?;
    if path.to_string_lossy().ends_with(".trace.json") {
        // Chrome trace-event export: parseable and shaped like one.
        match json.get("traceEvents") {
            Some(Json::Arr(evs)) => Ok(format!(
                "{}: ok ({} trace records)",
                path.display(),
                evs.len()
            )),
            _ => Err(format!("{}: no traceEvents array", path.display())),
        }
    } else {
        validate(&json).map_err(|e| format!("{}: {e}", path.display()))?;
        let (events, hosts) =
            from_json(&json).map_err(|e| format!("{}: round-trip: {e}", path.display()))?;
        Ok(format!(
            "{}: ok ({} events across {} hosts)",
            path.display(),
            events.len(),
            hosts.len()
        ))
    }
}

fn selftest() -> Result<(), String> {
    // A crash with the recorder forced on: the tail holds the whole
    // fault → detection → takeover story even though no invariant is
    // violated.
    let schedule: FaultSchedule = "@1000 crash primary"
        .parse()
        .map_err(|e| format!("schedule: {e}"))?;
    let opts = ChaosOptions {
        flight_always: true,
        ..ChaosOptions::quick()
    };
    let report = run_chaos_case(7, &schedule, &opts);
    let snap = report
        .flight
        .as_ref()
        .ok_or("flight_always run produced no snapshot")?;
    if snap.events.is_empty() {
        return Err("flight snapshot is empty".into());
    }

    // Schema + round-trip.
    let dump = snapshot_to_json(snap);
    validate(&dump).map_err(|e| format!("validate: {e}"))?;
    let (events, hosts) = from_json(&dump).map_err(|e| format!("from_json: {e}"))?;
    if events != snap.events || hosts != snap.hosts {
        return Err("round-trip did not reproduce the snapshot".into());
    }

    // Causal linkage: a fault was recorded, and the backup's verdict is
    // parented to the span of a heartbeat it received — the chain a
    // post-mortem walks from symptom back to cause.
    if !snap
        .events
        .iter()
        .any(|e| matches!(e.kind, FlightKind::Fault { .. }))
    {
        return Err("no fault event in the tail".into());
    }
    let verdict = snap
        .events
        .iter()
        .find(|e| matches!(e.kind, FlightKind::Verdict { .. }))
        .ok_or("no verdict event in the tail")?;
    let linked = snap
        .events
        .iter()
        .any(|e| matches!(e.kind, FlightKind::HbRecv { .. }) && e.span == verdict.parent);
    if !linked {
        return Err("verdict is not parented to a received heartbeat span".into());
    }
    if !snap
        .events
        .iter()
        .any(|e| matches!(e.kind, FlightKind::Takeover { .. }) && e.parent == verdict.parent)
    {
        return Err("takeover does not join the verdict's causal chain".into());
    }

    // Determinism: an identical replay dumps identical bytes.
    let replay = run_chaos_case(7, &schedule, &opts);
    let again = replay.flight.ok_or("replay produced no snapshot")?;
    if snapshot_to_json(&again).to_string() != dump.to_string() {
        return Err("replay dump is not byte-identical".into());
    }

    // Disk round-trip through the CLI writer.
    let dir = std::env::temp_dir().join("trace_check_selftest");
    let w = write_flight_dump(&dir, "selftest", snap).map_err(|e| format!("write: {e}"))?;
    let msg = validate_file(&w.dump)?;
    println!("{msg}");
    let msg = validate_file(&w.trace)?;
    println!("{msg}");
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "selftest ok: {} events, verdict causally linked fault -> heartbeat -> takeover, \
         replay byte-identical",
        snap.events.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: trace_check --selftest | trace_check DUMP...");
        return ExitCode::from(2);
    }
    if args.iter().any(|a| a == "--selftest") {
        return match selftest() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("selftest FAILED: {e}");
                ExitCode::from(1)
            }
        };
    }
    let mut failed = false;
    for a in &args {
        match validate_file(Path::new(a)) {
            Ok(msg) => println!("{msg}"),
            Err(e) => {
                eprintln!("INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
