//! Regenerates **Demo 3**: insignificant overhead during failure-free
//! operation.
//!
//! Transfers a large file (100 MB by default, pass a byte count to
//! override) with ST-TCP enabled (primary + active backup, heartbeats,
//! hold buffer) and disabled (plain TCP server), and compares completion
//! times and frame counts.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo3_overhead --release [bytes]`

use sttcp_bench::experiments::run_overhead;
use sttcp_bench::report::{pct, Table};

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(100 * 1024 * 1024);

    println!(
        "Demo 3 — failure-free overhead ({:.1} MB transfer)\n",
        total as f64 / 1e6
    );
    let r = run_overhead(3, total);

    let mut t = Table::new(vec!["metric", "ST-TCP enabled", "ST-TCP disabled"]);
    t.row(vec![
        "virtual transfer time".to_string(),
        r.sttcp_time.to_string(),
        r.plain_time.to_string(),
    ]);
    t.row(vec![
        "frames delivered to client".to_string(),
        r.sttcp_client_frames.to_string(),
        r.plain_client_frames.to_string(),
    ]);
    t.row(vec![
        "serial heartbeat bytes".to_string(),
        r.hb_serial_bytes.to_string(),
        "-".to_string(),
    ]);
    println!("{t}");
    println!("relative time overhead: {}", pct(r.overhead));
    println!(
        "\nthe protocol-level overhead is {}; per-segment CPU overhead is\n\
         measured separately by `cargo bench` (datapath benchmarks).",
        if r.overhead.abs() < 0.02 {
            "negligible, matching the paper"
        } else {
            "larger than expected — investigate"
        }
    );
}
