//! Ablations of ST-TCP's design choices.
//!
//! 1. **Dual heartbeat links (§3).** The paper's motivating incident: with
//!    a single (IP-only) heartbeat, a backup NIC failure makes the backup
//!    conclude the *primary* died — it shoots the healthy primary and
//!    takes over with a dead NIC. We reproduce exactly that by cutting
//!    the serial cable first, then failing the backup NIC, and compare
//!    with the dual-link configuration.
//! 2. **Heartbeat timeout multiplier.** Detection latency vs robustness
//!    to heartbeat loss on a lossy IP link.
//! 3. **Hold-buffer capacity.** Which tap-loss bursts are recoverable
//!    before the primary declares the backup failed.
//!
//! Run with: `cargo run -p sttcp-bench --bin ablations --release`
//!
//! `--threads <n>` fans each ablation's independent grid cells out over
//! a worker pool; every cell derives its seed from its grid coordinates
//! alone, so the tables are identical to a single-threaded run.

use std::rc::Rc;

use simnet::link::LinkDir;
use simnet::time::{SimDuration, SimTime};

use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;

use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::{AppMaker, ScenarioBuilder};
use sttcp_bench::parallel::parallel_map_indexed;
use sttcp_bench::report::Table;

fn t(ms: u64) -> SimTime {
    SimTime::from_millis(ms)
}

fn echo_app() -> AppMaker {
    Rc::new(|| Box::new(EchoApp::default()) as _)
}

fn chat() -> ClientWorkload {
    ClientWorkload::EchoChat {
        chunk: 1024,
        period: SimDuration::from_millis(50),
        count: 300,
    }
}

fn cfg() -> StTcpConfig {
    StTcpConfig {
        app_max_lag_time: SimDuration::from_secs(1),
        ..Default::default()
    }
}

fn dual_link_ablation(threads: usize) {
    println!("--- ablation 1: dual vs single heartbeat link (backup NIC fails) ---\n");
    let mut table = Table::new(vec![
        "HB links",
        "who was condemned",
        "client outcome",
        "servers left powered",
    ]);
    let cases = [false, true];
    let rows = parallel_map_indexed(threads, &cases, |_, &single_link| {
        let mut s = ScenarioBuilder::new(echo_app(), chat())
            .seed(301)
            .sttcp(cfg())
            .build();
        if single_link {
            // No serial cable: the IP heartbeat is the only one.
            s.fail_serial_at(t(0));
        }
        let b = s.backup;
        s.fail_nic_at(b, t(2_000));
        s.world.run_until(t(60_000));

        let condemned_by = |node| {
            s.server(node)
                .events()
                .iter()
                .any(|e| matches!(e, StTcpEvent::PeerDeclaredFailed { .. }))
        };
        let who = match (condemned_by(s.primary), condemned_by(s.backup)) {
            (true, false) => "backup (correct)",
            (false, true) => "primary (WRONG)",
            (true, true) => "both (mutual shoot-out)",
            (false, false) => "nobody",
        };
        let log = s.client_log();
        let outcome = if s.client_finished() && log.resets == 0 {
            "served".to_string()
        } else {
            format!(
                "DISRUPTED (resets={}, finished={})",
                log.resets,
                s.client_finished()
            )
        };
        let powered = [s.primary, s.backup]
            .iter()
            .filter(|&&n| s.world.is_powered(n))
            .count();
        vec![
            if single_link {
                "IP only"
            } else {
                "IP + serial"
            }
            .to_string(),
            who.to_string(),
            outcome,
            powered.to_string(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    println!("{table}");
    println!(
        "with a single heartbeat link, the server that *lost its NIC* sees the\n\
         heartbeat die and condemns its healthy peer — the paper's motivation\n\
         for the serial cable (§3). The dual-link run localizes the failure.\n"
    );
}

fn hb_timeout_ablation(threads: usize) {
    println!("--- ablation 2: heartbeat timeout multiplier on a lossy IP link ---\n");
    let mut table = Table::new(vec![
        "timeout (periods)",
        "IP HB loss",
        "verdict under loss (healthy pair)",
        "crash detection",
    ]);
    let mut cases: Vec<(u32, f64)> = Vec::new();
    for periods in [2u32, 3, 5] {
        for loss in [0.0f64, 0.3] {
            cases.push((periods, loss));
        }
    }
    let rows = parallel_map_indexed(threads, &cases, |_, &(periods, loss)| {
        // Phase 1: lossy but healthy — must not produce a verdict.
        let mut s = ScenarioBuilder::new(echo_app(), chat())
            .seed(310 + periods as u64)
            .sttcp(StTcpConfig {
                hb_timeout_periods: periods,
                ..cfg()
            })
            .build();
        if loss > 0.0 {
            // Loss on both directions of both server links: heartbeats
            // and data both suffer.
            for link in [s.link_primary, s.link_backup] {
                s.world.set_link_loss(link, LinkDir::AtoB, loss);
                s.world.set_link_loss(link, LinkDir::BtoA, loss);
            }
        }
        s.world.run_until(t(15_000));
        let false_verdict = [s.primary, s.backup].iter().find_map(|&n| {
            s.server(n).events().iter().find_map(|e| match e {
                StTcpEvent::PeerDeclaredFailed { reason, .. } => Some(reason.to_string()),
                _ => None,
            })
        });

        // Phase 2 (clean link): real crash detection latency.
        let mut s2 = ScenarioBuilder::new(echo_app(), chat())
            .seed(320 + periods as u64)
            .sttcp(StTcpConfig {
                hb_timeout_periods: periods,
                ..cfg()
            })
            .build();
        s2.crash_primary_at(t(2_000));
        s2.world.run_until(t(30_000));
        let det = s2.server(s2.backup).events().iter().find_map(|e| match e {
            StTcpEvent::PeerDeclaredFailed { at, .. } => Some(at.saturating_since(t(2_000))),
            _ => None,
        });
        vec![
            periods.to_string(),
            format!("{:.0}%", loss * 100.0),
            false_verdict.unwrap_or_else(|| "no".into()),
            det.map(|d| d.to_string()).unwrap_or_else(|| "-".into()),
        ]
    });
    for row in rows {
        table.row(row);
    }
    println!("{table}");
    println!(
        "crash-detection latency is linear in the timeout multiplier, while\n\
         the loss-free serial link shields heartbeat liveness from even 30%\n\
         IP loss at every multiplier. The one verdict that does appear under\n\
         loss is an application-lag call (the recovery path itself runs over\n\
         the lossy link and falls behind the aggressive 1 s threshold) —\n\
         which the paper explicitly sanctions: degradation severe enough to\n\
         meet the criteria \"is considered severe enough to warrant a\n\
         failover\" (§4.2.1).\n"
    );
}

fn hold_buffer_ablation(threads: usize) {
    println!("--- ablation 3: hold-buffer capacity vs recoverable burst size ---\n");
    let mut table = Table::new(vec![
        "hold buffer",
        "tap-loss burst",
        "recovered",
        "backup condemned",
        "client",
    ]);
    let mut cases: Vec<(usize, u64)> = Vec::new();
    for hold in [4 * 1024usize, 64 * 1024, 1024 * 1024] {
        for burst in [10u64, 100] {
            cases.push((hold, burst));
        }
    }
    let rows = parallel_map_indexed(threads, &cases, |_, &(hold, burst)| {
        let mut s = ScenarioBuilder::new(echo_app(), chat())
            .seed(330 + burst)
            .sttcp(StTcpConfig {
                hold_buf: hold,
                // Slow the fetch path so the hold buffer actually fills
                // for large bursts.
                recovery_interval: SimDuration::from_millis(400),
                recovery_chunk: 2 * 1024,
                ..cfg()
            })
            .build();
        s.drop_backup_tap_at(t(2_000), burst);
        s.world.run_until(t(60_000));
        let backup_condemned = s
            .server(s.primary)
            .events()
            .iter()
            .any(|e| matches!(e, StTcpEvent::PeerDeclaredFailed { .. }));
        let recovered = s
            .server(s.backup)
            .events()
            .iter()
            .any(|e| matches!(e, StTcpEvent::RecoveryCompleted { .. }));
        let log = s.client_log();
        vec![
            format!("{} KiB", hold / 1024),
            burst.to_string(),
            recovered.to_string(),
            backup_condemned.to_string(),
            if s.client_finished() && log.resets == 0 {
                "served"
            } else {
                "DISRUPTED"
            }
            .to_string(),
        ]
    });
    for row in rows {
        table.row(row);
    }
    println!("{table}");
    println!(
        "small hold buffers turn large-but-transient tap losses into\n\
         backup-failure verdicts (primary continues alone, client still\n\
         served); a generous buffer rides out the same burst."
    );
}

fn parse_threads() -> usize {
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads requires a number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: ablations [--threads <n>]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    threads
}

fn main() {
    let threads = parse_threads();
    println!("ST-TCP design ablations\n");
    dual_link_ablation(threads);
    hb_timeout_ablation(threads);
    hold_buffer_ablation(threads);
}
