//! Regenerates **Demo 5**: NIC failures.
//!
//! Part 1 fails the primary's NIC, part 2 the backup's; each part runs
//! with a chatty client (byte/ack-lag detection over the serial
//! heartbeat) and with a silent client (gateway-ping detection).
//!
//! Run with: `cargo run -p sttcp-bench --bin demo5_nic_failure --release`

use std::rc::Rc;

use simnet::time::{SimDuration, SimTime};
use sttcp::app::EchoApp;
use sttcp::config::StTcpConfig;
use sttcp::events::StTcpEvent;
use sttcp_apps::client::ClientWorkload;
use sttcp_apps::scenario::ScenarioBuilder;
use sttcp_bench::report::Table;

fn main() {
    println!("Demo 5 — NIC failure detection and recovery\n");
    let mut t = Table::new(vec![
        "failed NIC",
        "client traffic",
        "symptom",
        "recovery",
        "detect",
        "client stream",
    ]);
    for (i, (fail_primary, quiet)) in [(true, false), (true, true), (false, false), (false, true)]
        .iter()
        .enumerate()
    {
        let workload = if *quiet {
            ClientWorkload::Idle
        } else {
            ClientWorkload::EchoChat {
                chunk: 1024,
                period: SimDuration::from_millis(50),
                count: 300,
            }
        };
        let mut s = ScenarioBuilder::new(Rc::new(|| Box::new(EchoApp::default()) as _), workload)
            .seed(50 + i as u64)
            .sttcp(StTcpConfig {
                app_max_lag_time: SimDuration::from_secs(1),
                ..Default::default()
            })
            .build();
        let inject = SimTime::from_secs(3);
        let victim = if *fail_primary { s.primary } else { s.backup };
        let detector = if *fail_primary { s.backup } else { s.primary };
        s.fail_nic_at(victim, inject);
        s.world.run_until(SimTime::from_secs(60));

        let (symptom, det) = s
            .server(detector)
            .events()
            .iter()
            .find_map(|e| match e {
                StTcpEvent::PeerDeclaredFailed { reason, at } => {
                    Some((reason.to_string(), at.saturating_since(inject)))
                }
                _ => None,
            })
            .unwrap_or(("none".into(), SimDuration::ZERO));
        let recovery = if s.server(s.backup).took_over_at().is_some() {
            "backup took over"
        } else {
            "primary non-FT"
        };
        let log = s.client_log();
        let stream = if *quiet {
            "idle".to_string()
        } else if s.client_finished() && log.integrity_violations == 0 && log.resets == 0 {
            "intact".to_string()
        } else {
            "DISRUPTED".to_string()
        };
        t.row(vec![
            if *fail_primary { "primary" } else { "backup" }.to_string(),
            if *quiet {
                "silent (ping path)"
            } else {
                "chatty (lag path)"
            }
            .to_string(),
            symptom,
            recovery.to_string(),
            det.to_string(),
            stream,
        ]);
    }
    println!("{t}");
    println!(
        "the serial heartbeat keeps the servers talking through the IP outage;\n\
         lag comparison handles chatty clients and the gateway-ping exchange\n\
         assigns blame when the client is silent — per paper §4.3."
    );
}
