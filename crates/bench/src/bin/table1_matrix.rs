//! Regenerates the paper's **Table 1**: all ten single-failure scenarios
//! (five failure classes × {primary, backup}), reporting the observed
//! symptom, the recovery action taken, the detection latency, and whether
//! the client's stream survived untouched.
//!
//! Run with: `cargo run -p sttcp-bench --bin table1_matrix --release`

use sttcp_bench::experiments::run_table1_matrix;
use sttcp_bench::report::Table;

fn main() {
    println!("ST-TCP Table 1 — single failure scenarios (reproduced)\n");
    let rows = run_table1_matrix(1_000);
    let mut table = Table::new(vec![
        "row",
        "location",
        "failure injected",
        "symptom observed",
        "recovery action",
        "detect",
        "client",
    ]);
    for r in &rows {
        table.row(vec![
            r.row.to_string(),
            r.location.to_string(),
            r.failure.clone(),
            r.symptom.clone(),
            r.recovery.clone(),
            r.detection
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            if r.client_ok { "intact" } else { "DISRUPTED" }.to_string(),
        ]);
    }
    println!("{table}");

    let all_ok = rows.iter().all(|r| r.client_ok);
    println!(
        "client stream intact in {}/{} scenarios{}",
        rows.iter().filter(|r| r.client_ok).count(),
        rows.len(),
        if all_ok {
            " — all single failures masked"
        } else {
            ""
        }
    );
}
