//! Regenerates the paper's **Table 1**: all ten single-failure scenarios
//! (five failure classes × {primary, backup}), reporting the observed
//! symptom, the recovery action taken, the detection latency (checked
//! against the configured worst-case bound for that detector), and
//! whether the client's stream survived untouched.
//!
//! Run with: `cargo run -p sttcp-bench --bin table1_matrix --release`
//!
//! `--json <path>` additionally writes the matrix as a `MetricsReport`.
//! `--threads <n>` fans the ten independent scenarios out over a worker
//! pool; the output is identical to a single-threaded run.
//!
//! Exit status is 1 if any client stream was disrupted or any detection
//! latency exceeded its configured bound.

use std::path::PathBuf;
use std::process::ExitCode;

use obs::json::Json;
use obs::report::MetricsReport;
use sttcp_bench::experiments::run_table1_matrix_threaded;
use sttcp_bench::report::Table;

fn parse_args() -> (Option<PathBuf>, usize) {
    let mut json = None;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    std::process::exit(2);
                }
            },
            "--threads" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => {
                    eprintln!("--threads requires a number");
                    std::process::exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: table1_matrix [--json <path>] [--threads <n>]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    (json, threads)
}

fn main() -> ExitCode {
    let (json_path, threads) = parse_args();
    println!("ST-TCP Table 1 — single failure scenarios (reproduced)\n");
    let rows = run_table1_matrix_threaded(1_000, threads);
    let mut table = Table::new(vec![
        "row",
        "location",
        "failure injected",
        "symptom observed",
        "recovery action",
        "detect",
        "bound",
        "client",
    ]);
    for r in &rows {
        table.row(vec![
            r.row.to_string(),
            r.location.to_string(),
            r.failure.clone(),
            r.symptom.clone(),
            r.recovery.clone(),
            r.detection
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            r.bound.map(|b| b.to_string()).unwrap_or_else(|| "-".into()),
            if r.client_ok { "intact" } else { "DISRUPTED" }.to_string(),
        ]);
    }
    println!("{table}");

    let all_ok = rows.iter().all(|r| r.client_ok);
    println!(
        "client stream intact in {}/{} scenarios{}",
        rows.iter().filter(|r| r.client_ok).count(),
        rows.len(),
        if all_ok {
            " — all single failures masked"
        } else {
            ""
        }
    );

    let mut bound_failures = 0u32;
    for r in &rows {
        if r.bound_violated() {
            bound_failures += 1;
            println!(
                "BOUND VIOLATED: row {} ({}) detected in {} > configured bound {}",
                r.row,
                r.location,
                r.detection.unwrap(),
                r.bound.unwrap(),
            );
        }
    }
    if bound_failures == 0 {
        println!("all detection latencies within their configured bounds");
    }

    if let Some(path) = json_path {
        let mut report = MetricsReport::new("table1_matrix");
        let json_rows: Vec<Json> = rows
            .iter()
            .map(|r| {
                let mut o = Json::obj();
                o.set("row", Json::U64(u64::from(r.row)));
                o.set("location", Json::from(r.location));
                o.set("failure", Json::from(r.failure.as_str()));
                o.set("symptom", Json::from(r.symptom.as_str()));
                o.set("recovery", Json::from(r.recovery.as_str()));
                o.set(
                    "detect_us",
                    r.detection
                        .map(|d| Json::U64(d.as_micros()))
                        .unwrap_or(Json::Null),
                );
                o.set(
                    "bound_us",
                    r.bound
                        .map(|b| Json::U64(b.as_micros()))
                        .unwrap_or(Json::Null),
                );
                o.set(
                    "reason",
                    r.reason.map(|x| Json::from(x.key())).unwrap_or(Json::Null),
                );
                o.set("bound_violated", Json::Bool(r.bound_violated()));
                o.set("client_ok", Json::Bool(r.client_ok));
                o
            })
            .collect();
        report.set("rows", Json::Arr(json_rows));
        let mut summary = Json::obj();
        summary.set(
            "client_intact",
            Json::U64(rows.iter().filter(|r| r.client_ok).count() as u64),
        );
        summary.set("scenarios", Json::U64(rows.len() as u64));
        summary.set("bound_violations", Json::U64(u64::from(bound_failures)));
        report.set("summary", summary);
        if let Err(e) = report.write_to(&path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!("metrics report written to {}", path.display());
    }

    if all_ok && bound_failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
