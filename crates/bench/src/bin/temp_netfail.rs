//! Regenerates **§4.3 / Table 1 row 5**: temporary network failures.
//!
//! Sweeps loss-burst sizes on the backup's tap and shows the missed-byte
//! recovery protocol fetching the gap from the primary's extended receive
//! buffer; the final row shrinks the hold buffer and blocks recovery to
//! exhibit the escalation path (backup declared failed on hold
//! overflow).
//!
//! Run with: `cargo run -p sttcp-bench --bin temp_netfail --release`

use sttcp_bench::experiments::run_temp_netfail;
use sttcp_bench::report::Table;

fn main() {
    println!("§4.3 — temporary network failure at the backup tap\n");
    let mut t = Table::new(vec![
        "burst (frames)",
        "hold buffer",
        "recovery",
        "recovery time",
        "verdict",
        "client",
    ]);
    for (i, burst) in [5u64, 20, 60].iter().enumerate() {
        let r = run_temp_netfail(60 + i as u64, *burst, false);
        t.row(vec![
            burst.to_string(),
            "1 MiB (default)".to_string(),
            if r.recovered {
                "fetched from primary".to_string()
            } else if r.recovery_requested {
                "requested, incomplete".to_string()
            } else {
                "not needed".to_string()
            },
            r.recovery_time
                .map(|d| d.to_string())
                .unwrap_or_else(|| "-".into()),
            r.verdict
                .map(|v| v.to_string())
                .unwrap_or_else(|| "none".into()),
            if r.client_ok { "intact" } else { "DISRUPTED" }.to_string(),
        ]);
    }
    // Escalation: sustained outage + tiny hold buffer.
    let r = run_temp_netfail(70, 100_000, true);
    t.row(vec![
        "sustained".to_string(),
        "2 KiB (shrunk)".to_string(),
        "blocked (experiment)".to_string(),
        "-".to_string(),
        r.verdict
            .map(|v| v.to_string())
            .unwrap_or_else(|| "none".into()),
        if r.client_ok { "intact" } else { "DISRUPTED" }.to_string(),
    ]);
    println!("{t}");
    println!(
        "short bursts are repaired transparently from the primary's extended\n\
         receive buffer; when the backup cannot catch up before the buffer\n\
         fills, the primary declares it failed and runs non-fault-tolerant —\n\
         the client is unaffected either way (Table 1 row 5 + §4.3)."
    );
}
