//! Regenerates **Demo 1**: client-transparent, seamless failover.
//!
//! Streams a 4 MiB "pie chart" feed to the client, crashes the primary at
//! half-way, and renders the client's progress curve. A second run shows
//! the paper's contrast: plain TCP with a hot standby, where the client
//! must time out, reconnect, and restart.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo1_failover --release`

use simnet::time::SimDuration;
use sttcp_bench::experiments::{run_baseline_failover, run_failover};
use sttcp_bench::report::{render_series, Table};

fn main() {
    const TOTAL: u64 = 4 * 1024 * 1024;
    const CRASH_MS: u64 = 4_000;

    println!("Demo 1 — client-transparent seamless failover\n");
    let r = run_failover(1, 200, TOTAL, CRASH_MS);
    println!("ST-TCP client progress (x: time, y: bytes; primary crashed at t={CRASH_MS}ms):\n");
    print!("{}", render_series(&r.progress, 72, 12));
    println!();

    let (base_stall, base_reconnects, base_finished) =
        run_baseline_failover(1, TOTAL, CRASH_MS, SimDuration::from_secs(3));

    let mut t = Table::new(vec!["metric", "ST-TCP", "plain TCP + hot standby"]);
    t.row(vec![
        "transfer completed".to_string(),
        r.transparent.to_string(),
        base_finished.to_string(),
    ]);
    t.row(vec![
        "connections needed".to_string(),
        "1 (transparent)".to_string(),
        format!("{} (reconnect + restart)", 1 + base_reconnects),
    ]);
    t.row(vec![
        "worst client stall".to_string(),
        r.client_stall.to_string(),
        base_stall.to_string(),
    ]);
    t.row(vec![
        "failure detection".to_string(),
        r.detection.map(|d| d.to_string()).unwrap_or_default(),
        "client-side timeout".to_string(),
    ]);
    t.row(vec![
        "stream integrity violations".to_string(),
        r.violations.to_string(),
        "0 (but restarted from zero)".to_string(),
    ]);
    println!("{t}");
    println!(
        "the ST-TCP failover appears to the user as a {} glitch;\n\
         the baseline loses the connection outright and replays the whole transfer.",
        r.client_stall
    );
}
