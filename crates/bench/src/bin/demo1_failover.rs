//! Regenerates **Demo 1**: client-transparent, seamless failover.
//!
//! Streams a 4 MiB "pie chart" feed to the client, crashes the primary at
//! half-way, and renders the client's progress curve. A second run shows
//! the paper's contrast: plain TCP with a hot standby, where the client
//! must time out, reconnect, and restart.
//!
//! Run with: `cargo run -p sttcp-bench --bin demo1_failover --release`
//!
//! `--json <path>` additionally writes the run's full `MetricsReport`
//! (simnet/tcp/core/client/phases sections) to `path`.

use std::path::PathBuf;
use std::process::exit;

use simnet::time::SimDuration;
use sttcp_bench::experiments::{run_baseline_failover, run_failover};
use sttcp_bench::flight::{dumps_to_json, flight_dir_for, write_flight_dump};
use sttcp_bench::report::{render_series, Table};

fn parse_args() -> Option<PathBuf> {
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => match args.next() {
                Some(p) => json = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    exit(2);
                }
            },
            "--help" | "-h" => {
                eprintln!("usage: demo1_failover [--json <path>]");
                exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                exit(2);
            }
        }
    }
    json
}

fn main() {
    const TOTAL: u64 = 4 * 1024 * 1024;
    const CRASH_MS: u64 = 4_000;
    let json_path = parse_args();

    println!("Demo 1 — client-transparent seamless failover\n");
    let mut r = run_failover(1, 200, TOTAL, CRASH_MS);
    println!("ST-TCP client progress (x: time, y: bytes; primary crashed at t={CRASH_MS}ms):\n");
    print!("{}", render_series(&r.progress, 72, 12));
    println!();

    let (base_stall, base_reconnects, base_finished) =
        run_baseline_failover(1, TOTAL, CRASH_MS, SimDuration::from_secs(3));

    let mut t = Table::new(vec!["metric", "ST-TCP", "plain TCP + hot standby"]);
    t.row(vec![
        "transfer completed".to_string(),
        r.transparent.to_string(),
        base_finished.to_string(),
    ]);
    t.row(vec![
        "connections needed".to_string(),
        "1 (transparent)".to_string(),
        format!("{} (reconnect + restart)", 1 + base_reconnects),
    ]);
    t.row(vec![
        "worst client stall".to_string(),
        r.client_stall.to_string(),
        base_stall.to_string(),
    ]);
    t.row(vec![
        "failure detection".to_string(),
        r.detection.map(|d| d.to_string()).unwrap_or_default(),
        "client-side timeout".to_string(),
    ]);
    t.row(vec![
        "stream integrity violations".to_string(),
        r.violations.to_string(),
        "0 (but restarted from zero)".to_string(),
    ]);
    println!("{t}");

    if let Some(b) = &r.breakdown {
        println!("failover phase breakdown (partitions the client stall):\n");
        let mut pt = Table::new(vec!["phase", "duration"]);
        for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
            pt.row(vec![p.name().to_string(), d.to_string()]);
        }
        pt.row(vec!["total".to_string(), b.total.to_string()]);
        println!("{pt}");
        // The identity the report is built on: the phase durations sum to
        // the client-observed stall measured from the transcript.
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        let tick = SimDuration::from_micros(1);
        assert!(
            sum <= r.client_stall + tick && r.client_stall <= sum + tick,
            "phase sum {sum} != client stall {}",
            r.client_stall
        );
    }

    println!(
        "the ST-TCP failover appears to the user as a {} glitch;\n\
         the baseline loses the connection outright and replays the whole transfer.",
        r.client_stall
    );

    if let Some(path) = json_path {
        // Ship the causal trace of the failover alongside the report:
        // crash → heartbeat silence → verdict → STONITH → takeover.
        match write_flight_dump(&flight_dir_for(Some(&path)), "demo1", &r.flight) {
            Ok(w) => {
                println!(
                    "\nflight dump: {} ({} events; open {} in ui.perfetto.dev)",
                    w.dump.display(),
                    w.events,
                    w.trace.display()
                );
                r.report.set("flight_dumps", dumps_to_json(&[w]));
            }
            Err(e) => eprintln!("failed to write flight dump: {e}"),
        }
        if let Err(e) = r.report.write_to(&path) {
            eprintln!("failed to write {}: {e}", path.display());
            exit(1);
        }
        println!("\nmetrics report written to {}", path.display());
    }
}
