//! Chaos hunt: sweep seeded multi-fault schedules against the invariant
//! checker, shrink any violation to a minimal reproducer, and print it
//! in paste-able form. Failovers observed along the way are folded into
//! a phase-latency table (fault → symptom → verdict → STONITH →
//! takeover → restart, p50/p99/max across seeds).
//!
//! Run with: `cargo run -p sttcp-bench --bin chaos_hunt --release`
//!
//! Options:
//! * `--seeds N`          number of seeds to sweep (default 200)
//! * `--start N`          first seed (default 0)
//! * `--quick`            smaller download + shorter horizon (CI smoke)
//! * `--double`           double-fault schedules (failure during repair)
//! * `--seed N`           run exactly one seed, verbosely
//! * `--schedule S`       replay a schedule string (with `--seed`'s seed)
//! * `--verbose`          print every case, not just violations
//! * `--trace`            dump the world trace to stderr (single-case mode)
//! * `--json PATH`        write a `MetricsReport` (outcomes + phase
//!   histograms) to PATH after the sweep
//! * `--enforce-bounds`   fail (exit 1) if any failover's fault → verdict
//!   latency exceeds the configured bound for the detector that fired
//!
//! Exit status is 1 if any invariant violation was found (or, with
//! `--enforce-bounds`, any detection bound was exceeded).

use std::path::PathBuf;
use std::process::ExitCode;

use obs::json::Json;
use obs::report::MetricsReport;
use simnet::time::SimTime;
use sttcp::events::StTcpEvent;
use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{
    chaos_config, run_chaos_case, shrink_schedule, ChaosOptions, ChaosReport, FaultSchedule,
};
use sttcp_bench::phases::{detection_bound, failover_timeline, first_verdict, PhaseAgg};

struct Args {
    seeds: u64,
    start: u64,
    quick: bool,
    double: bool,
    one_seed: Option<u64>,
    schedule: Option<String>,
    verbose: bool,
    trace: bool,
    json: Option<PathBuf>,
    enforce_bounds: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        start: 0,
        quick: false,
        double: false,
        one_seed: None,
        schedule: None,
        verbose: false,
        trace: false,
        json: None,
        enforce_bounds: false,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: chaos_hunt [--seeds N] [--start N] [--quick] [--double] \
             [--seed N [--schedule \"...\"]] [--verbose] [--trace] \
             [--json PATH] [--enforce-bounds]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        let num = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name}: {v:?} is not a number")))
        };
        match a.as_str() {
            "--seeds" => args.seeds = num("--seeds", val("--seeds")),
            "--start" => args.start = num("--start", val("--start")),
            "--quick" => args.quick = true,
            "--double" => args.double = true,
            "--seed" => args.one_seed = Some(num("--seed", val("--seed"))),
            "--schedule" => args.schedule = Some(val("--schedule")),
            "--verbose" => args.verbose = true,
            "--trace" => args.trace = true,
            "--json" => args.json = Some(PathBuf::from(val("--json"))),
            "--enforce-bounds" => args.enforce_bounds = true,
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

/// The survivor's event log: whichever side completed a takeover, or
/// failing that, whichever declared a verdict.
fn survivor_events(report: &ChaosReport) -> Option<&[StTcpEvent]> {
    let took_over =
        |evs: &[StTcpEvent]| evs.iter().any(|e| matches!(e, StTcpEvent::TookOver { .. }));
    if took_over(&report.backup_events) {
        Some(&report.backup_events)
    } else if took_over(&report.primary_events) {
        Some(&report.primary_events)
    } else if first_verdict(&report.backup_events).is_some() {
        Some(&report.backup_events)
    } else if first_verdict(&report.primary_events).is_some() {
        Some(&report.primary_events)
    } else {
        None
    }
}

/// The latest injected fault at or before `cutoff` — the lenient
/// attribution for chaos runs, where several faults may precede one
/// verdict and the detector answers for the most recent of them.
fn latest_fault_before(report: &ChaosReport, cutoff: SimTime) -> Option<SimTime> {
    report
        .faults
        .iter()
        .map(|(at, _)| *at)
        .filter(|at| *at <= cutoff)
        .max()
}

/// The moment the survivor's detection clock last (re)started before
/// `cutoff`: the latest fault, or the latest heartbeat-link recovery if
/// that came later. A heartbeat outage stalls lag/ping evidence (peer
/// positions stop refreshing), so a detector's configured bound can only
/// be charged from when heartbeat coverage was last restored.
fn detection_clock_start(
    report: &ChaosReport,
    events: &[StTcpEvent],
    cutoff: SimTime,
) -> Option<SimTime> {
    let fault = latest_fault_before(report, cutoff)?;
    let link_up = events
        .iter()
        .filter_map(|e| match e {
            StTcpEvent::HbLinkUp { at, .. } if *at <= cutoff => Some(*at),
            _ => None,
        })
        .max();
    Some(link_up.map_or(fault, |up| fault.max(up)))
}

struct BoundViolation {
    seed: u64,
    reason: &'static str,
    measured_us: u64,
    bound_us: u64,
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut opts = if args.quick {
        ChaosOptions::quick()
    } else {
        ChaosOptions::default()
    };
    opts.trace = args.trace;

    // Single-case mode: replay one seed (and optionally a pasted
    // schedule) with full detail.
    if args.one_seed.is_some() || args.schedule.is_some() {
        let seed = args.one_seed.unwrap_or(0);
        let schedule = match &args.schedule {
            Some(s) => s.parse::<FaultSchedule>().unwrap_or_else(|e| {
                eprintln!("--schedule: {e}");
                std::process::exit(2);
            }),
            None if args.double => FaultSchedule::generate_double(seed),
            None => FaultSchedule::generate(seed),
        };
        println!("seed {seed}: {schedule}");
        let report = run_chaos_case(seed, &schedule, &opts);
        println!("outcome: {}", report.outcome);
        println!("client: {:?}", report.client);
        for (at, what) in &report.faults {
            println!("  fault @ {at}: {what}");
        }
        for e in &report.primary_events {
            println!("  primary: {e}");
        }
        for e in &report.backup_events {
            println!("  backup:  {e}");
        }
        if let (Some((ws, we)), Some(events)) = (report.stall_window, survivor_events(&report)) {
            let fault_at = latest_fault_before(&report, we);
            if let Some(b) = failover_timeline(ws, we, fault_at, events).breakdown() {
                println!("phase breakdown (stall {}):", b.total);
                for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
                    println!("  {:<10} {d}", p.name());
                }
            }
        }
        for v in &report.violations {
            println!("VIOLATION [{}]: {}", v.invariant, v.detail);
        }
        return if report.outcome == Outcome::Violation {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    // Sweep mode.
    let kind = if args.double {
        "double-fault"
    } else {
        "multi-fault"
    };
    println!(
        "chaos hunt: {} seeds {}..{} ({kind}{})",
        args.seeds,
        args.start,
        args.start + args.seeds,
        if args.quick { ", quick" } else { "" },
    );

    let cfg = chaos_config();
    let mut clean = 0u64;
    let mut recovered = 0u64;
    let mut detected = 0u64;
    let mut lost = 0u64;
    let mut violated: Vec<u64> = Vec::new();
    let mut agg = PhaseAgg::new();
    let mut bound_checked = 0u64;
    let mut bound_violations: Vec<BoundViolation> = Vec::new();

    for seed in args.start..args.start + args.seeds {
        let schedule = if args.double {
            FaultSchedule::generate_double(seed)
        } else {
            FaultSchedule::generate(seed)
        };
        let report = run_chaos_case(seed, &schedule, &opts);
        if args.verbose || report.outcome == Outcome::Violation {
            println!("seed {seed}: {} — {schedule}", report.outcome);
        }

        // Fold any observed failover into the phase aggregation, and
        // check the fault → verdict latency against the configured bound
        // for whichever detector fired.
        if let Some(events) = survivor_events(&report) {
            if let Some((ws, we)) = report.stall_window {
                let fault_at = latest_fault_before(&report, we);
                if let Some(b) = failover_timeline(ws, we, fault_at, events).breakdown() {
                    agg.add(&b);
                }
            }
            if let Some((reason, at)) = first_verdict(events) {
                if let (Some(clock_start), Some(bound)) = (
                    detection_clock_start(&report, events, at),
                    detection_bound(&cfg, reason),
                ) {
                    bound_checked += 1;
                    let measured = at.saturating_since(clock_start);
                    if measured > bound {
                        bound_violations.push(BoundViolation {
                            seed,
                            reason: reason.key(),
                            measured_us: measured.as_micros(),
                            bound_us: bound.as_micros(),
                        });
                    }
                }
            }
        }

        match report.outcome {
            Outcome::Clean => clean += 1,
            Outcome::Recovered => recovered += 1,
            Outcome::DetectedUnrecoverable => detected += 1,
            Outcome::ServiceLost => lost += 1,
            Outcome::Violation => {
                violated.push(seed);
                for v in &report.violations {
                    println!("  [{}] {}", v.invariant, v.detail);
                }
                println!("  shrinking...");
                let shrunk = shrink_schedule(seed, &schedule, &opts);
                println!(
                    "  minimal reproducer ({} actions, {} probe runs):",
                    shrunk.schedule.len(),
                    shrunk.runs
                );
                println!(
                    "    cargo run -p sttcp-bench --bin chaos_hunt -- \\\n      \
                     --seed {seed} --schedule \"{}\"",
                    shrunk.schedule
                );
            }
        }
    }

    println!();
    println!("clean                    {clean:>6}");
    println!("recovered                {recovered:>6}");
    println!("detected-unrecoverable   {detected:>6}");
    println!("service-lost             {lost:>6}");
    println!("VIOLATIONS               {:>6}", violated.len());

    if !agg.is_empty() {
        println!(
            "\nfailover phase latencies across {} failovers:\n",
            agg.failovers()
        );
        print!("{}", agg.render_table());
    }

    println!(
        "\ndetection bounds: {} failovers checked, {} exceeded",
        bound_checked,
        bound_violations.len()
    );
    for v in &bound_violations {
        println!(
            "BOUND EXCEEDED: seed {} ({}) detected in {:.1} ms > bound {:.1} ms",
            v.seed,
            v.reason,
            v.measured_us as f64 / 1_000.0,
            v.bound_us as f64 / 1_000.0,
        );
    }

    if let Some(path) = &args.json {
        let mut report = MetricsReport::new("chaos_hunt");
        let mut cfg_j = Json::obj();
        cfg_j.set("seeds", Json::U64(args.seeds));
        cfg_j.set("start", Json::U64(args.start));
        cfg_j.set("quick", Json::Bool(args.quick));
        cfg_j.set("double", Json::Bool(args.double));
        report.set("config", cfg_j);
        let mut outcomes = Json::obj();
        outcomes.set("clean", Json::U64(clean));
        outcomes.set("recovered", Json::U64(recovered));
        outcomes.set("detected_unrecoverable", Json::U64(detected));
        outcomes.set("service_lost", Json::U64(lost));
        outcomes.set("violations", Json::U64(violated.len() as u64));
        report.set("outcomes", outcomes);
        report.set("phases", agg.to_json());
        let mut bounds = Json::obj();
        bounds.set("checked", Json::U64(bound_checked));
        bounds.set("enforced", Json::Bool(args.enforce_bounds));
        bounds.set(
            "exceeded",
            Json::Arr(
                bound_violations
                    .iter()
                    .map(|v| {
                        let mut o = Json::obj();
                        o.set("seed", Json::U64(v.seed));
                        o.set("reason", Json::from(v.reason));
                        o.set("measured_us", Json::U64(v.measured_us));
                        o.set("bound_us", Json::U64(v.bound_us));
                        o
                    })
                    .collect(),
            ),
        );
        report.set("detection_bounds", bounds);
        if let Err(e) = report.write_to(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!("metrics report written to {}", path.display());
    }

    let bounds_failed = args.enforce_bounds && !bound_violations.is_empty();
    if violated.is_empty() && !bounds_failed {
        println!("\nno invariant violations — every run within its fault envelope");
        ExitCode::SUCCESS
    } else {
        if !violated.is_empty() {
            println!("\nviolating seeds: {violated:?}");
        }
        if bounds_failed {
            println!("\ndetection bounds exceeded — see BOUND EXCEEDED lines above");
        }
        ExitCode::from(1)
    }
}
