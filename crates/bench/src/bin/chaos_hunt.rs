//! Chaos hunt: sweep seeded multi-fault schedules against the invariant
//! checker, shrink any violation to a minimal reproducer, and print it
//! in paste-able form.
//!
//! Run with: `cargo run -p sttcp-bench --bin chaos_hunt --release`
//!
//! Options:
//! * `--seeds N`      number of seeds to sweep (default 200)
//! * `--start N`      first seed (default 0)
//! * `--quick`        smaller download + shorter horizon (CI smoke)
//! * `--double`       double-fault schedules (failure during repair)
//! * `--seed N`       run exactly one seed, verbosely
//! * `--schedule S`   replay a schedule string (with `--seed`'s seed)
//! * `--verbose`      print every case, not just violations
//! * `--trace`        dump the world trace to stderr (single-case mode)
//!
//! Exit status is 1 if any invariant violation was found.

use std::process::ExitCode;

use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{run_chaos_case, shrink_schedule, ChaosOptions, FaultSchedule};

struct Args {
    seeds: u64,
    start: u64,
    quick: bool,
    double: bool,
    one_seed: Option<u64>,
    schedule: Option<String>,
    verbose: bool,
    trace: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        start: 0,
        quick: false,
        double: false,
        one_seed: None,
        schedule: None,
        verbose: false,
        trace: false,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: chaos_hunt [--seeds N] [--start N] [--quick] [--double] \
             [--seed N [--schedule \"...\"]] [--verbose] [--trace]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        let num = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name}: {v:?} is not a number")))
        };
        match a.as_str() {
            "--seeds" => args.seeds = num("--seeds", val("--seeds")),
            "--start" => args.start = num("--start", val("--start")),
            "--quick" => args.quick = true,
            "--double" => args.double = true,
            "--seed" => args.one_seed = Some(num("--seed", val("--seed"))),
            "--schedule" => args.schedule = Some(val("--schedule")),
            "--verbose" => args.verbose = true,
            "--trace" => args.trace = true,
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut opts = if args.quick {
        ChaosOptions::quick()
    } else {
        ChaosOptions::default()
    };
    opts.trace = args.trace;

    // Single-case mode: replay one seed (and optionally a pasted
    // schedule) with full detail.
    if args.one_seed.is_some() || args.schedule.is_some() {
        let seed = args.one_seed.unwrap_or(0);
        let schedule = match &args.schedule {
            Some(s) => s.parse::<FaultSchedule>().unwrap_or_else(|e| {
                eprintln!("--schedule: {e}");
                std::process::exit(2);
            }),
            None if args.double => FaultSchedule::generate_double(seed),
            None => FaultSchedule::generate(seed),
        };
        println!("seed {seed}: {schedule}");
        let report = run_chaos_case(seed, &schedule, &opts);
        println!("outcome: {}", report.outcome);
        println!("client: {:?}", report.client);
        for e in &report.primary_events {
            println!("  primary: {e}");
        }
        for e in &report.backup_events {
            println!("  backup:  {e}");
        }
        for v in &report.violations {
            println!("VIOLATION [{}]: {}", v.invariant, v.detail);
        }
        return if report.outcome == Outcome::Violation {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    // Sweep mode.
    let kind = if args.double {
        "double-fault"
    } else {
        "multi-fault"
    };
    println!(
        "chaos hunt: {} seeds {}..{} ({kind}{})",
        args.seeds,
        args.start,
        args.start + args.seeds,
        if args.quick { ", quick" } else { "" },
    );

    let mut clean = 0u64;
    let mut recovered = 0u64;
    let mut detected = 0u64;
    let mut lost = 0u64;
    let mut violated: Vec<u64> = Vec::new();

    for seed in args.start..args.start + args.seeds {
        let schedule = if args.double {
            FaultSchedule::generate_double(seed)
        } else {
            FaultSchedule::generate(seed)
        };
        let report = run_chaos_case(seed, &schedule, &opts);
        if args.verbose || report.outcome == Outcome::Violation {
            println!("seed {seed}: {} — {schedule}", report.outcome);
        }
        match report.outcome {
            Outcome::Clean => clean += 1,
            Outcome::Recovered => recovered += 1,
            Outcome::DetectedUnrecoverable => detected += 1,
            Outcome::ServiceLost => lost += 1,
            Outcome::Violation => {
                violated.push(seed);
                for v in &report.violations {
                    println!("  [{}] {}", v.invariant, v.detail);
                }
                println!("  shrinking...");
                let shrunk = shrink_schedule(seed, &schedule, &opts);
                println!(
                    "  minimal reproducer ({} actions, {} probe runs):",
                    shrunk.schedule.len(),
                    shrunk.runs
                );
                println!(
                    "    cargo run -p sttcp-bench --bin chaos_hunt -- \\\n      \
                     --seed {seed} --schedule \"{}\"",
                    shrunk.schedule
                );
            }
        }
    }

    println!();
    println!("clean                    {clean:>6}");
    println!("recovered                {recovered:>6}");
    println!("detected-unrecoverable   {detected:>6}");
    println!("service-lost             {lost:>6}");
    println!("VIOLATIONS               {:>6}", violated.len());
    if violated.is_empty() {
        println!("\nno invariant violations — every run within its fault envelope");
        ExitCode::SUCCESS
    } else {
        println!("\nviolating seeds: {violated:?}");
        ExitCode::from(1)
    }
}
