//! Chaos hunt: sweep seeded multi-fault schedules against the invariant
//! checker, shrink any violation to a minimal reproducer, and print it
//! in paste-able form. Failovers observed along the way are folded into
//! a phase-latency table (fault → symptom → verdict → STONITH →
//! takeover → restart, p50/p99/max across seeds).
//!
//! Run with: `cargo run -p sttcp-bench --bin chaos_hunt --release`
//!
//! Options:
//! * `--seeds N`          number of seeds to sweep (default 200)
//! * `--start N`          first seed (default 0)
//! * `--threads N`        worker threads for case execution (default 1;
//!   results are bit-identical at any thread count)
//! * `--quick`            smaller download + shorter horizon (CI smoke)
//! * `--double`           double-fault schedules (failure during repair)
//! * `--reintegrate`      reintegrate-then-fail schedules: crash, warm
//!   reboot + rejoin, then crash the other side (servers run with
//!   re-integration enabled)
//! * `--pool`             N-replica pool schedules: kill the active,
//!   usually reboot + rejoin it, then kill the next active — quorum
//!   fencing and rank-ordered takeover under the pool invariants
//! * `--seed N`           run exactly one seed, verbosely
//! * `--schedule S`       replay a schedule string (with `--seed`'s seed)
//! * `--workload W`       verifying workload: `download` (default),
//!   `reqresp`, or `commit-stream`
//! * `--grammar`          after the sweep, print the action-grammar
//!   coverage table: injections per action kind and 2-fault kind
//!   combos exercised vs possible
//! * `--verbose`          print every case, not just violations
//! * `--trace`            dump the world trace to stderr (single-case mode)
//! * `--json PATH`        write a `MetricsReport` (outcomes + phase
//!   histograms) to PATH after the sweep
//! * `--enforce-bounds`   fail (exit 1) if any failover's fault → verdict
//!   latency exceeds the configured bound for the detector that fired
//!
//! Exit status is 1 if any invariant violation was found (or, with
//! `--enforce-bounds`, any detection bound was exceeded).

use std::path::PathBuf;
use std::process::ExitCode;

use sttcp::invariant::Outcome;
use sttcp_apps::chaos::{
    run_chaos_case, shrink_schedule, ChaosOptions, ChaosWorkload, FaultSchedule,
};
use sttcp_apps::pool::run_pool_case;
use sttcp_bench::flight::{dumps_to_json, flight_dir_for, write_flight_dump, FlightDumpPaths};
use sttcp_bench::hunt::{
    latest_fault_before, run_pool_sweep, run_sweep, survivor_events, GrammarCoverage, SweepConfig,
};
use sttcp_bench::phases::{failover_timeline, takeover_timelines};

/// Writes the violation's flight-recorder dump pair and prints where it
/// went; returns the paths for the `--json` report's `flight_dumps`
/// section. Failures are reported but never fail the hunt.
fn dump_flight(
    dir: &std::path::Path,
    stem: &str,
    snap: &simnet::flight::FlightSnapshot,
) -> Option<FlightDumpPaths> {
    match write_flight_dump(dir, stem, snap) {
        Ok(w) => {
            println!(
                "  flight dump: {} ({} events; open {} in ui.perfetto.dev)",
                w.dump.display(),
                w.events,
                w.trace.display()
            );
            Some(w)
        }
        Err(e) => {
            eprintln!("  failed to write flight dump {stem}: {e}");
            None
        }
    }
}

struct Args {
    seeds: u64,
    start: u64,
    threads: usize,
    quick: bool,
    double: bool,
    reintegrate: bool,
    pool: bool,
    one_seed: Option<u64>,
    schedule: Option<String>,
    workload: Option<ChaosWorkload>,
    grammar: bool,
    verbose: bool,
    trace: bool,
    flight_always: bool,
    json: Option<PathBuf>,
    enforce_bounds: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        start: 0,
        threads: 1,
        quick: false,
        double: false,
        reintegrate: false,
        pool: false,
        one_seed: None,
        schedule: None,
        workload: None,
        grammar: false,
        verbose: false,
        trace: false,
        flight_always: false,
        json: None,
        enforce_bounds: false,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: chaos_hunt [--seeds N] [--start N] [--threads N] [--quick] [--double] \
             [--reintegrate] [--pool] [--seed N [--schedule \"...\"]] \
             [--workload download|reqresp|commit-stream] [--grammar] [--verbose] [--trace] \
             [--flight-always] [--json PATH] [--enforce-bounds]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        let num = |name: &str, v: String| {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name}: {v:?} is not a number")))
        };
        match a.as_str() {
            "--seeds" => args.seeds = num("--seeds", val("--seeds")),
            "--start" => args.start = num("--start", val("--start")),
            "--threads" => args.threads = num("--threads", val("--threads")) as usize,
            "--quick" => args.quick = true,
            "--double" => args.double = true,
            "--reintegrate" => args.reintegrate = true,
            "--pool" => args.pool = true,
            "--seed" => args.one_seed = Some(num("--seed", val("--seed"))),
            "--schedule" => args.schedule = Some(val("--schedule")),
            "--workload" => {
                let v = val("--workload");
                args.workload = Some(
                    v.parse()
                        .unwrap_or_else(|e| die(&format!("--workload: {e}"))),
                );
            }
            "--grammar" => args.grammar = true,
            "--verbose" => args.verbose = true,
            "--trace" => args.trace = true,
            "--flight-always" => args.flight_always = true,
            "--json" => args.json = Some(PathBuf::from(val("--json"))),
            "--enforce-bounds" => args.enforce_bounds = true,
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut opts = if args.quick {
        ChaosOptions::quick()
    } else {
        ChaosOptions::default()
    };
    opts.trace = args.trace;
    opts.flight_always = args.flight_always;
    opts.reintegrate = args.reintegrate;
    if let Some(w) = args.workload {
        opts.workload = w;
    }
    let mut coverage = GrammarCoverage::default();

    // Single-case mode: replay one seed (and optionally a pasted
    // schedule) with full detail.
    if args.one_seed.is_some() || args.schedule.is_some() {
        let seed = args.one_seed.unwrap_or(0);
        let schedule = match &args.schedule {
            Some(s) => s.parse::<FaultSchedule>().unwrap_or_else(|e| {
                eprintln!("--schedule: {e}");
                std::process::exit(2);
            }),
            None if args.pool => FaultSchedule::generate_pool(seed),
            None if args.reintegrate => FaultSchedule::generate_reintegrate(seed),
            None if args.double => FaultSchedule::generate_double(seed),
            None => FaultSchedule::generate(seed),
        };
        println!("seed {seed}: {schedule}");
        if args.pool {
            let report = run_pool_case(seed, &schedule, &opts);
            println!("outcome: {}", report.outcome);
            println!("client: {:?}", report.client);
            println!(
                "active at end: {:?}, final ranks: {:?}",
                report.active_at_end, report.final_ranks
            );
            for (at, what) in &report.faults {
                println!("  fault @ {at}: {what}");
            }
            for (i, events) in report.member_events.iter().enumerate() {
                for e in events {
                    println!("  rank{i}: {e}");
                }
            }
            for (i, tl) in takeover_timelines(&report.member_events, &report.faults, |at| {
                report.stall_window.filter(|&(ws, we)| {
                    at >= ws && at <= we + simnet::time::SimDuration::from_secs(1)
                })
            }) {
                if let Some(b) = tl.breakdown() {
                    println!("takeover by rank{i} (stall {}):", b.total);
                    for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
                        println!("  {:<10} {d}", p.name());
                    }
                }
            }
            for v in &report.violations {
                println!("VIOLATION [{}]: {}", v.invariant, v.detail);
            }
            if let Some(snap) = &report.flight {
                dump_flight(
                    &flight_dir_for(args.json.as_deref()),
                    &format!("seed{seed}"),
                    snap,
                );
            }
            return if report.outcome == Outcome::Violation {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            };
        }
        let report = run_chaos_case(seed, &schedule, &opts);
        println!("outcome: {}", report.outcome);
        println!("client: {:?}", report.client);
        for (at, what) in &report.faults {
            println!("  fault @ {at}: {what}");
        }
        for e in &report.primary_events {
            println!("  primary: {e}");
        }
        for e in &report.backup_events {
            println!("  backup:  {e}");
        }
        if let (Some((ws, we)), Some(events)) = (report.stall_window, survivor_events(&report)) {
            let fault_at = latest_fault_before(&report, we);
            if let Some(b) = failover_timeline(ws, we, fault_at, events).breakdown() {
                println!("phase breakdown (stall {}):", b.total);
                for (p, d) in obs::timeline::Phase::ALL.iter().zip(b.durations.iter()) {
                    println!("  {:<10} {d}", p.name());
                }
            }
        }
        for v in &report.violations {
            println!("VIOLATION [{}]: {}", v.invariant, v.detail);
        }
        if let Some(snap) = &report.flight {
            dump_flight(
                &flight_dir_for(args.json.as_deref()),
                &format!("seed{seed}"),
                snap,
            );
        }
        return if report.outcome == Outcome::Violation {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        };
    }

    // Pool sweep mode: no shrinking (pool schedules are already small),
    // print violating seeds with a paste-able replay line instead.
    if args.pool {
        println!(
            "chaos hunt: {} seeds {}..{} (pool{}{})",
            args.seeds,
            args.start,
            args.start + args.seeds,
            if args.quick { ", quick" } else { "" },
            if args.threads > 1 {
                format!(", {} threads", args.threads)
            } else {
                String::new()
            },
        );
        let flight_dir = flight_dir_for(args.json.as_deref());
        let mut flight_dumps: Vec<FlightDumpPaths> = Vec::new();
        let summary = run_pool_sweep(args.seeds, args.start, args.threads, &opts, |case| {
            if args.grammar {
                coverage.add(&case.schedule);
            }
            if args.verbose || case.report.outcome == Outcome::Violation {
                println!(
                    "seed {}: {} — {}",
                    case.seed, case.report.outcome, case.schedule
                );
            }
            if case.report.outcome == Outcome::Violation {
                for v in &case.report.violations {
                    println!("  [{}] {}", v.invariant, v.detail);
                }
                println!(
                    "  replay: cargo run -p sttcp-bench --bin chaos_hunt -- \\\n    \
                     --pool --seed {} --schedule \"{}\"",
                    case.seed, case.schedule
                );
                if let Some(snap) = &case.report.flight {
                    flight_dumps.extend(dump_flight(
                        &flight_dir,
                        &format!("seed{}", case.seed),
                        snap,
                    ));
                }
            }
        });
        println!();
        println!("clean                    {:>6}", summary.clean);
        println!("recovered                {:>6}", summary.recovered);
        println!("detected-unrecoverable   {:>6}", summary.detected);
        println!("service-lost             {:>6}", summary.lost);
        println!("VIOLATIONS               {:>6}", summary.violated.len());
        println!("takeovers                {:>6}", summary.takeovers);
        if args.grammar {
            println!(
                "\naction-grammar coverage across {} schedules:\n",
                args.seeds
            );
            print!("{}", coverage.render_table());
        }
        if !summary.agg.is_empty() {
            println!(
                "\ntakeover phase latencies across {} failovers:\n",
                summary.agg.failovers()
            );
            print!("{}", summary.agg.render_table());
        }
        if let Some(path) = &args.json {
            let mut report = summary.to_report(args.seeds, args.start, args.quick);
            report.set("flight_dumps", dumps_to_json(&flight_dumps));
            if let Err(e) = report.write_to(path) {
                eprintln!("failed to write {}: {e}", path.display());
                return ExitCode::from(1);
            }
            println!("metrics report written to {}", path.display());
        }
        return if summary.violated.is_empty() {
            println!("\nno invariant violations — every takeover quorum-fenced");
            ExitCode::SUCCESS
        } else {
            println!("\nviolating seeds: {:?}", summary.violated);
            ExitCode::from(1)
        };
    }

    // Sweep mode.
    let kind = if args.reintegrate {
        "reintegrate-then-fail"
    } else if args.double {
        "double-fault"
    } else {
        "multi-fault"
    };
    println!(
        "chaos hunt: {} seeds {}..{} ({kind}{}{})",
        args.seeds,
        args.start,
        args.start + args.seeds,
        if args.quick { ", quick" } else { "" },
        if args.threads > 1 {
            format!(", {} threads", args.threads)
        } else {
            String::new()
        },
    );

    let cfg = SweepConfig {
        seeds: args.seeds,
        start: args.start,
        quick: args.quick,
        double: args.double,
        reintegrate: args.reintegrate,
        threads: args.threads,
    };
    let flight_dir = flight_dir_for(args.json.as_deref());
    let mut flight_dumps: Vec<FlightDumpPaths> = Vec::new();
    let summary = run_sweep(&cfg, &opts, |case| {
        if args.grammar {
            coverage.add(&case.schedule);
        }
        if args.verbose || case.report.outcome == Outcome::Violation {
            println!(
                "seed {}: {} — {}",
                case.seed, case.report.outcome, case.schedule
            );
        }
        if case.report.outcome == Outcome::Violation {
            for v in &case.report.violations {
                println!("  [{}] {}", v.invariant, v.detail);
            }
            println!("  shrinking...");
            let shrunk = shrink_schedule(case.seed, &case.schedule, &opts);
            println!(
                "  minimal reproducer ({} actions, {} probe runs):",
                shrunk.schedule.len(),
                shrunk.runs
            );
            println!(
                "    cargo run -p sttcp-bench --bin chaos_hunt -- \\\n      \
                 --seed {} --schedule \"{}\"",
                case.seed, shrunk.schedule
            );
            // The shrunk reproducer's trace is the one worth keeping;
            // fall back to the original run's tail if shrinking lost
            // the violation (it shouldn't — replay is deterministic).
            if let Some(snap) = shrunk.flight.as_ref().or(case.report.flight.as_ref()) {
                flight_dumps.extend(dump_flight(
                    &flight_dir,
                    &format!("seed{}", case.seed),
                    snap,
                ));
            }
        }
    });

    println!();
    println!("clean                    {:>6}", summary.clean);
    println!("recovered                {:>6}", summary.recovered);
    println!("detected-unrecoverable   {:>6}", summary.detected);
    println!("service-lost             {:>6}", summary.lost);
    println!("VIOLATIONS               {:>6}", summary.violated.len());

    if args.grammar {
        println!(
            "\naction-grammar coverage across {} schedules:\n",
            args.seeds
        );
        print!("{}", coverage.render_table());
    }

    if !summary.agg.is_empty() {
        println!(
            "\nfailover phase latencies across {} failovers:\n",
            summary.agg.failovers()
        );
        print!("{}", summary.agg.render_table());
    }

    println!(
        "\ndetection bounds: {} failovers checked, {} exceeded",
        summary.bound_checked,
        summary.bound_violations.len()
    );
    for v in &summary.bound_violations {
        println!(
            "BOUND EXCEEDED: seed {} ({}) detected in {:.1} ms > bound {:.1} ms",
            v.seed,
            v.reason,
            v.measured_us as f64 / 1_000.0,
            v.bound_us as f64 / 1_000.0,
        );
    }

    if let Some(path) = &args.json {
        let mut report = summary.to_report(&cfg, args.enforce_bounds);
        report.set("flight_dumps", dumps_to_json(&flight_dumps));
        if let Err(e) = report.write_to(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!("metrics report written to {}", path.display());
    }

    let bounds_failed = args.enforce_bounds && !summary.bound_violations.is_empty();
    if summary.violated.is_empty() && !bounds_failed {
        println!("\nno invariant violations — every run within its fault envelope");
        ExitCode::SUCCESS
    } else {
        if !summary.violated.is_empty() {
            println!("\nviolating seeds: {:?}", summary.violated);
        }
        if bounds_failed {
            println!("\ndetection bounds exceeded — see BOUND EXCEEDED lines above");
        }
        ExitCode::from(1)
    }
}
