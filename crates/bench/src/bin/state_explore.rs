//! Bounded-exhaustive fault-timing explorer: enumerate (don't sample)
//! every point of the milestone-anchored 1-fault + canonicalized
//! 2-fault lattice, judge each with the invariant checker, and write a
//! schema-versioned coverage report.
//!
//! Run with: `cargo run -p sttcp-bench --bin state_explore --release`
//!
//! Options:
//! * `--workload W`  verifying workload: `download` (default),
//!   `reqresp`, or `commit-stream`
//! * `--threads N`   worker threads for case execution (default 1;
//!   results are bit-identical at any thread count)
//! * `--budget N`    run at most N lattice points, evenly strided
//!   across the lattice (PR-CI smoke; default: the full lattice)
//! * `--seed N`      replay seed for the probe and every point
//!   (default 0)
//! * `--full`        full-size chaos profile (default is the quick
//!   profile — the lattice has tens of thousands of points)
//! * `--json PATH`   write the coverage `MetricsReport` to PATH
//! * `--verbose`     print every violating point as it folds
//!
//! Exit status is 1 if any invariant violation was found.

use std::path::PathBuf;
use std::process::ExitCode;

use sttcp_apps::chaos::{ChaosOptions, ChaosWorkload};
use sttcp_bench::explore::{run_explore, ExploreConfig};
use sttcp_bench::flight::{dumps_to_json, flight_dir_for, write_flight_dump, FlightDumpPaths};

struct Args {
    workload: ChaosWorkload,
    threads: usize,
    budget: Option<usize>,
    seed: u64,
    full: bool,
    json: Option<PathBuf>,
    verbose: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: ChaosWorkload::Download,
        threads: 1,
        budget: None,
        seed: 0,
        full: false,
        json: None,
        verbose: false,
    };
    fn die(msg: &str) -> ! {
        eprintln!("{msg}");
        eprintln!(
            "usage: state_explore [--workload download|reqresp|commit-stream] [--threads N] \
             [--budget N] [--seed N] [--full] [--json PATH] [--verbose]"
        );
        std::process::exit(2);
    }
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        fn num<T: std::str::FromStr>(name: &str, v: String) -> T {
            v.parse()
                .unwrap_or_else(|_| die(&format!("{name}: {v:?} is not a number")))
        }
        match a.as_str() {
            "--workload" => {
                let v = val("--workload");
                args.workload = v
                    .parse()
                    .unwrap_or_else(|e| die(&format!("--workload: {e}")));
            }
            "--threads" => args.threads = num("--threads", val("--threads")),
            "--budget" => args.budget = Some(num("--budget", val("--budget"))),
            "--seed" => args.seed = num("--seed", val("--seed")),
            "--full" => args.full = true,
            "--json" => args.json = Some(PathBuf::from(val("--json"))),
            "--verbose" => args.verbose = true,
            other => die(&format!("unknown option {other:?}")),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let opts = if args.full {
        ChaosOptions::default()
    } else {
        ChaosOptions::quick()
    };
    let cfg = ExploreConfig {
        seed: args.seed,
        workload: args.workload,
        threads: args.threads,
        budget: args.budget,
    };

    println!(
        "state explore: workload {}, seed {}{}{}",
        args.workload,
        args.seed,
        match args.budget {
            Some(b) => format!(", budget {b}"),
            None => ", full lattice".to_string(),
        },
        if args.threads > 1 {
            format!(", {} threads", args.threads)
        } else {
            String::new()
        },
    );

    let flight_dir = flight_dir_for(args.json.as_deref());
    let mut flight_dumps: Vec<FlightDumpPaths> = Vec::new();
    let run = run_explore(&cfg, &opts, |v| {
        println!(
            "VIOLATION class [{}] at lattice point {}: {}",
            v.invariants.join(", "),
            v.index,
            v.schedule
        );
        println!(
            "  shrunk to {} action(s) in {} probe runs:",
            v.shrunk.len(),
            v.shrink_runs
        );
        println!(
            "    cargo run -p sttcp-bench --bin chaos_hunt -- \\\n      \
             --seed {} --schedule \"{}\"",
            args.seed, v.shrunk
        );
        // The shrinker replays the minimized schedule once, so every
        // new violation class ships with its flight-recorder trace.
        if let Some(snap) = &v.flight {
            match write_flight_dump(&flight_dir, &format!("point{}", v.index), snap) {
                Ok(w) => {
                    println!(
                        "  flight dump: {} ({} events; open {} in ui.perfetto.dev)",
                        w.dump.display(),
                        w.events,
                        w.trace.display()
                    );
                    flight_dumps.push(w);
                }
                Err(e) => eprintln!("  failed to write flight dump for point {}: {e}", v.index),
            }
        }
    });

    let lat = &run.lattice;
    println!();
    println!(
        "milestones harvested     {:>7}  (probe run, fault-free)",
        lat.milestones.len()
    );
    println!("anchors                  {:>7}", lat.anchors.len());
    println!("1-fault points           {:>7}", lat.single_points);
    println!(
        "2-fault points           {:>7}  ({} mirrored + {} vacuous pruned)",
        lat.pair_points, lat.mirrored_pruned, lat.vacuous_pruned
    );
    println!("lattice points total     {:>7}", lat.schedules.len());
    println!("points run               {:>7}", run.summary.points);
    println!();
    for (k, n) in &run.summary.outcomes {
        println!("{k:<24} {n:>7}");
    }
    println!(
        "distinct outcomes        {:>7}  (behavior fingerprints)",
        run.summary.fingerprints.len()
    );
    if args.verbose {
        println!("\nverdict-matrix cells hit:");
        for (k, n) in &run.summary.verdict_cells {
            println!("  {k:<22} {n:>7}");
        }
    } else {
        println!(
            "verdict cells hit        {:>7}",
            run.summary.verdict_cells.len()
        );
    }

    if let Some(path) = &args.json {
        let mut report = run.to_report(&cfg);
        report.set("flight_dumps", dumps_to_json(&flight_dumps));
        if let Err(e) = report.write_to(path) {
            eprintln!("failed to write {}: {e}", path.display());
            return ExitCode::from(1);
        }
        println!("coverage report written to {}", path.display());
    }

    if run.summary.violation_points == 0 {
        println!("\nno invariant violations — the explored lattice is clean");
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{} violating point(s) in {} class(es)",
            run.summary.violation_points,
            run.summary.violations.len()
        );
        ExitCode::from(1)
    }
}
