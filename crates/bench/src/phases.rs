//! Failover-phase analysis: event logs → `obs` timelines, detection
//! bounds, and cross-seed aggregation.
//!
//! The `obs` crate defines the protocol-neutral [`Timeline`]; this module
//! owns the ST-TCP-specific glue: mapping [`StTcpEvent`]s to phase marks
//! ([`failover_timeline`]), deriving the configured worst-case detection
//! latency for each [`FailureReason`] ([`detection_bound`]), and
//! aggregating phase breakdowns across many seeds into p50/p99/max tables
//! ([`PhaseAgg`], what `chaos_hunt` prints).

use obs::json::Json;
use obs::metrics::Histogram;
use obs::timeline::{Phase, PhaseBreakdown, PhaseMark, Timeline};

use simnet::time::{SimDuration, SimTime};

use sttcp::config::StTcpConfig;
use sttcp::events::{FailureReason, StTcpEvent};

use crate::report::Table;

/// Builds the phase timeline for one failover from the surviving
/// server's event log.
///
/// `stall_start`/`stall_end` bracket the client-observed stall (from
/// `ClientLog::longest_stall_window`); `fault_at` is the injection time
/// when the harness knows it. Marks are taken as: first heartbeat-link
/// down at or after the fault (symptom), first failure verdict, first
/// STONITH, first takeover. Marks outside the stall window are clamped
/// by [`Timeline::breakdown`], so the phase durations always sum to the
/// client-observed stall exactly.
pub fn failover_timeline(
    stall_start: SimTime,
    stall_end: SimTime,
    fault_at: Option<SimTime>,
    events: &[StTcpEvent],
) -> Timeline {
    let mut tl = Timeline::new(stall_start);
    if let Some(at) = fault_at {
        tl.mark(PhaseMark::FaultInjected, at);
    }
    let symptom_floor = fault_at.unwrap_or(stall_start);
    for e in events {
        match e {
            StTcpEvent::HbLinkDown { at, .. } if *at >= symptom_floor => {
                tl.mark(PhaseMark::SymptomObserved, *at);
            }
            StTcpEvent::PeerDeclaredFailed { at, .. } => {
                // The verdict itself is symptom evidence if no link edge
                // preceded it (e.g. app-lag verdicts with healthy links).
                tl.mark(PhaseMark::Verdict, *at);
            }
            StTcpEvent::StonithIssued { at } => tl.mark(PhaseMark::Stonith, *at),
            StTcpEvent::TookOver { at } => tl.mark(PhaseMark::Takeover, *at),
            StTcpEvent::ReintegrationCompleted { at } => tl.mark(PhaseMark::Reintegrated, *at),
            _ => {}
        }
    }
    tl.finish(stall_end);
    tl
}

/// Builds one failover timeline per takeover across a pool run.
///
/// `member_events` holds every member's event log (indexed by initial
/// rank); `faults` is the world's injection log. For each `TookOver`
/// (in time order across members) the caller maps the takeover time to
/// the client stall window it served via `stall_of` — return `None` to
/// skip takeovers with no measurable stall. Marks are drawn from the
/// taker's own log, restricted to `[fault, window end]` so an earlier
/// failover epoch in the same log cannot pollute the phase attribution.
///
/// Returns `(member index, timeline)` pairs in takeover order.
pub fn takeover_timelines(
    member_events: &[Vec<StTcpEvent>],
    faults: &[(SimTime, String)],
    mut stall_of: impl FnMut(SimTime) -> Option<(SimTime, SimTime)>,
) -> Vec<(usize, Timeline)> {
    let mut takeovers: Vec<(SimTime, usize)> = member_events
        .iter()
        .enumerate()
        .flat_map(|(i, evs)| {
            evs.iter().filter_map(move |e| match e {
                StTcpEvent::TookOver { at } => Some((*at, i)),
                _ => None,
            })
        })
        .collect();
    takeovers.sort();
    let mut out = Vec::new();
    for (at, i) in takeovers {
        let Some((ws, we)) = stall_of(at) else {
            continue;
        };
        let fault_at = faults.iter().map(|(t, _)| *t).filter(|t| *t <= at).max();
        let floor = fault_at.unwrap_or(ws);
        let in_window: Vec<StTcpEvent> = member_events[i]
            .iter()
            .filter(|e| e.at() <= we && e.at() >= floor)
            .cloned()
            .collect();
        out.push((i, failover_timeline(ws, we, fault_at, &in_window)));
    }
    out
}

/// The first failure verdict in an event log, if any.
pub fn first_verdict(events: &[StTcpEvent]) -> Option<(FailureReason, SimTime)> {
    events.iter().find_map(|e| match e {
        StTcpEvent::PeerDeclaredFailed { reason, at } => Some((*reason, *at)),
        _ => None,
    })
}

/// The configured worst-case fault → verdict latency for a detector, or
/// `None` when the detector has no time bound ([`FailureReason::HoldOverflow`]
/// is rate-dependent; a disabled watchdog never fires).
///
/// Each bound is the detector's own timeout plus scheduling slack: the
/// symptom must survive one heartbeat period of staleness and verdicts
/// are only taken on the check timer (two periods: one to arm, one to
/// confirm).
pub fn detection_bound(cfg: &StTcpConfig, reason: FailureReason) -> Option<SimDuration> {
    let slack = cfg.check_period * 2 + cfg.hb_period;
    let net_evidence = {
        // Row 4 verdicts need the IP heartbeat declared dead first, then
        // whichever network-failure evidence accumulates slowest.
        let lag = cfg.net_lag_time + cfg.effective_lag_confirm();
        let pings = cfg.ping_interval * u64::from(cfg.ping_fail_threshold);
        cfg.hb_timeout() + lag.max(pings)
    };
    let base = match reason {
        FailureReason::HbBothLinksDown => cfg.hb_timeout(),
        FailureReason::AppLagBytes | FailureReason::AppLagTime => {
            // Byte lag implies time lag: if the byte detector fired, the
            // time detector was at most this far behind.
            cfg.app_max_lag_time + cfg.effective_lag_confirm()
        }
        FailureReason::NetByteLag | FailureReason::NetAckLag | FailureReason::NetPingFail => {
            net_evidence
        }
        FailureReason::FinMismatchTimeout => cfg.max_delay_fin,
        FailureReason::HoldOverflow => return None,
        FailureReason::WatchdogReport => cfg.watchdog_timeout? + cfg.hb_period,
    };
    Some(base + slack)
}

/// Phase-latency distributions aggregated across many failovers.
#[derive(Debug, Clone)]
pub struct PhaseAgg {
    per_phase: [Histogram; 7],
    detection: Histogram,
    stall: Histogram,
    failovers: u64,
}

impl Default for PhaseAgg {
    fn default() -> PhaseAgg {
        PhaseAgg::new()
    }
}

impl PhaseAgg {
    /// Creates an empty aggregation.
    pub fn new() -> PhaseAgg {
        PhaseAgg {
            per_phase: std::array::from_fn(|_| Histogram::latency_us()),
            detection: Histogram::latency_us(),
            stall: Histogram::latency_us(),
            failovers: 0,
        }
    }

    /// Folds in one failover's breakdown.
    pub fn add(&mut self, b: &PhaseBreakdown) {
        for (h, d) in self.per_phase.iter_mut().zip(b.durations.iter()) {
            h.observe_duration(*d);
        }
        self.detection.observe_duration(b.detection());
        self.stall.observe_duration(b.total);
        self.failovers += 1;
    }

    /// Failovers folded in so far.
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// True when nothing was aggregated.
    pub fn is_empty(&self) -> bool {
        self.failovers == 0
    }

    /// The aggregated detection-latency distribution (fault → verdict).
    pub fn detection(&self) -> &Histogram {
        &self.detection
    }

    /// Renders the per-phase p50/p99/max latency table.
    pub fn render_table(&self) -> String {
        let ms = |us: Option<u64>| match us {
            Some(v) => format!("{:.1}", v as f64 / 1_000.0),
            None => "-".into(),
        };
        let mut t = Table::new(vec!["phase", "p50 (ms)", "p99 (ms)", "max (ms)"]);
        for (p, h) in Phase::ALL.iter().zip(self.per_phase.iter()) {
            t.row(vec![
                p.name().to_string(),
                ms(h.quantile(0.50)),
                ms(h.quantile(0.99)),
                ms(h.max()),
            ]);
        }
        for (name, h) in [("detection", &self.detection), ("total stall", &self.stall)] {
            t.row(vec![
                name.to_string(),
                ms(h.quantile(0.50)),
                ms(h.quantile(0.99)),
                ms(h.max()),
            ]);
        }
        t.render()
    }

    /// The aggregation as a JSON object (one histogram per phase).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("failovers", Json::U64(self.failovers));
        let mut phases = Json::obj();
        for (p, h) in Phase::ALL.iter().zip(self.per_phase.iter()) {
            phases.set(p.name(), h.to_json());
        }
        o.set("phases_us", phases);
        o.set("detection_us", self.detection.to_json());
        o.set("stall_us", self.stall.to_json());
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn crash_events() -> Vec<StTcpEvent> {
        use sttcp::events::HbLink;
        vec![
            StTcpEvent::HbLinkDown {
                link: HbLink::Ip,
                at: t(1_450),
            },
            StTcpEvent::PeerDeclaredFailed {
                reason: FailureReason::HbBothLinksDown,
                at: t(1_600),
            },
            StTcpEvent::StonithIssued { at: t(1_600) },
            StTcpEvent::TookOver { at: t(1_650) },
        ]
    }

    #[test]
    fn timeline_marks_follow_the_event_log() {
        let tl = failover_timeline(t(980), t(1_700), Some(t(1_000)), &crash_events());
        let b = tl.breakdown().unwrap();
        assert_eq!(b.total, SimDuration::from_millis(720));
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        assert_eq!(sum, b.total);
        assert_eq!(b.get(Phase::Symptom), SimDuration::from_millis(450));
        assert_eq!(b.get(Phase::Diagnosis), SimDuration::from_millis(150));
        assert_eq!(b.detection(), SimDuration::from_millis(600));
        assert_eq!(b.get(Phase::Takeover), SimDuration::from_millis(50));
        assert_eq!(b.get(Phase::Restart), SimDuration::from_millis(50));
    }

    #[test]
    fn hb_both_links_bound_covers_the_default_config() {
        let cfg = StTcpConfig::default();
        let b = detection_bound(&cfg, FailureReason::HbBothLinksDown).unwrap();
        assert!(b >= cfg.hb_timeout());
        // HoldOverflow is rate-dependent: no bound.
        assert_eq!(detection_bound(&cfg, FailureReason::HoldOverflow), None);
        // Watchdog disabled by default: no bound.
        assert_eq!(detection_bound(&cfg, FailureReason::WatchdogReport), None);
    }

    #[test]
    fn agg_quantiles_cover_added_breakdowns() {
        let mut agg = PhaseAgg::new();
        assert!(agg.is_empty());
        for ms in [100u64, 200, 400] {
            let tl = failover_timeline(t(1_000), t(1_000 + ms), Some(t(1_000)), &[]);
            agg.add(&tl.breakdown().unwrap());
        }
        assert_eq!(agg.failovers(), 3);
        let table = agg.render_table();
        assert!(table.contains("restart"), "{table}");
        assert!(table.contains("total stall"), "{table}");
        let j = agg.to_json().to_string();
        assert!(j.contains("\"failovers\":3"));
    }
}
