//! Point-to-point Ethernet links.
//!
//! A link joins two endpoints (node NICs or switch ports) and models, per
//! direction: propagation latency, serialization delay against a bandwidth
//! cap (with FIFO queueing), probabilistic loss, scripted drop windows,
//! frame-predicate filters, and an administrative up/down state. All loss
//! decisions draw from the world's seeded RNG, so runs are reproducible.

use core::fmt;

use crate::frame::EthernetFrame;
use crate::node::{NicId, NodeId};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a link within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub usize);

/// Identifies a switch within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SwitchId(pub usize);

/// One of the two ends of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// A NIC on a node.
    Node {
        /// The node.
        node: NodeId,
        /// The NIC within that node.
        nic: NicId,
    },
    /// A port on a switch.
    Switch {
        /// The switch.
        switch: SwitchId,
        /// The port index within that switch.
        port: usize,
    },
}

/// Which direction a frame travels on a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkDir {
    /// From endpoint `a` toward endpoint `b`.
    AtoB,
    /// From endpoint `b` toward endpoint `a`.
    BtoA,
}

impl LinkDir {
    /// The opposite direction.
    pub fn flip(self) -> LinkDir {
        match self {
            LinkDir::AtoB => LinkDir::BtoA,
            LinkDir::BtoA => LinkDir::AtoB,
        }
    }

    fn index(self) -> usize {
        match self {
            LinkDir::AtoB => 0,
            LinkDir::BtoA => 1,
        }
    }
}

impl fmt::Display for LinkDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkDir::AtoB => write!(f, "a->b"),
            LinkDir::BtoA => write!(f, "b->a"),
        }
    }
}

/// Physical parameters of a link.
#[derive(Debug, Clone, Copy)]
pub struct LinkParams {
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Bandwidth cap in bits per second; `None` means unconstrained.
    pub bandwidth_bps: Option<u64>,
}

impl LinkParams {
    /// A typical switched 100 Mbit/s LAN segment with 50 µs latency —
    /// matches the paper's experimental setup (Figure 2).
    pub fn lan() -> LinkParams {
        LinkParams {
            latency: SimDuration::from_micros(50),
            bandwidth_bps: Some(100_000_000),
        }
    }

    /// An ideal link: zero latency, unconstrained bandwidth. Useful in
    /// unit tests where timing is irrelevant.
    pub fn ideal() -> LinkParams {
        LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: None,
        }
    }

    /// Sets the one-way latency (builder style).
    pub fn with_latency(mut self, latency: SimDuration) -> LinkParams {
        self.latency = latency;
        self
    }

    /// Sets the bandwidth cap (builder style).
    pub fn with_bandwidth(mut self, bps: u64) -> LinkParams {
        self.bandwidth_bps = Some(bps);
        self
    }
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams::lan()
    }
}

/// Per-link delivery counters, useful for overhead measurements (Demo 3)
/// and loss-injection assertions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Frames offered for transmission.
    pub offered: u64,
    /// Frames scheduled for delivery at the far end.
    pub delivered: u64,
    /// Frames dropped by the probabilistic loss model or a drop window.
    pub dropped_loss: u64,
    /// Frames dropped because the link (or an endpoint NIC) was down.
    pub dropped_down: u64,
    /// Payload bytes scheduled for delivery.
    pub bytes_delivered: u64,
    /// Frames delivered with an injected payload bit flip.
    pub corrupted: u64,
    /// Frames transmitted twice by the duplication budget.
    pub duplicated: u64,
    /// Frames delivered out of order by the reordering budget.
    pub reordered: u64,
}

/// A frame predicate used by [`LinkState::set_filter`]-style fault
/// injection: return `true` to drop the frame.
pub type DropFilter = Box<dyn FnMut(&EthernetFrame) -> bool>;

#[derive(Default)]
struct DirState {
    /// Administrative state: a downed direction silently eats frames.
    down: bool,
    /// Probability of dropping each frame.
    loss_prob: f64,
    /// Drop every frame until this time.
    drop_until: SimTime,
    /// Drop the next N frames.
    drop_next: u64,
    /// Flip one payload bit in each of the next N frames.
    corrupt_next: u64,
    /// Transmit each of the next N frames twice.
    dup_next: u64,
    /// Swap each of the next N frames with the frame that follows it.
    reorder_next: u64,
    /// A frame being held back by the reordering budget, with the
    /// arrival time it was originally scheduled for.
    held: Option<(SimTime, EthernetFrame)>,
    /// Per-frame uniform delivery jitter bound in microseconds (0 = off).
    jitter_max_us: u64,
    /// Serialization queue: time the transmitter is busy until.
    busy_until: SimTime,
    /// Optional targeted drop filter.
    filter: Option<DropFilter>,
}

impl fmt::Debug for DirState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DirState")
            .field("down", &self.down)
            .field("loss_prob", &self.loss_prob)
            .field("drop_until", &self.drop_until)
            .field("drop_next", &self.drop_next)
            .field("corrupt_next", &self.corrupt_next)
            .field("dup_next", &self.dup_next)
            .field("reorder_next", &self.reorder_next)
            .field("has_held", &self.held.is_some())
            .field("jitter_max_us", &self.jitter_max_us)
            .field("busy_until", &self.busy_until)
            .field("has_filter", &self.filter.is_some())
            .finish()
    }
}

/// The simulator-internal state of one link.
#[derive(Debug)]
pub struct LinkState {
    /// Endpoint `a`.
    pub a: Endpoint,
    /// Endpoint `b`.
    pub b: Endpoint,
    params: LinkParams,
    dirs: [DirState; 2],
    stats: [LinkStats; 2],
}

/// The outcome of offering a frame to a link for transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxOutcome {
    /// The frame will arrive at the far end at the given time.
    Deliver(SimTime),
    /// The frame was dropped (loss, filter, window, or link down).
    Dropped,
    /// The frame was held back by the reordering budget; it will be
    /// released behind the next frame offered in this direction. If no
    /// further frame is offered, the hold degrades into a single-frame
    /// loss (retransmission or the next heartbeat releases it in
    /// practice).
    Held,
    /// The offered frame arrives at `at`, and a previously held frame is
    /// released behind it — the pair arrives in swapped order.
    DeliverAndRelease {
        /// Arrival time of the frame just offered.
        at: SimTime,
        /// Arrival time and contents of the held frame now released.
        released: (SimTime, EthernetFrame),
    },
}

impl LinkState {
    pub(crate) fn new(a: Endpoint, b: Endpoint, params: LinkParams) -> LinkState {
        LinkState {
            a,
            b,
            params,
            dirs: Default::default(),
            stats: Default::default(),
        }
    }

    /// The endpoint a frame travelling in `dir` arrives at.
    pub fn dest(&self, dir: LinkDir) -> Endpoint {
        match dir {
            LinkDir::AtoB => self.b,
            LinkDir::BtoA => self.a,
        }
    }

    /// The direction for frames originating at `from`.
    ///
    /// Returns `None` when `from` is not an endpoint of this link.
    pub fn dir_from(&self, from: Endpoint) -> Option<LinkDir> {
        if self.a == from {
            Some(LinkDir::AtoB)
        } else if self.b == from {
            Some(LinkDir::BtoA)
        } else {
            None
        }
    }

    /// The physical parameters this link was created with.
    pub fn params(&self) -> LinkParams {
        self.params
    }

    /// Delivery counters for `dir`.
    pub fn stats(&self, dir: LinkDir) -> LinkStats {
        self.stats[dir.index()]
    }

    /// True if the given direction (or the whole link) is administratively
    /// down.
    pub fn is_down(&self, dir: LinkDir) -> bool {
        self.dirs[dir.index()].down
    }

    /// Administratively downs both directions (cable cut).
    pub fn set_down(&mut self, down: bool) {
        for d in &mut self.dirs {
            d.down = down;
        }
    }

    /// Administratively downs one direction only.
    pub fn set_dir_down(&mut self, dir: LinkDir, down: bool) {
        self.dirs[dir.index()].down = down;
    }

    /// Sets the per-frame loss probability for `dir`.
    pub fn set_loss(&mut self, dir: LinkDir, prob: f64) {
        self.dirs[dir.index()].loss_prob = prob;
    }

    /// Drops every frame in `dir` until `until`.
    pub fn set_drop_window(&mut self, dir: LinkDir, until: SimTime) {
        self.dirs[dir.index()].drop_until = until;
    }

    /// Drops the next `n` frames in `dir`.
    pub fn set_drop_next(&mut self, dir: LinkDir, n: u64) {
        self.dirs[dir.index()].drop_next = n;
    }

    /// Flips one payload bit in each of the next `n` frames in `dir`
    /// (electrical noise; the corrupted frame still arrives).
    pub fn set_corrupt_next(&mut self, dir: LinkDir, n: u64) {
        self.dirs[dir.index()].corrupt_next = n;
    }

    /// Consumes one unit of the corruption budget for `dir`, returning
    /// whether the caller should corrupt the frame it is about to
    /// transmit. The world calls this before [`LinkState::transmit`].
    pub fn consume_corrupt(&mut self, dir: LinkDir) -> bool {
        let i = dir.index();
        if self.dirs[i].corrupt_next > 0 {
            self.dirs[i].corrupt_next -= 1;
            self.stats[i].corrupted += 1;
            true
        } else {
            false
        }
    }

    /// Transmits each of the next `n` frames in `dir` twice (a flapping
    /// switch port or a mis-mirrored segment; TCP and the checksummed
    /// control formats must absorb exact duplicates).
    pub fn set_dup_next(&mut self, dir: LinkDir, n: u64) {
        self.dirs[dir.index()].dup_next = n;
    }

    /// Consumes one unit of the duplication budget for `dir`, returning
    /// whether the caller should transmit the frame it is about to offer
    /// twice. The world calls this before [`LinkState::transmit`].
    pub fn consume_dup(&mut self, dir: LinkDir) -> bool {
        let i = dir.index();
        if self.dirs[i].dup_next > 0 {
            self.dirs[i].dup_next -= 1;
            self.stats[i].duplicated += 1;
            true
        } else {
            false
        }
    }

    /// Swaps each of the next `n` frames in `dir` with the frame that
    /// follows it: the budgeted frame is held back and released just
    /// behind its successor.
    pub fn set_reorder_next(&mut self, dir: LinkDir, n: u64) {
        self.dirs[dir.index()].reorder_next = n;
    }

    /// Sets a per-frame uniform delivery jitter bound for `dir`: each
    /// delivered frame's arrival is delayed by a seeded random amount in
    /// `[0, max]`. `SimDuration::ZERO` clears the fault.
    pub fn set_jitter(&mut self, dir: LinkDir, max: SimDuration) {
        self.dirs[dir.index()].jitter_max_us = max.as_micros();
    }

    /// Installs a targeted drop filter for `dir`: frames for which the
    /// filter returns `true` are dropped. Replaces any existing filter.
    pub fn set_filter(&mut self, dir: LinkDir, filter: Option<DropFilter>) {
        self.dirs[dir.index()].filter = filter;
    }

    /// Offers a frame for transmission in `dir` at time `now`.
    ///
    /// Applies, in order: administrative state, drop window, drop-next
    /// budget, targeted filter, probabilistic loss; then computes the
    /// arrival time from FIFO serialization against the bandwidth cap plus
    /// propagation latency.
    pub fn transmit(
        &mut self,
        now: SimTime,
        dir: LinkDir,
        frame: &EthernetFrame,
        rng: &mut SimRng,
    ) -> TxOutcome {
        let i = dir.index();
        self.stats[i].offered += 1;
        let d = &mut self.dirs[i];
        if d.down {
            self.stats[i].dropped_down += 1;
            return TxOutcome::Dropped;
        }
        if now < d.drop_until {
            self.stats[i].dropped_loss += 1;
            return TxOutcome::Dropped;
        }
        if d.drop_next > 0 {
            d.drop_next -= 1;
            self.stats[i].dropped_loss += 1;
            return TxOutcome::Dropped;
        }
        if let Some(f) = d.filter.as_mut() {
            if f(frame) {
                self.stats[i].dropped_loss += 1;
                return TxOutcome::Dropped;
            }
        }
        if d.loss_prob > 0.0 && rng.chance(d.loss_prob) {
            self.stats[i].dropped_loss += 1;
            return TxOutcome::Dropped;
        }
        let start = if now > d.busy_until {
            now
        } else {
            d.busy_until
        };
        let ser = match self.params.bandwidth_bps {
            Some(bps) => SimDuration::transmission(frame.wire_len(), bps),
            None => SimDuration::ZERO,
        };
        d.busy_until = start + ser;
        let mut arrival = d.busy_until + self.params.latency;
        if d.jitter_max_us > 0 {
            arrival += SimDuration::from_micros(rng.range_u64(0, d.jitter_max_us + 1));
        }
        if let Some((held_at, held_frame)) = d.held.take() {
            // A held frame rides out just behind the frame that released
            // it, strictly after it, so the pair arrives swapped.
            let release_at = if held_at > arrival {
                held_at
            } else {
                arrival + SimDuration::from_micros(1)
            };
            self.stats[i].delivered += 2;
            self.stats[i].bytes_delivered +=
                frame.payload.len() as u64 + held_frame.payload.len() as u64;
            return TxOutcome::DeliverAndRelease {
                at: arrival,
                released: (release_at, held_frame),
            };
        }
        if d.reorder_next > 0 {
            d.reorder_next -= 1;
            d.held = Some((arrival, frame.clone()));
            self.stats[i].reordered += 1;
            return TxOutcome::Held;
        }
        self.stats[i].delivered += 1;
        self.stats[i].bytes_delivered += frame.payload.len() as u64;
        TxOutcome::Deliver(arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use crate::mac::MacAddr;
    use bytes::Bytes;

    fn ep(n: usize) -> Endpoint {
        Endpoint::Node {
            node: NodeId(n),
            nic: NicId(0),
        }
    }

    fn frame(len: usize) -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::unicast(1),
            MacAddr::unicast(2),
            EtherType::Ipv4,
            Bytes::from(vec![0u8; len]),
        )
    }

    fn link(params: LinkParams) -> LinkState {
        LinkState::new(ep(0), ep(1), params)
    }

    #[test]
    fn ideal_link_delivers_at_latency() {
        let mut l = link(LinkParams::ideal().with_latency(SimDuration::from_micros(100)));
        let mut rng = SimRng::seed_from(1);
        let out = l.transmit(
            SimTime::from_millis(1),
            LinkDir::AtoB,
            &frame(100),
            &mut rng,
        );
        assert_eq!(
            out,
            TxOutcome::Deliver(SimTime::from_millis(1) + SimDuration::from_micros(100))
        );
    }

    #[test]
    fn bandwidth_serialization_queues_fifo() {
        // 1 Mbit/s: a 1000-byte payload frame (1014B wire) takes 8112 µs.
        let mut l = link(LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: Some(1_000_000),
        });
        let mut rng = SimRng::seed_from(1);
        let t0 = SimTime::ZERO;
        let f = frame(1000);
        let ser = SimDuration::transmission(f.wire_len(), 1_000_000);
        let first = l.transmit(t0, LinkDir::AtoB, &f, &mut rng);
        let second = l.transmit(t0, LinkDir::AtoB, &f, &mut rng);
        assert_eq!(first, TxOutcome::Deliver(t0 + ser));
        assert_eq!(second, TxOutcome::Deliver(t0 + ser * 2));
    }

    #[test]
    fn directions_have_independent_queues() {
        let mut l = link(LinkParams {
            latency: SimDuration::ZERO,
            bandwidth_bps: Some(1_000_000),
        });
        let mut rng = SimRng::seed_from(1);
        let f = frame(1000);
        let ser = SimDuration::transmission(f.wire_len(), 1_000_000);
        let _ = l.transmit(SimTime::ZERO, LinkDir::AtoB, &f, &mut rng);
        // The reverse direction is not delayed by forward traffic.
        let rev = l.transmit(SimTime::ZERO, LinkDir::BtoA, &f, &mut rng);
        assert_eq!(rev, TxOutcome::Deliver(SimTime::ZERO + ser));
    }

    #[test]
    fn down_link_drops_and_counts() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_down(true);
        assert_eq!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng),
            TxOutcome::Dropped
        );
        assert_eq!(l.stats(LinkDir::AtoB).dropped_down, 1);
        l.set_down(false);
        assert!(matches!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng),
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn one_direction_down_leaves_other_up() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_dir_down(LinkDir::AtoB, true);
        assert_eq!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng),
            TxOutcome::Dropped
        );
        assert!(matches!(
            l.transmit(SimTime::ZERO, LinkDir::BtoA, &frame(10), &mut rng),
            TxOutcome::Deliver(_)
        ));
        assert!(l.is_down(LinkDir::AtoB));
        assert!(!l.is_down(LinkDir::BtoA));
    }

    #[test]
    fn drop_window_expires() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_drop_window(LinkDir::AtoB, SimTime::from_millis(10));
        assert_eq!(
            l.transmit(SimTime::from_millis(5), LinkDir::AtoB, &frame(1), &mut rng),
            TxOutcome::Dropped
        );
        assert!(matches!(
            l.transmit(SimTime::from_millis(10), LinkDir::AtoB, &frame(1), &mut rng),
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn drop_next_budget_decrements() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_drop_next(LinkDir::AtoB, 2);
        for _ in 0..2 {
            assert_eq!(
                l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(1), &mut rng),
                TxOutcome::Dropped
            );
        }
        assert!(matches!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(1), &mut rng),
            TxOutcome::Deliver(_)
        ));
        assert_eq!(l.stats(LinkDir::AtoB).dropped_loss, 2);
    }

    #[test]
    fn filter_drops_matching_frames() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_filter(
            LinkDir::AtoB,
            Some(Box::new(|f: &EthernetFrame| f.payload.len() > 50)),
        );
        assert!(matches!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng),
            TxOutcome::Deliver(_)
        ));
        assert_eq!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(100), &mut rng),
            TxOutcome::Dropped
        );
        l.set_filter(LinkDir::AtoB, None);
        assert!(matches!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(100), &mut rng),
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn probabilistic_loss_is_seeded() {
        let run = |seed: u64| -> Vec<bool> {
            let mut l = link(LinkParams::ideal());
            l.set_loss(LinkDir::AtoB, 0.5);
            let mut rng = SimRng::seed_from(seed);
            (0..64)
                .map(|_| {
                    matches!(
                        l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(1), &mut rng),
                        TxOutcome::Deliver(_)
                    )
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn dir_from_and_dest() {
        let l = link(LinkParams::ideal());
        assert_eq!(l.dir_from(ep(0)), Some(LinkDir::AtoB));
        assert_eq!(l.dir_from(ep(1)), Some(LinkDir::BtoA));
        assert_eq!(l.dir_from(ep(2)), None);
        assert_eq!(l.dest(LinkDir::AtoB), ep(1));
        assert_eq!(l.dest(LinkDir::BtoA), ep(0));
        assert_eq!(LinkDir::AtoB.flip(), LinkDir::BtoA);
    }

    #[test]
    fn dup_budget_decrements_and_counts() {
        let mut l = link(LinkParams::ideal());
        l.set_dup_next(LinkDir::AtoB, 2);
        assert!(l.consume_dup(LinkDir::AtoB));
        assert!(l.consume_dup(LinkDir::AtoB));
        assert!(!l.consume_dup(LinkDir::AtoB));
        assert!(!l.consume_dup(LinkDir::BtoA));
        assert_eq!(l.stats(LinkDir::AtoB).duplicated, 2);
    }

    #[test]
    fn reorder_swaps_adjacent_frames() {
        let mut l = link(LinkParams::ideal().with_latency(SimDuration::from_micros(10)));
        let mut rng = SimRng::seed_from(1);
        l.set_reorder_next(LinkDir::AtoB, 1);
        let first = l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng);
        assert_eq!(first, TxOutcome::Held);
        let second = l.transmit(SimTime::from_micros(5), LinkDir::AtoB, &frame(20), &mut rng);
        match second {
            TxOutcome::DeliverAndRelease { at, released } => {
                assert!(released.0 > at, "held frame must land after its successor");
                assert_eq!(released.1.payload.len(), 10);
            }
            other => panic!("expected DeliverAndRelease, got {other:?}"),
        }
        assert_eq!(l.stats(LinkDir::AtoB).reordered, 1);
        assert_eq!(l.stats(LinkDir::AtoB).delivered, 2);
        // Budget exhausted: the next frame flows through normally.
        assert!(matches!(
            l.transmit(SimTime::from_micros(9), LinkDir::AtoB, &frame(1), &mut rng),
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn unreleased_held_frame_is_a_single_loss() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_reorder_next(LinkDir::AtoB, 1);
        assert_eq!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(10), &mut rng),
            TxOutcome::Held
        );
        // No successor ever arrives: offered 1, delivered 0.
        let s = l.stats(LinkDir::AtoB);
        assert_eq!(s.offered, 1);
        assert_eq!(s.delivered, 0);
    }

    #[test]
    fn jitter_delays_within_bound_and_is_seeded() {
        let run = |seed: u64| -> Vec<u64> {
            let mut l = link(LinkParams::ideal());
            l.set_jitter(LinkDir::AtoB, SimDuration::from_micros(100));
            let mut rng = SimRng::seed_from(seed);
            (0..32)
                .map(
                    |_| match l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(1), &mut rng) {
                        TxOutcome::Deliver(at) => at.as_micros(),
                        other => panic!("unexpected outcome {other:?}"),
                    },
                )
                .collect()
        };
        let a = run(42);
        assert!(a.iter().all(|&t| t <= 100));
        assert!(a.iter().any(|&t| t > 0));
        assert_eq!(a, run(42));
        assert_ne!(a, run(43));
    }

    #[test]
    fn zero_jitter_clears_the_fault() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        l.set_jitter(LinkDir::AtoB, SimDuration::from_micros(50));
        l.set_jitter(LinkDir::AtoB, SimDuration::ZERO);
        assert_eq!(
            l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(1), &mut rng),
            TxOutcome::Deliver(SimTime::ZERO)
        );
    }

    #[test]
    fn stats_track_bytes() {
        let mut l = link(LinkParams::ideal());
        let mut rng = SimRng::seed_from(1);
        let _ = l.transmit(SimTime::ZERO, LinkDir::AtoB, &frame(100), &mut rng);
        let s = l.stats(LinkDir::AtoB);
        assert_eq!(s.offered, 1);
        assert_eq!(s.delivered, 1);
        assert_eq!(s.bytes_delivered, 100);
    }
}
