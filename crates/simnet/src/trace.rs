//! Simulation tracing.
//!
//! Nodes and the fault-injection layer record human-readable trace lines
//! with timestamps. Tests assert on them ("backup detected HB failure on
//! both links"), and the experiment harness prints them to narrate demos.
//!
//! The log is unbounded by default (tests want every line), but long
//! soak and chaos sweeps cap it with [`Trace::set_capacity`]: the trace
//! becomes a ring buffer that keeps the newest records and counts what
//! it evicted, so a 2000-seed hunt doesn't accumulate gigabytes of
//! `String`s. The bounded behaviour is [`crate::ring::Ring`] — the
//! same abstraction the flight recorder uses.

use core::fmt;

use crate::node::NodeId;
use crate::ring::Ring;
use crate::time::SimTime;

/// One recorded trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the line was recorded.
    pub time: SimTime,
    /// The node that recorded it, if any (fault injection records `None`).
    pub node: Option<NodeId>,
    /// The message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {}] {}", self.time, n, self.message),
            None => write!(f, "[{} world] {}", self.time, self.message),
        }
    }
}

/// An append-only log of [`TraceRecord`]s, optionally bounded — a thin
/// domain wrapper over [`Ring`].
#[derive(Debug, Default)]
pub struct Trace {
    ring: Ring<TraceRecord>,
}

impl Trace {
    /// Creates an empty, unbounded trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates an empty trace bounded to `capacity` records.
    pub fn with_capacity(capacity: usize) -> Trace {
        Trace {
            ring: Ring::bounded(capacity),
        }
    }

    /// Bounds (or unbounds, with `None`) the trace; excess oldest records
    /// are evicted immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.ring.set_capacity(capacity);
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.ring.capacity()
    }

    /// Records evicted so far to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped()
    }

    /// Appends a record, evicting the oldest if the trace is at its
    /// bound.
    pub fn record(&mut self, time: SimTime, node: Option<NodeId>, message: impl Into<String>) {
        self.ring.push(TraceRecord {
            time,
            node,
            message: message.into(),
        });
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> + '_ {
        self.ring.iter()
    }

    /// Iterates over records whose message contains `needle`.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.ring.iter().filter(move |r| r.message.contains(needle))
    }

    /// The first retained record whose message contains `needle`, if any.
    pub fn first_containing(&self, needle: &str) -> Option<&TraceRecord> {
        self.ring.iter().find(|r| r.message.contains(needle))
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True if no records are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(SimTime::from_millis(1), Some(NodeId(0)), "hello world");
        t.record(SimTime::from_millis(2), None, "fault injected");
        assert_eq!(t.len(), 2);
        assert_eq!(t.containing("fault").count(), 1);
        assert_eq!(
            t.first_containing("hello").unwrap().time,
            SimTime::from_millis(1)
        );
        assert!(t.first_containing("nope").is_none());
    }

    #[test]
    fn display_includes_time_and_origin() {
        let r = TraceRecord {
            time: SimTime::from_millis(5),
            node: Some(NodeId(2)),
            message: "msg".into(),
        };
        let s = r.to_string();
        assert!(s.contains("n2"));
        assert!(s.contains("msg"));
        let w = TraceRecord {
            time: SimTime::ZERO,
            node: None,
            message: "m".into(),
        };
        assert!(w.to_string().contains("world"));
    }

    #[test]
    fn bounded_trace_keeps_newest_and_counts_evictions() {
        let mut t = Trace::with_capacity(3);
        for i in 0..10u64 {
            t.record(SimTime::from_millis(i), None, format!("line {i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 7);
        let msgs: Vec<&str> = t.records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["line 7", "line 8", "line 9"]);
        assert!(t.first_containing("line 0").is_none());
        assert!(t.first_containing("line 9").is_some());
    }

    #[test]
    fn capacity_can_be_tightened_and_removed_live() {
        let mut t = Trace::new();
        for i in 0..5u64 {
            t.record(SimTime::from_millis(i), None, format!("m{i}"));
        }
        t.set_capacity(Some(2));
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.capacity(), Some(2));
        t.set_capacity(None);
        for i in 5..20u64 {
            t.record(SimTime::from_millis(i), None, format!("m{i}"));
        }
        assert_eq!(t.len(), 17);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut t = Trace::with_capacity(0);
        t.record(SimTime::ZERO, None, "gone");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }
}
