//! Simulation tracing.
//!
//! Nodes and the fault-injection layer record human-readable trace lines
//! with timestamps. Tests assert on them ("backup detected HB failure on
//! both links"), and the experiment harness prints them to narrate demos.

use core::fmt;

use crate::node::NodeId;
use crate::time::SimTime;

/// One recorded trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Virtual time at which the line was recorded.
    pub time: SimTime,
    /// The node that recorded it, if any (fault injection records `None`).
    pub node: Option<NodeId>,
    /// The message.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.node {
            Some(n) => write!(f, "[{} {}] {}", self.time, n, self.message),
            None => write!(f, "[{} world] {}", self.time, self.message),
        }
    }
}

/// An append-only log of [`TraceRecord`]s.
#[derive(Debug, Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Appends a record.
    pub fn record(&mut self, time: SimTime, node: Option<NodeId>, message: impl Into<String>) {
        self.records.push(TraceRecord {
            time,
            node,
            message: message.into(),
        });
    }

    /// All records in insertion order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Iterates over records whose message contains `needle`.
    pub fn containing<'a>(&'a self, needle: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records
            .iter()
            .filter(move |r| r.message.contains(needle))
    }

    /// The first record whose message contains `needle`, if any.
    pub fn first_containing(&self, needle: &str) -> Option<&TraceRecord> {
        self.records.iter().find(|r| r.message.contains(needle))
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if no records have been made.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = Trace::new();
        assert!(t.is_empty());
        t.record(SimTime::from_millis(1), Some(NodeId(0)), "hello world");
        t.record(SimTime::from_millis(2), None, "fault injected");
        assert_eq!(t.len(), 2);
        assert_eq!(t.containing("fault").count(), 1);
        assert_eq!(
            t.first_containing("hello").unwrap().time,
            SimTime::from_millis(1)
        );
        assert!(t.first_containing("nope").is_none());
    }

    #[test]
    fn display_includes_time_and_origin() {
        let r = TraceRecord {
            time: SimTime::from_millis(5),
            node: Some(NodeId(2)),
            message: "msg".into(),
        };
        let s = r.to_string();
        assert!(s.contains("n2"));
        assert!(s.contains("msg"));
        let w = TraceRecord {
            time: SimTime::ZERO,
            node: None,
            message: "m".into(),
        };
        assert!(w.to_string().contains("world"));
    }
}
