//! Ethernet frames.
//!
//! Frames are the unit of delivery on simulated links and through the
//! switch. They carry a real binary encoding (14-byte Ethernet II header)
//! so that parsing and emission costs are measurable and so property tests
//! can exercise wire-format round-trips.

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;

use crate::mac::MacAddr;

/// The EtherType of a frame's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EtherType {
    /// IPv4 (0x0800). Carries [`crate::ip::Ipv4Packet`]s.
    Ipv4,
    /// Simulation-private heartbeat channel (0x88b5, an IEEE "local
    /// experimental" EtherType). The ST-TCP heartbeat's *IP-link* copy is
    /// carried over IPv4/UDP-lite; this type exists for raw L2 tooling and
    /// tests.
    Experimental,
    /// Any other EtherType, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Experimental => 0x88b5,
            EtherType::Other(v) => v,
        }
    }

    /// Decodes a 16-bit wire value.
    pub fn from_u16(v: u16) -> EtherType {
        match v {
            0x0800 => EtherType::Ipv4,
            0x88b5 => EtherType::Experimental,
            other => EtherType::Other(other),
        }
    }
}

impl fmt::Display for EtherType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EtherType::Ipv4 => write!(f, "ipv4"),
            EtherType::Experimental => write!(f, "exp"),
            EtherType::Other(v) => write!(f, "0x{v:04x}"),
        }
    }
}

/// An Ethernet II frame.
///
/// # Examples
///
/// ```
/// use simnet::frame::{EthernetFrame, EtherType};
/// use simnet::mac::MacAddr;
/// use bytes::Bytes;
///
/// let f = EthernetFrame::new(
///     MacAddr::unicast(1),
///     MacAddr::multicast(9),
///     EtherType::Ipv4,
///     Bytes::from_static(b"payload"),
/// );
/// let wire = f.encode();
/// let back = EthernetFrame::decode(&wire)?;
/// assert_eq!(back, f);
/// # Ok::<(), simnet::frame::FrameDecodeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EthernetFrame {
    /// Source MAC address.
    pub src: MacAddr,
    /// Destination MAC address (may be multicast/broadcast).
    pub dst: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Payload bytes (not including the 14-byte header).
    pub payload: Bytes,
}

/// Error returned when decoding a frame from wire bytes fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameDecodeError {
    /// Fewer than 14 bytes of input.
    Truncated,
}

impl fmt::Display for FrameDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameDecodeError::Truncated => write!(f, "frame shorter than ethernet header"),
        }
    }
}

impl std::error::Error for FrameDecodeError {}

/// Length of the Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

impl EthernetFrame {
    /// Creates a frame.
    pub fn new(src: MacAddr, dst: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EthernetFrame {
            src,
            dst,
            ethertype,
            payload,
        }
    }

    /// Total on-wire length: header plus payload.
    pub fn wire_len(&self) -> usize {
        ETHERNET_HEADER_LEN + self.payload.len()
    }

    /// Serializes the frame to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&self.dst.octets());
        buf.put_slice(&self.src.octets());
        buf.put_u16(self.ethertype.to_u16());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a frame from wire bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameDecodeError::Truncated`] if `wire` is shorter than the
    /// 14-byte Ethernet header.
    pub fn decode(wire: &[u8]) -> Result<EthernetFrame, FrameDecodeError> {
        if wire.len() < ETHERNET_HEADER_LEN {
            return Err(FrameDecodeError::Truncated);
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&wire[0..6]);
        src.copy_from_slice(&wire[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([wire[12], wire[13]]));
        Ok(EthernetFrame {
            src: MacAddr(src),
            dst: MacAddr(dst),
            ethertype,
            payload: Bytes::copy_from_slice(&wire[ETHERNET_HEADER_LEN..]),
        })
    }
}

impl fmt::Display for EthernetFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} -> {} {} {}B]",
            self.src,
            self.dst,
            self.ethertype,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EthernetFrame {
        EthernetFrame::new(
            MacAddr::unicast(3),
            MacAddr::multicast(1),
            EtherType::Ipv4,
            Bytes::from_static(b"hello world"),
        )
    }

    #[test]
    fn encode_decode_roundtrip() {
        let f = sample();
        assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = EthernetFrame::new(
            MacAddr::unicast(1),
            MacAddr::unicast(2),
            EtherType::Experimental,
            Bytes::new(),
        );
        let wire = f.encode();
        assert_eq!(wire.len(), ETHERNET_HEADER_LEN);
        assert_eq!(EthernetFrame::decode(&wire).unwrap(), f);
    }

    #[test]
    fn decode_truncated_fails() {
        assert_eq!(
            EthernetFrame::decode(&[0u8; 13]),
            Err(FrameDecodeError::Truncated)
        );
        assert!(EthernetFrame::decode(&[0u8; 14]).is_ok());
    }

    #[test]
    fn wire_len_matches_encode() {
        let f = sample();
        assert_eq!(f.wire_len(), f.encode().len());
    }

    #[test]
    fn ethertype_wire_values() {
        assert_eq!(EtherType::Ipv4.to_u16(), 0x0800);
        assert_eq!(EtherType::from_u16(0x0800), EtherType::Ipv4);
        assert_eq!(EtherType::from_u16(0x88b5), EtherType::Experimental);
        assert_eq!(EtherType::from_u16(0x1234), EtherType::Other(0x1234));
        assert_eq!(EtherType::Other(0x1234).to_u16(), 0x1234);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample().to_string().is_empty());
        assert_eq!(EtherType::Ipv4.to_string(), "ipv4");
        assert_eq!(EtherType::Other(0xbeef).to_string(), "0xbeef");
    }
}
