//! Deterministic randomness for the simulation.
//!
//! All stochastic behaviour in a simulation — packet loss draws, workload
//! generation, jitter — flows through a single [`SimRng`] seeded at world
//! construction. Re-running a world with the same seed and the same
//! scripted inputs reproduces the exact same event sequence.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded, deterministic random number generator.
///
/// Thin wrapper over [`rand::rngs::StdRng`] exposing only the operations
/// the simulator needs, so the rest of the codebase does not depend on
/// `rand` trait imports.
///
/// # Examples
///
/// ```
/// use simnet::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Draws a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        self.inner.gen()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Draws a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.inner.gen_range(0..n)
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill(buf);
    }

    /// Forks an independent child generator whose stream is a deterministic
    /// function of this generator's state. Useful for giving a subsystem
    /// its own stream so that adding draws in one subsystem does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..50 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
            assert!(!r.chance(-0.5));
            assert!(r.chance(1.5));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.index(3);
            assert!(i < 3);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Parent streams stay in lockstep after forking.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = SimRng::seed_from(13);
        let mut buf = [0u8; 32];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
