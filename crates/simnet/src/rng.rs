//! Deterministic randomness for the simulation.
//!
//! All stochastic behaviour in a simulation — packet loss draws, workload
//! generation, jitter — flows through a single [`SimRng`] seeded at world
//! construction. Re-running a world with the same seed and the same
//! scripted inputs reproduces the exact same event sequence.

/// A seeded, deterministic random number generator.
///
/// Implemented as xoshiro256** seeded through SplitMix64, with no external
/// dependencies, so the stream is stable across toolchains and the rest of
/// the codebase does not depend on `rand` trait imports.
///
/// # Examples
///
/// ```
/// use simnet::rng::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut x = seed;
        SimRng {
            s: [
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
                splitmix64(&mut x),
            ],
        }
    }

    /// Draws a uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Draws a uniformly random `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            // 53 uniform mantissa bits -> [0, 1).
            let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            u < p
        }
    }

    /// Draws a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift rejection (Lemire).
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            let l = m as u64;
            if l >= span || l >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Draws a uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        self.range_u64(0, n as u64) as usize
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Forks an independent child generator whose stream is a deterministic
    /// function of this generator's state. Useful for giving a subsystem
    /// its own stream so that adding draws in one subsystem does not
    /// perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..50 {
            assert!(!r.chance(0.0));
            assert!(r.chance(1.0));
            assert!(!r.chance(-0.5));
            assert!(r.chance(1.5));
        }
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SimRng::seed_from(5);
        for _ in 0..1_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.index(3);
            assert!(i < 3);
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = SimRng::seed_from(17);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.range_u64(0, 8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen = {seen:?}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::seed_from(0).range_u64(5, 5);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::seed_from(9);
        let mut b = SimRng::seed_from(9);
        let mut fa = a.fork();
        let mut fb = b.fork();
        assert_eq!(fa.next_u64(), fb.next_u64());
        // Parent streams stay in lockstep after forking.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fill_bytes_fills() {
        let mut r = SimRng::seed_from(13);
        let mut buf = [0u8; 32];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
