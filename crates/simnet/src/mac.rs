//! Ethernet MAC addresses.
//!
//! ST-TCP's client-side transparency trick relies on a **multicast**
//! Ethernet address: the gateway's static ARP entry maps the service IP to
//! a multicast MAC (the paper's `multiEA`), so the switch delivers every
//! client frame to both the primary and the backup. This module models MAC
//! addresses including the multicast (group) bit semantics.

use core::fmt;
use core::str::FromStr;

/// A 48-bit Ethernet MAC address.
///
/// # Examples
///
/// ```
/// use simnet::mac::MacAddr;
///
/// let m: MacAddr = "02:00:00:00:00:01".parse()?;
/// assert!(!m.is_multicast());
/// assert!(MacAddr::BROADCAST.is_multicast());
/// # Ok::<(), simnet::mac::ParseMacError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

/// Error returned when parsing a textual MAC address fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as a "not yet assigned" placeholder.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates a locally-administered unicast address from a small index.
    ///
    /// Handy for assigning NIC addresses in test topologies: index `n`
    /// becomes `02:00:00:xx:xx:xx`.
    pub const fn unicast(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x02, 0x00, b[1], b[2], b[3], 0x00])
    }

    /// Creates a multicast (group-bit set) address from a small index:
    /// `03:00:00:xx:xx:xx`. This is the kind of address the paper's
    /// `multiEA` uses so the switch floods client frames to both servers.
    pub const fn multicast(n: u32) -> MacAddr {
        let b = n.to_be_bytes();
        MacAddr([0x03, 0x00, b[1], b[2], b[3], 0x00])
    }

    /// True if the group (multicast) bit — the least-significant bit of the
    /// first octet — is set. Broadcast is a special case of multicast.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// True if this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == MacAddr::BROADCAST
    }

    /// True if this is a unicast address (group bit clear).
    pub const fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// The raw six octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(ParseMacError)?;
            if part.len() != 2 {
                return Err(ParseMacError);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unicast_constructor_is_unicast() {
        for n in [0u32, 1, 77, 0x00ff_ffff] {
            let m = MacAddr::unicast(n);
            assert!(m.is_unicast(), "{m} should be unicast");
            assert!(!m.is_broadcast());
        }
    }

    #[test]
    fn multicast_constructor_is_multicast() {
        for n in [0u32, 5, 1000] {
            let m = MacAddr::multicast(n);
            assert!(m.is_multicast(), "{m} should be multicast");
            assert!(!m.is_broadcast());
        }
    }

    #[test]
    fn distinct_indices_distinct_addresses() {
        assert_ne!(MacAddr::unicast(1), MacAddr::unicast(2));
        assert_ne!(MacAddr::multicast(1), MacAddr::multicast(2));
        assert_ne!(MacAddr::unicast(1), MacAddr::multicast(1));
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
    }

    #[test]
    fn display_roundtrip() {
        let m = MacAddr([0x02, 0x1a, 0xff, 0x00, 0x3c, 0x01]);
        let s = m.to_string();
        assert_eq!(s, "02:1a:ff:00:3c:01");
        let parsed: MacAddr = s.parse().unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:00:00".parse::<MacAddr>().is_err());
        assert!("02:00:00:00:00:zz".parse::<MacAddr>().is_err());
        assert!("0200:00:00:00:00".parse::<MacAddr>().is_err());
    }

    #[test]
    fn octets_accessor() {
        let m = MacAddr::unicast(0x0003_0405);
        assert_eq!(m.octets(), m.0);
        let from: MacAddr = [1, 2, 3, 4, 5, 6].into();
        assert_eq!(from.octets(), [1, 2, 3, 4, 5, 6]);
    }
}
