//! Per-host hardware state: NICs, serial ports, and power.
//!
//! Kept separate from node *logic* (the [`crate::node::Node`]
//! implementation) so that hardware failures — NIC down, power cut — can
//! be injected without the logic's cooperation, exactly like the paper's
//! failure model where the OS/application does not get a say in whether
//! its NIC just died.

use crate::link::LinkId;
use crate::mac::MacAddr;
use crate::profile::Component;
use crate::serial::SerialId;

/// Hardware state of one NIC.
#[derive(Debug, Clone)]
pub struct NicState {
    /// The NIC's MAC address.
    pub mac: MacAddr,
    /// Whether the NIC is functioning. A downed NIC neither sends nor
    /// receives.
    pub up: bool,
    /// The link the NIC is cabled to, if any.
    pub link: Option<LinkId>,
}

impl NicState {
    pub(crate) fn new(mac: MacAddr) -> NicState {
        NicState {
            mac,
            up: true,
            link: None,
        }
    }
}

/// Hardware + logic slot for one node, owned by the world.
pub(crate) struct NodeSlot {
    /// Human-readable name for traces ("primary", "client", …).
    pub name: String,
    /// Node logic; `None` only transiently during dispatch.
    pub logic: Option<Box<dyn crate::node::Node>>,
    /// NICs, indexed by [`crate::node::NicId`].
    pub nics: Vec<NicState>,
    /// Serial channels, indexed by [`crate::node::SerialPortId`].
    pub serial_ports: Vec<Option<SerialId>>,
    /// Whether the host has power. A powered-off host receives no events.
    pub powered: bool,
    /// Incremented on every power-off so that timers armed in a previous
    /// power epoch never fire after a reboot.
    pub epoch: u64,
    /// Profiler bucket this node's dispatch time is attributed to
    /// (scenario builders set it; defaults to `Other`).
    pub component: Component,
}

impl NodeSlot {
    pub(crate) fn new(name: String, logic: Box<dyn crate::node::Node>) -> NodeSlot {
        NodeSlot {
            name,
            logic: Some(logic),
            nics: Vec::new(),
            serial_ports: Vec::new(),
            powered: true,
            epoch: 0,
            component: Component::Other,
        }
    }
}

impl std::fmt::Debug for NodeSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NodeSlot")
            .field("name", &self.name)
            .field("nics", &self.nics)
            .field("serial_ports", &self.serial_ports)
            .field("powered", &self.powered)
            .field("epoch", &self.epoch)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{NodeCtx, TimerToken};

    struct Dummy;
    impl crate::node::Node for Dummy {
        fn on_frame(
            &mut self,
            _: &mut NodeCtx<'_>,
            _: crate::node::NicId,
            _: crate::frame::EthernetFrame,
        ) {
        }
        fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {}
    }

    #[test]
    fn new_nic_is_up_and_unattached() {
        let nic = NicState::new(MacAddr::unicast(1));
        assert!(nic.up);
        assert_eq!(nic.link, None);
        assert_eq!(nic.mac, MacAddr::unicast(1));
    }

    #[test]
    fn new_slot_is_powered_with_logic() {
        let slot = NodeSlot::new("x".into(), Box::new(Dummy));
        assert!(slot.powered);
        assert!(slot.logic.is_some());
        assert_eq!(slot.epoch, 0);
        assert!(format!("{slot:?}").contains("powered"));
    }
}
