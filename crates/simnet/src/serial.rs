//! Serial (null-modem) channels.
//!
//! ST-TCP's second heartbeat link is an RS-232 null-modem cable between
//! the two servers (paper §3). Its value is *fate diversity*: a NIC or
//! Ethernet-cable failure takes down the IP link but not the serial link,
//! which is what lets the servers distinguish "peer crashed" from "peer's
//! network is gone" (§4.3). The model is a point-to-point byte channel
//! with RS-232 bandwidth (start/stop-bit framing overhead included) and an
//! independent up/down state.

use core::fmt;

use crate::node::{NodeId, SerialPortId};
use crate::time::{SimDuration, SimTime};

/// Identifies a serial channel within a world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SerialId(pub usize);

/// Which direction data travels on a serial channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SerialDir {
    /// From endpoint `a` toward endpoint `b`.
    AtoB,
    /// From endpoint `b` toward endpoint `a`.
    BtoA,
}

impl SerialDir {
    fn index(self) -> usize {
        match self {
            SerialDir::AtoB => 0,
            SerialDir::BtoA => 1,
        }
    }
}

impl fmt::Display for SerialDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerialDir::AtoB => write!(f, "a->b"),
            SerialDir::BtoA => write!(f, "b->a"),
        }
    }
}

/// Physical parameters of a serial channel.
#[derive(Debug, Clone, Copy)]
pub struct SerialParams {
    /// Line rate in bits per second.
    pub baud: u64,
    /// Bits on the wire per payload byte (8 data + start + stop = 10 for
    /// standard 8N1 framing).
    pub bits_per_byte: u64,
    /// One-way propagation latency (negligible for a 2 m cable, but
    /// configurable).
    pub latency: SimDuration,
}

impl SerialParams {
    /// Standard RS-232 at 115.2 kbps, 8N1 — the paper's configuration.
    pub fn rs232() -> SerialParams {
        SerialParams {
            baud: 115_200,
            bits_per_byte: 10,
            latency: SimDuration::from_micros(1),
        }
    }

    /// A direct crossover-Ethernet replacement for the serial cable, which
    /// the paper suggests when more than ~100 connections are needed (§3):
    /// 100 Mbit/s with no start/stop framing.
    pub fn crossover_ethernet() -> SerialParams {
        SerialParams {
            baud: 100_000_000,
            bits_per_byte: 8,
            latency: SimDuration::from_micros(5),
        }
    }
}

impl Default for SerialParams {
    fn default() -> Self {
        SerialParams::rs232()
    }
}

/// Delivery counters for one direction of a serial channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialStats {
    /// Messages offered for transmission.
    pub offered: u64,
    /// Messages scheduled for delivery.
    pub delivered: u64,
    /// Messages dropped because the channel was down.
    pub dropped_down: u64,
    /// Payload bytes scheduled for delivery.
    pub bytes_delivered: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct SerialDirState {
    busy_until: SimTime,
}

/// The simulator-internal state of one serial channel.
#[derive(Debug)]
pub struct SerialState {
    /// Endpoint `a`: (node, that node's serial port index).
    pub a: (NodeId, SerialPortId),
    /// Endpoint `b`.
    pub b: (NodeId, SerialPortId),
    params: SerialParams,
    down: bool,
    dirs: [SerialDirState; 2],
    stats: [SerialStats; 2],
}

/// The outcome of offering a message to a serial channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SerialTxOutcome {
    /// The message will arrive at the far end at the given time.
    Deliver(SimTime),
    /// The channel is down; the message is lost.
    Dropped,
}

impl SerialState {
    /// Creates a standalone channel (normally done by
    /// [`crate::world::World::connect_serial`]; public so capacity
    /// analyses can model a channel without a world).
    pub fn new(
        a: (NodeId, SerialPortId),
        b: (NodeId, SerialPortId),
        params: SerialParams,
    ) -> SerialState {
        SerialState {
            a,
            b,
            params,
            down: false,
            dirs: Default::default(),
            stats: Default::default(),
        }
    }

    /// The physical parameters of the channel.
    pub fn params(&self) -> SerialParams {
        self.params
    }

    /// True if the channel is down.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Administratively downs (or restores) the channel.
    pub fn set_down(&mut self, down: bool) {
        self.down = down;
    }

    /// Delivery counters for `dir`.
    pub fn stats(&self, dir: SerialDir) -> SerialStats {
        self.stats[dir.index()]
    }

    /// The direction for data originating at `from`, or `None` if `from`
    /// is not an endpoint.
    pub fn dir_from(&self, from: (NodeId, SerialPortId)) -> Option<SerialDir> {
        if self.a == from {
            Some(SerialDir::AtoB)
        } else if self.b == from {
            Some(SerialDir::BtoA)
        } else {
            None
        }
    }

    /// The receiving endpoint for data travelling in `dir`.
    pub fn dest(&self, dir: SerialDir) -> (NodeId, SerialPortId) {
        match dir {
            SerialDir::AtoB => self.b,
            SerialDir::BtoA => self.a,
        }
    }

    /// Offers `len` payload bytes for transmission in `dir` at `now`.
    ///
    /// Models FIFO serialization at the line rate (including start/stop
    /// framing bits) plus propagation latency.
    pub fn transmit(&mut self, now: SimTime, dir: SerialDir, len: usize) -> SerialTxOutcome {
        let i = dir.index();
        self.stats[i].offered += 1;
        if self.down {
            self.stats[i].dropped_down += 1;
            return SerialTxOutcome::Dropped;
        }
        let d = &mut self.dirs[i];
        let start = if now > d.busy_until {
            now
        } else {
            d.busy_until
        };
        let bits = len as u128 * self.params.bits_per_byte as u128;
        let ser_micros = (bits * 1_000_000).div_ceil(self.params.baud.max(1) as u128);
        let ser = SimDuration::from_micros(ser_micros.min(u64::MAX as u128) as u64);
        d.busy_until = start + ser;
        self.stats[i].delivered += 1;
        self.stats[i].bytes_delivered += len as u64;
        SerialTxOutcome::Deliver(d.busy_until + self.params.latency)
    }

    /// The duration needed to serialize one `len`-byte message on an idle
    /// channel (excluding latency). Useful for capacity computations like
    /// the paper's "~100 connections per serial link" claim.
    pub fn serialization_time(&self, len: usize) -> SimDuration {
        let bits = len as u128 * self.params.bits_per_byte as u128;
        let micros = (bits * 1_000_000).div_ceil(self.params.baud.max(1) as u128);
        SimDuration::from_micros(micros.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chan() -> SerialState {
        SerialState::new(
            (NodeId(0), SerialPortId(0)),
            (NodeId(1), SerialPortId(0)),
            SerialParams::rs232(),
        )
    }

    #[test]
    fn rs232_serialization_matches_paper_arithmetic() {
        // 20-byte HB at 115.2 kbps 8N1: 200 bits → ~1736 µs.
        let c = chan();
        let d = c.serialization_time(20);
        assert_eq!(d.as_micros(), 1_737); // ceil(200*1e6/115200)
    }

    #[test]
    fn transmit_applies_latency_and_serialization() {
        let mut c = chan();
        let out = c.transmit(SimTime::ZERO, SerialDir::AtoB, 20);
        let expected = SimTime::ZERO + c.serialization_time(20) + c.params().latency;
        assert_eq!(out, SerialTxOutcome::Deliver(expected));
    }

    #[test]
    fn fifo_queueing_per_direction() {
        let mut c = chan();
        let ser = c.serialization_time(100);
        let first = c.transmit(SimTime::ZERO, SerialDir::AtoB, 100);
        let second = c.transmit(SimTime::ZERO, SerialDir::AtoB, 100);
        let lat = c.params().latency;
        assert_eq!(first, SerialTxOutcome::Deliver(SimTime::ZERO + ser + lat));
        assert_eq!(
            second,
            SerialTxOutcome::Deliver(SimTime::ZERO + ser + ser + lat)
        );
        // Other direction unaffected (full duplex).
        let rev = c.transmit(SimTime::ZERO, SerialDir::BtoA, 100);
        assert_eq!(rev, SerialTxOutcome::Deliver(SimTime::ZERO + ser + lat));
    }

    #[test]
    fn down_channel_drops() {
        let mut c = chan();
        c.set_down(true);
        assert!(c.is_down());
        assert_eq!(
            c.transmit(SimTime::ZERO, SerialDir::AtoB, 10),
            SerialTxOutcome::Dropped
        );
        assert_eq!(c.stats(SerialDir::AtoB).dropped_down, 1);
        c.set_down(false);
        assert!(matches!(
            c.transmit(SimTime::ZERO, SerialDir::AtoB, 10),
            SerialTxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn endpoints_and_directions() {
        let c = chan();
        assert_eq!(
            c.dir_from((NodeId(0), SerialPortId(0))),
            Some(SerialDir::AtoB)
        );
        assert_eq!(
            c.dir_from((NodeId(1), SerialPortId(0))),
            Some(SerialDir::BtoA)
        );
        assert_eq!(c.dir_from((NodeId(9), SerialPortId(0))), None);
        assert_eq!(c.dest(SerialDir::AtoB), (NodeId(1), SerialPortId(0)));
    }

    #[test]
    fn crossover_ethernet_is_much_faster() {
        let slow = chan();
        let fast = SerialState::new(
            (NodeId(0), SerialPortId(0)),
            (NodeId(1), SerialPortId(0)),
            SerialParams::crossover_ethernet(),
        );
        assert!(fast.serialization_time(1000) < slow.serialization_time(1000));
    }

    #[test]
    fn stats_accumulate() {
        let mut c = chan();
        let _ = c.transmit(SimTime::ZERO, SerialDir::AtoB, 10);
        let _ = c.transmit(SimTime::ZERO, SerialDir::AtoB, 15);
        let s = c.stats(SerialDir::AtoB);
        assert_eq!(s.offered, 2);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.bytes_delivered, 25);
    }
}
