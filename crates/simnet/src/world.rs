//! The simulation world: topology construction and the event loop.
//!
//! A [`World`] owns every node, link, switch, and serial channel, plus the
//! event queue and the seeded RNG. Construction is two-phase: build the
//! topology (`add_*`/`connect_*`), then [`World::start`] and run. The
//! whole simulation is single-threaded and deterministic: same seed, same
//! topology, same scripts ⇒ identical event sequence.
//!
//! # Examples
//!
//! ```
//! use simnet::world::World;
//! use simnet::node::{Node, NodeCtx, NicId, TimerToken};
//! use simnet::time::{SimDuration, SimTime};
//! use simnet::frame::EthernetFrame;
//!
//! struct Beeper { beeps: u32 }
//! impl Node for Beeper {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         ctx.set_timer(SimDuration::from_millis(10), TimerToken(0));
//!     }
//!     fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {}
//!     fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) { self.beeps += 1; }
//! }
//!
//! let mut w = World::new(42);
//! let id = w.add_node("beeper", Box::new(Beeper { beeps: 0 }));
//! w.start();
//! w.run_until(SimTime::from_millis(100));
//! assert_eq!(w.node::<Beeper>(id).unwrap().beeps, 1);
//! ```

use std::any::Any;
use std::collections::{HashMap, HashSet};

use crate::event::{Ev, EventQueue};
use crate::flight::{FlightKind, FlightRecorder, SpanId};
use crate::frame::EthernetFrame;
use crate::host::{NicState, NodeSlot};
use crate::link::{Endpoint, LinkId, LinkParams, LinkState, SwitchId, TxOutcome};
use crate::mac::MacAddr;
use crate::node::{Effect, NicId, Node, NodeCtx, NodeId, SerialPortId, TimerId};
use crate::profile::{Component, Profiler};
use crate::rng::SimRng;
use crate::serial::{SerialId, SerialParams, SerialState, SerialTxOutcome};
use crate::switch::SwitchState;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Error returned by [`World::run_until_idle`] when the event cap is hit,
/// which almost always indicates a livelock (two nodes ping-ponging
/// forever).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunawayError {
    /// The number of events that were processed before giving up.
    pub events_processed: u64,
}

impl std::fmt::Display for RunawayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "simulation did not go idle after {} events",
            self.events_processed
        )
    }
}

impl std::error::Error for RunawayError {}

type Script = Box<dyn FnOnce(&mut World)>;

/// The simulation world. See the [module docs](self) for an overview.
pub struct World {
    now: SimTime,
    queue: EventQueue,
    pub(crate) nodes: Vec<NodeSlot>,
    pub(crate) links: Vec<LinkState>,
    pub(crate) switches: Vec<SwitchState>,
    pub(crate) serials: Vec<SerialState>,
    rng: SimRng,
    trace: Trace,
    flight: FlightRecorder,
    profiler: Profiler,
    faults: Vec<(SimTime, String)>,
    next_timer_id: u64,
    cancelled_timers: HashSet<TimerId>,
    scripts: HashMap<u64, Script>,
    next_script_id: u64,
    started: bool,
    events_processed: u64,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("now", &self.now)
            .field("nodes", &self.nodes.len())
            .field("links", &self.links.len())
            .field("switches", &self.switches.len())
            .field("serials", &self.serials.len())
            .field("pending_events", &self.queue.len())
            .finish_non_exhaustive()
    }
}

impl World {
    /// Creates an empty world with a deterministic RNG seed.
    pub fn new(seed: u64) -> World {
        World {
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            links: Vec::new(),
            switches: Vec::new(),
            serials: Vec::new(),
            rng: SimRng::seed_from(seed),
            trace: Trace::new(),
            flight: FlightRecorder::new(),
            profiler: Profiler::new(),
            faults: Vec::new(),
            next_timer_id: 0,
            cancelled_timers: HashSet::new(),
            scripts: HashMap::new(),
            next_script_id: 0,
            started: false,
            events_processed: 0,
        }
    }

    // ----- topology construction ---------------------------------------

    /// Adds a node with the given trace name. Returns its id.
    pub fn add_node(&mut self, name: &str, logic: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(NodeSlot::new(name.to_string(), logic));
        self.flight.add_host();
        id
    }

    /// Adds a NIC with address `mac` to `node`. NICs are numbered densely
    /// from zero in creation order.
    pub fn add_nic(&mut self, node: NodeId, mac: MacAddr) -> NicId {
        let slot = &mut self.nodes[node.0];
        let id = NicId(slot.nics.len());
        slot.nics.push(NicState::new(mac));
        id
    }

    /// Adds a switch with `ports` ports. Returns its id.
    pub fn add_switch(&mut self, ports: usize) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(SwitchState::new(ports));
        id
    }

    /// Cables a node NIC to a switch port with the given link parameters.
    ///
    /// # Panics
    ///
    /// Panics if the NIC is already cabled or the switch port is occupied.
    pub fn connect_to_switch(
        &mut self,
        node: NodeId,
        nic: NicId,
        switch: SwitchId,
        port: usize,
        params: LinkParams,
    ) -> LinkId {
        let id = LinkId(self.links.len());
        let a = Endpoint::Node { node, nic };
        let b = Endpoint::Switch { switch, port };
        self.links.push(LinkState::new(a, b, params));
        let nic_state = &mut self.nodes[node.0].nics[nic.0];
        assert!(nic_state.link.is_none(), "nic already cabled");
        nic_state.link = Some(id);
        self.switches[switch.0].attach(port, id);
        id
    }

    /// Cables two node NICs directly (crossover cable).
    ///
    /// # Panics
    ///
    /// Panics if either NIC is already cabled.
    pub fn connect_nodes(
        &mut self,
        a: (NodeId, NicId),
        b: (NodeId, NicId),
        params: LinkParams,
    ) -> LinkId {
        let id = LinkId(self.links.len());
        self.links.push(LinkState::new(
            Endpoint::Node {
                node: a.0,
                nic: a.1,
            },
            Endpoint::Node {
                node: b.0,
                nic: b.1,
            },
            params,
        ));
        for (node, nic) in [a, b] {
            let nic_state = &mut self.nodes[node.0].nics[nic.0];
            assert!(nic_state.link.is_none(), "nic already cabled");
            nic_state.link = Some(id);
        }
        id
    }

    /// Connects two nodes with a serial channel (null-modem cable).
    /// Returns the channel id and the serial port assigned on each node.
    pub fn connect_serial(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: SerialParams,
    ) -> (SerialId, SerialPortId, SerialPortId) {
        let id = SerialId(self.serials.len());
        let pa = SerialPortId(self.nodes[a.0].serial_ports.len());
        self.nodes[a.0].serial_ports.push(Some(id));
        let pb = SerialPortId(self.nodes[b.0].serial_ports.len());
        self.nodes[b.0].serial_ports.push(Some(id));
        self.serials
            .push(SerialState::new((a, pa), (b, pb), params));
        (id, pa, pb)
    }

    // ----- accessors -----------------------------------------------------

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The trace log.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Records a line in the trace attributed to the world (not a node).
    pub fn trace_world(&mut self, message: impl Into<String>) {
        self.trace.record(self.now, None, message);
    }

    /// Bounds the trace log to a ring buffer of `capacity` records
    /// (`None` restores the unbounded default). Long chaos and soak
    /// sweeps use this so trace memory stays constant.
    pub fn set_trace_capacity(&mut self, capacity: Option<usize>) {
        self.trace.set_capacity(capacity);
    }

    /// The flight recorder (per-host causal event rings).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Sets the per-host flight-recorder ring capacity.
    pub fn set_flight_capacity(&mut self, capacity: usize) {
        self.flight.set_capacity(capacity);
    }

    /// Captures a flight-recorder snapshot: the last `window` of
    /// causally-linked events (everything retained when `None`), plus
    /// the host names the events' node ids index.
    pub fn flight_snapshot(&self, window: Option<SimDuration>) -> crate::flight::FlightSnapshot {
        crate::flight::FlightSnapshot {
            events: self.flight.snapshot(window),
            hosts: self.nodes.iter().map(|n| n.name.clone()).collect(),
            window_ms: window.map(|w| w.as_millis()),
        }
    }

    /// The per-component wall-clock profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Enables or disables per-component wall-clock profiling.
    /// Observational only: toggling this never changes simulation
    /// behavior, so determinism is unaffected.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiler.set_enabled(on);
    }

    /// Attributes `node`'s dispatch time to profiler bucket `comp`
    /// (scenario builders call this; the default bucket is `Other`).
    pub fn set_node_component(&mut self, node: NodeId, comp: Component) {
        self.nodes[node.0].component = comp;
    }

    /// Number of nodes in the world.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Records a fault injection: a `inject: {msg}` trace line plus an
    /// entry in the fault-episode log, which is never capped, so metrics
    /// can attribute symptoms to faults even when the trace ring buffer
    /// has evicted the line.
    pub fn note_fault(&mut self, message: impl Into<String>) {
        let message = message.into();
        self.trace
            .record(self.now, None, format!("inject: {message}"));
        let index = self.faults.len() as u64;
        self.flight.record(
            None,
            self.now,
            SpanId::fault(index),
            SpanId::NONE,
            FlightKind::Fault {
                index: index as u32,
            },
        );
        self.faults.push((self.now, message));
    }

    /// Every fault injected so far, as `(time, description)` in
    /// injection order.
    pub fn faults(&self) -> &[(SimTime, String)] {
        &self.faults
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Immutable access to a link.
    pub fn link(&self, id: LinkId) -> &LinkState {
        &self.links[id.0]
    }

    /// Mutable access to a link (fault injection).
    pub fn link_mut(&mut self, id: LinkId) -> &mut LinkState {
        &mut self.links[id.0]
    }

    /// Immutable access to a serial channel.
    pub fn serial(&self, id: SerialId) -> &SerialState {
        &self.serials[id.0]
    }

    /// Mutable access to a serial channel (fault injection).
    pub fn serial_mut(&mut self, id: SerialId) -> &mut SerialState {
        &mut self.serials[id.0]
    }

    /// Immutable access to a switch.
    pub fn switch(&self, id: SwitchId) -> &SwitchState {
        &self.switches[id.0]
    }

    /// Registers a static multicast group membership on a switch port
    /// (IGMP-snooping style). See [`SwitchState::join_group`].
    pub fn join_multicast(&mut self, id: SwitchId, mac: MacAddr, port: usize) {
        self.switches[id.0].join_group(mac, port);
    }

    /// The name a node was created with.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.nodes[id.0].name
    }

    /// Whether a node currently has power.
    pub fn is_powered(&self, id: NodeId) -> bool {
        self.nodes[id.0].powered
    }

    /// The NIC state (MAC, up/down, cabling) of `nic` on `node`.
    pub fn nic(&self, node: NodeId, nic: NicId) -> &NicState {
        &self.nodes[node.0].nics[nic.0]
    }

    /// Downcasts a node's logic to its concrete type for inspection.
    ///
    /// Returns `None` if the type does not match.
    pub fn node<T: Node>(&self, id: NodeId) -> Option<&T> {
        let logic = self.nodes[id.0].logic.as_deref()?;
        (logic as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable variant of [`World::node`]. Mutating node logic outside a
    /// callback is intended for test setup only.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let logic = self.nodes[id.0].logic.as_deref_mut()?;
        (logic as &mut dyn Any).downcast_mut::<T>()
    }

    /// Pushes a raw event (crate-internal; used by the fault layer).
    pub(crate) fn push_event(&mut self, at: SimTime, ev: Ev) {
        self.queue.push(at.max(self.now), ev);
    }

    // ----- scripting -----------------------------------------------------

    /// Schedules `f` to run against the world at time `at` (clamped to now).
    /// Used for fault injection and workload scripting.
    pub fn schedule(&mut self, at: SimTime, f: impl FnOnce(&mut World) + 'static) {
        let id = self.next_script_id;
        self.next_script_id += 1;
        self.scripts.insert(id, Box::new(f));
        let at = at.max(self.now);
        self.queue.push(at, Ev::Script { id });
    }

    /// Schedules `f` to run `after` from now.
    pub fn schedule_in(&mut self, after: SimDuration, f: impl FnOnce(&mut World) + 'static) {
        let at = self.now + after;
        self.schedule(at, f);
    }

    // ----- running -------------------------------------------------------

    /// Delivers `on_start` to every node (in id order). Must be called
    /// exactly once, after topology construction, before running.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn start(&mut self) {
        assert!(!self.started, "world already started");
        self.started = true;
        for i in 0..self.nodes.len() {
            self.dispatch(NodeId(i), |node, ctx| node.on_start(ctx));
        }
    }

    /// Processes events until the queue is empty or every remaining event
    /// is after `t`; leaves the clock at exactly `t`.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(self.started, "call start() before running");
        while let Some(next) = self.queue.peek_time() {
            if next > t {
                break;
            }
            self.step();
        }
        if t > self.now {
            self.now = t;
        }
    }

    /// Runs for `d` of virtual time from the current clock.
    pub fn run_for(&mut self, d: SimDuration) {
        let t = self.now + d;
        self.run_until(t);
    }

    /// Processes events until the queue is empty, with a safety cap.
    ///
    /// # Errors
    ///
    /// Returns [`RunawayError`] if more than `max_events` are processed
    /// without the queue draining.
    pub fn run_until_idle(&mut self, max_events: u64) -> Result<SimTime, RunawayError> {
        assert!(self.started, "call start() before running");
        let mut n = 0u64;
        while !self.queue.is_empty() {
            self.step();
            n += 1;
            if n > max_events {
                return Err(RunawayError {
                    events_processed: n,
                });
            }
        }
        Ok(self.now)
    }

    /// Processes a single event. Returns `false` if the queue was empty.
    pub fn step(&mut self) -> bool {
        let Some((at, ev)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.events_processed += 1;
        // Everything outside node callbacks is kernel time; dispatch
        // opens a nested per-component scope for the callback itself.
        self.profiler.enter(Component::Kernel);
        self.step_event(ev);
        self.profiler.exit();
        true
    }

    /// The body of one event, factored out of [`World::step`] so the
    /// profiler scope wraps every early return uniformly.
    fn step_event(&mut self, ev: Ev) {
        match ev {
            Ev::LinkArrival { link, dir, frame } => {
                let dest = self.links[link.0].dest(dir);
                match dest {
                    Endpoint::Node { node, nic } => self.deliver_frame(node, nic, frame),
                    Endpoint::Switch { switch, port } => self.switch_forward(switch, port, frame),
                }
            }
            Ev::SerialArrival { serial, dir, data } => {
                let (node, port) = self.serials[serial.0].dest(dir);
                if self.serials[serial.0].is_down() {
                    return; // channel died while in flight
                }
                if self.nodes[node.0].powered {
                    self.dispatch(node, |logic, ctx| logic.on_serial(ctx, port, data));
                }
            }
            Ev::Timer {
                node,
                id,
                token,
                epoch,
            } => {
                if self.cancelled_timers.remove(&id) {
                    return;
                }
                let slot = &self.nodes[node.0];
                if !slot.powered || slot.epoch != epoch {
                    return;
                }
                self.dispatch(node, |logic, ctx| logic.on_timer(ctx, token));
            }
            Ev::PowerOff { node } => self.do_power_off(node),
            Ev::PowerOn { node } => self.do_power_on(node),
            Ev::Script { id } => {
                if let Some(f) = self.scripts.remove(&id) {
                    f(self);
                }
            }
        }
    }

    // ----- internal plumbing ----------------------------------------------

    /// Calls `f` on a node's logic with a fresh context, then applies the
    /// queued effects.
    fn dispatch<F>(&mut self, node: NodeId, f: F)
    where
        F: FnOnce(&mut dyn Node, &mut NodeCtx<'_>),
    {
        let mut logic = match self.nodes[node.0].logic.take() {
            Some(l) => l,
            None => return, // re-entrant dispatch is impossible; defensive
        };
        let comp = self.nodes[node.0].component;
        self.profiler.enter(comp);
        let mut effects = Vec::new();
        {
            let mut ctx = NodeCtx {
                now: self.now,
                node,
                rng: &mut self.rng,
                effects: &mut effects,
                next_timer_id: &mut self.next_timer_id,
                flight: &mut self.flight,
                profiler: &mut self.profiler,
            };
            f(logic.as_mut(), &mut ctx);
        }
        self.profiler.exit();
        self.nodes[node.0].logic = Some(logic);
        self.apply_effects(node, effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect>) {
        for effect in effects {
            match effect {
                Effect::SendFrame { nic, frame } => self.send_frame_from(node, nic, frame),
                Effect::SendSerial { port, data } => {
                    let slot = &self.nodes[node.0];
                    let Some(Some(serial)) = slot.serial_ports.get(port.0).copied() else {
                        continue;
                    };
                    let dir = match self.serials[serial.0].dir_from((node, port)) {
                        Some(d) => d,
                        None => continue,
                    };
                    let len = data.len();
                    match self.serials[serial.0].transmit(self.now, dir, len) {
                        SerialTxOutcome::Deliver(at) => {
                            self.queue.push(at, Ev::SerialArrival { serial, dir, data });
                        }
                        SerialTxOutcome::Dropped => {}
                    }
                }
                Effect::SetTimer { id, at, token } => {
                    let epoch = self.nodes[node.0].epoch;
                    self.queue.push(
                        at,
                        Ev::Timer {
                            node,
                            id,
                            token,
                            epoch,
                        },
                    );
                }
                Effect::CancelTimer(id) => {
                    self.cancelled_timers.insert(id);
                }
                Effect::PowerOff { target, after } => {
                    let at = self.now + after;
                    self.queue.push(at, Ev::PowerOff { node: target });
                }
                Effect::Trace(msg) => {
                    self.trace.record(self.now, Some(node), msg);
                }
            }
        }
    }

    /// Transmits a frame out of a node NIC, if the hardware allows it.
    fn send_frame_from(&mut self, node: NodeId, nic: NicId, frame: EthernetFrame) {
        let slot = &self.nodes[node.0];
        if !slot.powered {
            return;
        }
        let Some(nic_state) = slot.nics.get(nic.0) else {
            return;
        };
        if !nic_state.up {
            return;
        }
        let Some(link) = nic_state.link else {
            return;
        };
        self.transmit_on_link(link, Endpoint::Node { node, nic }, frame);
    }

    /// Offers a frame to a link from one of its endpoints, scheduling an
    /// arrival if the link delivers it.
    fn transmit_on_link(&mut self, link: LinkId, from: Endpoint, frame: EthernetFrame) {
        let dir = self.links[link.0]
            .dir_from(from)
            .expect("endpoint is not on this link");
        let copies = if self.links[link.0].consume_dup(dir) {
            self.trace
                .record(self.now, None, format!("dup: l{} {dir} frame", link.0));
            2
        } else {
            1
        };
        let frame = if self.links[link.0].consume_corrupt(dir) {
            let frame = corrupt_payload(frame, &mut self.rng);
            self.trace.record(
                self.now,
                None,
                format!("corrupt: l{} {dir} one bit", link.0),
            );
            frame
        } else {
            frame
        };
        for _ in 0..copies {
            match self.links[link.0].transmit(self.now, dir, &frame, &mut self.rng) {
                TxOutcome::Deliver(at) => {
                    let frame = frame.clone();
                    self.queue.push(at, Ev::LinkArrival { link, dir, frame });
                }
                TxOutcome::Dropped => {}
                TxOutcome::Held => {
                    self.trace
                        .record(self.now, None, format!("reorder: l{} {dir} hold", link.0));
                }
                TxOutcome::DeliverAndRelease { at, released } => {
                    let frame = frame.clone();
                    self.queue.push(at, Ev::LinkArrival { link, dir, frame });
                    let (rel_at, rel_frame) = released;
                    self.queue.push(
                        rel_at,
                        Ev::LinkArrival {
                            link,
                            dir,
                            frame: rel_frame,
                        },
                    );
                }
            }
        }
    }

    /// Delivers a frame to node logic, if the hardware allows it.
    fn deliver_frame(&mut self, node: NodeId, nic: NicId, frame: EthernetFrame) {
        let slot = &self.nodes[node.0];
        if !slot.powered {
            return;
        }
        let Some(nic_state) = slot.nics.get(nic.0) else {
            return;
        };
        if !nic_state.up {
            return;
        }
        self.dispatch(node, |logic, ctx| logic.on_frame(ctx, nic, frame));
    }

    /// Runs switch forwarding for a frame that arrived on `port`.
    fn switch_forward(&mut self, switch: SwitchId, port: usize, frame: EthernetFrame) {
        let out_links = self.switches[switch.0].forward(port, &frame);
        for link in out_links {
            // The frame leaves through the switch's endpoint on that link.
            let from = if matches!(self.links[link.0].a, Endpoint::Switch { switch: s, .. } if s == switch)
            {
                self.links[link.0].a
            } else {
                self.links[link.0].b
            };
            self.transmit_on_link(link, from, frame.clone());
        }
    }

    pub(crate) fn do_power_off(&mut self, node: NodeId) {
        let slot = &mut self.nodes[node.0];
        if !slot.powered {
            return;
        }
        slot.powered = false;
        slot.epoch += 1;
        if let Some(logic) = slot.logic.as_deref_mut() {
            logic.on_power_off();
        }
        let name = slot.name.clone();
        self.trace
            .record(self.now, Some(node), format!("{name}: power off"));
    }

    pub(crate) fn do_power_on(&mut self, node: NodeId) {
        let slot = &mut self.nodes[node.0];
        if slot.powered {
            return;
        }
        slot.powered = true;
        let name = slot.name.clone();
        self.trace
            .record(self.now, Some(node), format!("{name}: power on"));
        self.dispatch(node, |logic, ctx| logic.on_power_on(ctx));
    }
}

/// Flips one random payload bit of `frame` (injected electrical noise).
/// Frames with empty payloads pass through untouched.
fn corrupt_payload(frame: EthernetFrame, rng: &mut SimRng) -> EthernetFrame {
    if frame.payload.is_empty() {
        return frame;
    }
    let mut data = frame.payload.to_vec();
    let bit = rng.index(data.len() * 8);
    data[bit / 8] ^= 1 << (bit % 8);
    EthernetFrame::new(
        frame.src,
        frame.dst,
        frame.ethertype,
        bytes::Bytes::from(data),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use crate::node::TimerToken;
    use bytes::Bytes;

    /// A node that sends a frame to a destination MAC on start, counts
    /// frames it receives, and echoes serial data back.
    struct Chatter {
        nic: NicId,
        dst: MacAddr,
        src: MacAddr,
        send_on_start: bool,
        received: Vec<EthernetFrame>,
        serial_received: Vec<Bytes>,
        timer_fires: u32,
    }

    impl Chatter {
        fn new(src: MacAddr, dst: MacAddr, send_on_start: bool) -> Chatter {
            Chatter {
                nic: NicId(0),
                dst,
                src,
                send_on_start,
                received: Vec::new(),
                serial_received: Vec::new(),
                timer_fires: 0,
            }
        }
    }

    impl Node for Chatter {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            if self.send_on_start {
                let f = EthernetFrame::new(
                    self.src,
                    self.dst,
                    EtherType::Ipv4,
                    Bytes::from_static(b"ping"),
                );
                ctx.send_frame(self.nic, f);
            }
        }
        fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, frame: EthernetFrame) {
            self.received.push(frame);
        }
        fn on_serial(&mut self, _: &mut NodeCtx<'_>, _: SerialPortId, data: Bytes) {
            self.serial_received.push(data);
        }
        fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {
            self.timer_fires += 1;
        }
    }

    fn two_nodes_via_switch() -> (World, NodeId, NodeId) {
        let mut w = World::new(1);
        let a = w.add_node(
            "a",
            Box::new(Chatter::new(MacAddr::unicast(1), MacAddr::unicast(2), true)),
        );
        let b = w.add_node(
            "b",
            Box::new(Chatter::new(
                MacAddr::unicast(2),
                MacAddr::unicast(1),
                false,
            )),
        );
        let na = w.add_nic(a, MacAddr::unicast(1));
        let nb = w.add_nic(b, MacAddr::unicast(2));
        let sw = w.add_switch(2);
        w.connect_to_switch(a, na, sw, 0, LinkParams::lan());
        w.connect_to_switch(b, nb, sw, 1, LinkParams::lan());
        (w, a, b)
    }

    #[test]
    fn frame_travels_through_switch() {
        let (mut w, _a, b) = two_nodes_via_switch();
        w.start();
        w.run_until(SimTime::from_millis(10));
        let rx = &w.node::<Chatter>(b).unwrap().received;
        assert_eq!(rx.len(), 1);
        assert_eq!(rx[0].payload.as_ref(), b"ping");
    }

    #[test]
    fn multicast_reaches_all_other_ports() {
        let mut w = World::new(1);
        let multi = MacAddr::multicast(7);
        let a = w.add_node(
            "a",
            Box::new(Chatter::new(MacAddr::unicast(1), multi, true)),
        );
        let b = w.add_node(
            "b",
            Box::new(Chatter::new(MacAddr::unicast(2), multi, false)),
        );
        let c = w.add_node(
            "c",
            Box::new(Chatter::new(MacAddr::unicast(3), multi, false)),
        );
        let sw = w.add_switch(3);
        for (i, (n, m)) in [(a, 1u32), (b, 2), (c, 3)].iter().enumerate() {
            let nic = w.add_nic(*n, MacAddr::unicast(*m));
            w.connect_to_switch(*n, nic, sw, i, LinkParams::lan());
        }
        w.start();
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<Chatter>(b).unwrap().received.len(), 1);
        assert_eq!(w.node::<Chatter>(c).unwrap().received.len(), 1);
        assert_eq!(w.node::<Chatter>(a).unwrap().received.len(), 0);
    }

    #[test]
    fn crossover_cable_delivers_directly() {
        let mut w = World::new(1);
        let a = w.add_node(
            "a",
            Box::new(Chatter::new(MacAddr::unicast(1), MacAddr::unicast(2), true)),
        );
        let b = w.add_node(
            "b",
            Box::new(Chatter::new(
                MacAddr::unicast(2),
                MacAddr::unicast(1),
                false,
            )),
        );
        let na = w.add_nic(a, MacAddr::unicast(1));
        let nb = w.add_nic(b, MacAddr::unicast(2));
        w.connect_nodes((a, na), (b, nb), LinkParams::ideal());
        w.start();
        w.run_until(SimTime::from_millis(1));
        assert_eq!(w.node::<Chatter>(b).unwrap().received.len(), 1);
    }

    #[test]
    fn serial_channel_delivers() {
        let mut w = World::new(1);
        let a = w.add_node(
            "a",
            Box::new(Chatter::new(
                MacAddr::unicast(1),
                MacAddr::unicast(2),
                false,
            )),
        );
        let b = w.add_node(
            "b",
            Box::new(Chatter::new(
                MacAddr::unicast(2),
                MacAddr::unicast(1),
                false,
            )),
        );
        let (_id, pa, _pb) = w.connect_serial(a, b, SerialParams::rs232());
        w.start();
        w.schedule(SimTime::from_millis(1), move |w| {
            // Inject a serial send from node a by dispatching a script that
            // calls through the public fault/test API: easiest is to use a
            // timer-free direct dispatch via node_mut + manual effect; here
            // we go through the node logic itself.
            let _ = w; // see send below
        });
        // Drive a send from within the node by setting a timer path instead:
        // simpler — directly exercise apply_effects through dispatch.
        w.schedule(SimTime::from_millis(2), move |w| {
            w.dispatch(NodeId(0), |_logic, ctx| {
                ctx.send_serial(pa, Bytes::from_static(b"hb"));
            });
        });
        w.run_until(SimTime::from_millis(100));
        assert_eq!(
            w.node::<Chatter>(b).unwrap().serial_received,
            vec![Bytes::from_static(b"hb")]
        );
    }

    #[test]
    fn powered_off_node_is_deaf_and_mute() {
        let (mut w, a, b) = two_nodes_via_switch();
        // Cut power to b before start-up traffic arrives.
        w.schedule(SimTime::ZERO, move |w| w.do_power_off(b));
        w.start();
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<Chatter>(b).unwrap().received.len(), 0);
        assert!(!w.is_powered(b));
        assert!(w.is_powered(a));
    }

    #[test]
    fn power_cycle_discards_stale_timers() {
        struct TimerNode {
            fires: u32,
        }
        impl Node for TimerNode {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                ctx.set_timer(SimDuration::from_millis(50), TimerToken(1));
            }
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {
                self.fires += 1;
            }
        }
        let mut w = World::new(1);
        let n = w.add_node("t", Box::new(TimerNode { fires: 0 }));
        w.start();
        // Power off at 10ms, back on at 20ms: the 50ms timer must NOT fire
        // because it belongs to the old epoch.
        w.schedule(SimTime::from_millis(10), move |w| w.do_power_off(n));
        w.schedule(SimTime::from_millis(20), move |w| w.do_power_on(n));
        w.run_until(SimTime::from_millis(100));
        assert_eq!(w.node::<TimerNode>(n).unwrap().fires, 0);
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        struct CancelNode {
            fires: u32,
        }
        impl Node for CancelNode {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let id = ctx.set_timer(SimDuration::from_millis(5), TimerToken(1));
                ctx.cancel_timer(id);
                ctx.set_timer(SimDuration::from_millis(6), TimerToken(2));
            }
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, token: TimerToken) {
                assert_eq!(token, TimerToken(2));
                self.fires += 1;
            }
        }
        let mut w = World::new(1);
        let n = w.add_node("c", Box::new(CancelNode { fires: 0 }));
        w.start();
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<CancelNode>(n).unwrap().fires, 1);
    }

    #[test]
    fn run_until_leaves_clock_at_target() {
        let (mut w, ..) = two_nodes_via_switch();
        w.start();
        w.run_until(SimTime::from_millis(123));
        assert_eq!(w.now(), SimTime::from_millis(123));
    }

    #[test]
    fn run_until_idle_caps_runaway() {
        struct PingPong {
            nic: NicId,
            me: MacAddr,
            peer: MacAddr,
        }
        impl Node for PingPong {
            fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
                let f = EthernetFrame::new(self.me, self.peer, EtherType::Ipv4, Bytes::new());
                ctx.send_frame(self.nic, f);
            }
            fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {
                let f = EthernetFrame::new(self.me, self.peer, EtherType::Ipv4, Bytes::new());
                ctx.send_frame(self.nic, f);
            }
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {}
        }
        let mut w = World::new(1);
        let a = w.add_node(
            "a",
            Box::new(PingPong {
                nic: NicId(0),
                me: MacAddr::unicast(1),
                peer: MacAddr::unicast(2),
            }),
        );
        let b = w.add_node(
            "b",
            Box::new(PingPong {
                nic: NicId(0),
                me: MacAddr::unicast(2),
                peer: MacAddr::unicast(1),
            }),
        );
        let na = w.add_nic(a, MacAddr::unicast(1));
        let nb = w.add_nic(b, MacAddr::unicast(2));
        w.connect_nodes((a, na), (b, nb), LinkParams::lan());
        w.start();
        let err = w.run_until_idle(1_000).unwrap_err();
        assert!(err.events_processed > 1_000);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn scripts_run_at_their_time_in_order() {
        let mut w = World::new(1);
        let _ = w.add_node(
            "a",
            Box::new(Chatter::new(
                MacAddr::unicast(1),
                MacAddr::unicast(2),
                false,
            )),
        );
        w.start();
        w.schedule(SimTime::from_millis(5), |w| w.trace_world("second"));
        w.schedule(SimTime::from_millis(1), |w| w.trace_world("first"));
        w.run_until(SimTime::from_millis(10));
        let msgs: Vec<&str> = w.trace().records().map(|r| r.message.as_str()).collect();
        assert_eq!(msgs, vec!["first", "second"]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed| {
            let (mut w, ..) = two_nodes_via_switch();
            let _ = std::mem::replace(&mut w, {
                let mut w2 = World::new(seed);
                let a = w2.add_node(
                    "a",
                    Box::new(Chatter::new(MacAddr::unicast(1), MacAddr::unicast(2), true)),
                );
                let b = w2.add_node(
                    "b",
                    Box::new(Chatter::new(
                        MacAddr::unicast(2),
                        MacAddr::unicast(1),
                        false,
                    )),
                );
                let na = w2.add_nic(a, MacAddr::unicast(1));
                let nb = w2.add_nic(b, MacAddr::unicast(2));
                let sw = w2.add_switch(2);
                let l1 = w2.connect_to_switch(a, na, sw, 0, LinkParams::lan());
                w2.connect_to_switch(b, nb, sw, 1, LinkParams::lan());
                w2.link_mut(l1).set_loss(crate::link::LinkDir::AtoB, 0.3);
                w2
            });
            w.start();
            w.run_until(SimTime::from_millis(50));
            w.events_processed()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn power_on_after_reboots_node() {
        let (mut w, a, _b) = two_nodes_via_switch();
        w.start();
        w.schedule(SimTime::from_millis(5), move |w| w.crash_node(a));
        w.schedule(SimTime::from_millis(10), move |w| {
            w.power_on_after(a, SimDuration::from_millis(15));
        });
        w.run_until(SimTime::from_millis(20));
        assert!(!w.is_powered(a), "still off before the delay elapses");
        w.run_until(SimTime::from_millis(30));
        assert!(w.is_powered(a), "powered on after the delay");
    }

    #[test]
    fn serial_down_drops_in_flight_messages() {
        let mut w = World::new(1);
        let a = w.add_node(
            "a",
            Box::new(Chatter::new(
                MacAddr::unicast(1),
                MacAddr::unicast(2),
                false,
            )),
        );
        let b = w.add_node(
            "b",
            Box::new(Chatter::new(
                MacAddr::unicast(2),
                MacAddr::unicast(1),
                false,
            )),
        );
        let (id, pa, _pb) = w.connect_serial(a, b, SerialParams::rs232());
        w.start();
        // Send 100 bytes at t=1ms; serialization alone takes ~8.7ms at
        // 115.2 kbps 8N1. Cut the cable at t=2ms, mid-flight.
        w.schedule(SimTime::from_millis(1), move |w| {
            w.dispatch(NodeId(0), |_logic, ctx| {
                ctx.send_serial(pa, Bytes::from(vec![0x44u8; 100]));
            });
        });
        w.schedule(SimTime::from_millis(2), move |w| w.fail_serial(id));
        w.run_until(SimTime::from_millis(100));
        assert!(w.node::<Chatter>(b).unwrap().serial_received.is_empty());
        // Restore and verify traffic resumes.
        w.restore_serial(id);
        w.schedule(SimTime::from_millis(101), move |w| {
            w.dispatch(NodeId(0), |_logic, ctx| {
                ctx.send_serial(pa, Bytes::from_static(b"alive"));
            });
        });
        w.run_until(SimTime::from_millis(200));
        assert_eq!(
            w.node::<Chatter>(b).unwrap().serial_received,
            vec![Bytes::from_static(b"alive")],
        );
    }

    #[test]
    fn node_accessors_work() {
        let (w, a, _b) = two_nodes_via_switch();
        assert_eq!(w.node_name(a), "a");
        assert_eq!(w.nic(a, NicId(0)).mac, MacAddr::unicast(1));
        assert!(w.nic(a, NicId(0)).up);
        // Wrong-type downcast returns None.
        struct Other;
        impl Node for Other {
            fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {}
            fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {}
        }
        assert!(w.node::<Other>(a).is_none());
        assert!(w.node::<Chatter>(a).is_some());
    }

    #[test]
    fn failed_nic_blocks_rx_and_tx() {
        let (mut w, a, b) = two_nodes_via_switch();
        w.nodes[a.0].nics[0].up = false;
        w.start();
        w.run_until(SimTime::from_millis(10));
        // a's start-up frame never left.
        assert_eq!(w.node::<Chatter>(b).unwrap().received.len(), 0);
    }
}
