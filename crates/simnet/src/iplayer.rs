//! A minimal host IP layer: static ARP, encapsulation, and ping.
//!
//! Every host in the ST-TCP topology uses the same static configuration
//! style as the paper's setup (§5): no dynamic ARP, just a table mapping
//! IP addresses to MAC addresses. The crucial entry is on the *client*:
//! `serviceIP → multiEA` (a multicast MAC), which makes the switch deliver
//! client frames to both servers. The servers themselves bind the service
//! IP as an alias (the paper's "virtual NIC" via IP aliasing).

use bytes::Bytes;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::frame::{EtherType, EthernetFrame};
use crate::ip::{IcmpMessage, IpProto, Ipv4Packet};
use crate::mac::MacAddr;
use crate::node::{NicId, NodeCtx};

/// Per-NIC IP configuration and helpers.
///
/// # Examples
///
/// ```
/// use simnet::iplayer::IpInterface;
/// use simnet::mac::MacAddr;
/// use simnet::node::NicId;
///
/// let mut iface = IpInterface::new(NicId(0), MacAddr::unicast(1), "10.0.0.1".parse()?);
/// iface.add_alias("10.0.0.100".parse()?); // serviceIP alias
/// iface.add_arp("10.0.0.9".parse()?, MacAddr::unicast(9));
/// assert!(iface.accepts("10.0.0.100".parse()?));
/// # Ok::<(), std::net::AddrParseError>(())
/// ```
#[derive(Debug, Clone)]
pub struct IpInterface {
    /// The NIC this interface runs on.
    pub nic: NicId,
    /// The NIC's MAC address (used as the source of all frames).
    pub mac: MacAddr,
    /// Addresses this interface owns (first is the primary address).
    addrs: Vec<Ipv4Addr>,
    /// Static ARP table.
    arp: HashMap<Ipv4Addr, MacAddr>,
}

impl IpInterface {
    /// Creates an interface with a single owned address.
    pub fn new(nic: NicId, mac: MacAddr, addr: Ipv4Addr) -> IpInterface {
        IpInterface {
            nic,
            mac,
            addrs: vec![addr],
            arp: HashMap::new(),
        }
    }

    /// The interface's primary address.
    pub fn addr(&self) -> Ipv4Addr {
        self.addrs[0]
    }

    /// All owned addresses, primary first.
    pub fn addrs(&self) -> &[Ipv4Addr] {
        &self.addrs
    }

    /// Adds an alias address (IP aliasing, the paper's virtual NIC).
    pub fn add_alias(&mut self, addr: Ipv4Addr) {
        if !self.addrs.contains(&addr) {
            self.addrs.push(addr);
        }
    }

    /// Removes an alias; the primary address cannot be removed.
    pub fn remove_alias(&mut self, addr: Ipv4Addr) {
        let primary = self.addrs[0];
        self.addrs.retain(|&a| a != addr || a == primary);
    }

    /// Installs a static ARP entry.
    pub fn add_arp(&mut self, addr: Ipv4Addr, mac: MacAddr) {
        self.arp.insert(addr, mac);
    }

    /// Looks up the MAC for a destination IP.
    pub fn arp_lookup(&self, addr: Ipv4Addr) -> Option<MacAddr> {
        self.arp.get(&addr).copied()
    }

    /// True if this interface owns `dst` (primary or alias).
    pub fn accepts(&self, dst: Ipv4Addr) -> bool {
        self.addrs.contains(&dst)
    }

    /// Wraps an IP packet in an Ethernet frame addressed per the ARP
    /// table.
    ///
    /// Returns `None` when there is no ARP entry for the destination —
    /// with static ARP that is a configuration bug, and callers surface it.
    pub fn encap(&self, packet: &Ipv4Packet) -> Option<EthernetFrame> {
        let dst_mac = self.arp_lookup(packet.dst)?;
        Some(EthernetFrame::new(
            self.mac,
            dst_mac,
            EtherType::Ipv4,
            packet.encode(),
        ))
    }

    /// Unwraps an IPv4 packet from a frame, without address filtering.
    ///
    /// Returns `None` for non-IPv4 frames and undecodable packets. Address
    /// acceptance is a separate concern ([`IpInterface::accepts`]) because
    /// the ST-TCP backup deliberately processes packets addressed to the
    /// service IP it shares with the primary.
    pub fn decap(frame: &EthernetFrame) -> Option<Ipv4Packet> {
        if frame.ethertype != EtherType::Ipv4 {
            return None;
        }
        Ipv4Packet::decode(&frame.payload).ok()
    }

    /// Builds and sends an ICMP echo request from this interface.
    ///
    /// Returns `false` when the destination has no ARP entry.
    pub fn send_ping(&self, ctx: &mut NodeCtx<'_>, dst: Ipv4Addr, id: u16, seq: u16) -> bool {
        let msg = IcmpMessage::EchoRequest { id, seq };
        let pkt = Ipv4Packet::new(self.addr(), dst, IpProto::Icmp, msg.encode());
        match self.encap(&pkt) {
            Some(frame) => {
                ctx.send_frame(self.nic, frame);
                true
            }
            None => false,
        }
    }

    /// Handles an inbound ICMP packet: replies to echo requests addressed
    /// to us, and returns `Some((id, seq))` for echo replies addressed to
    /// us (so the caller's ping tracker can mark success).
    pub fn handle_icmp(&self, ctx: &mut NodeCtx<'_>, packet: &Ipv4Packet) -> Option<(u16, u16)> {
        if packet.proto != IpProto::Icmp || !self.accepts(packet.dst) {
            return None;
        }
        match IcmpMessage::decode(&packet.payload) {
            Ok(msg @ IcmpMessage::EchoRequest { .. }) => {
                let reply = msg.reply().expect("request always has a reply");
                let pkt = Ipv4Packet::new(packet.dst, packet.src, IpProto::Icmp, reply.encode());
                if let Some(frame) = self.encap(&pkt) {
                    ctx.send_frame(self.nic, frame);
                }
                None
            }
            Ok(IcmpMessage::EchoReply { id, seq }) => Some((id, seq)),
            Err(_) => None,
        }
    }

    /// Builds a frame carrying `payload` as the given IP protocol to `dst`,
    /// from this interface's primary address.
    ///
    /// Returns `None` when the destination has no ARP entry.
    pub fn frame_to(&self, dst: Ipv4Addr, proto: IpProto, payload: Bytes) -> Option<EthernetFrame> {
        self.frame_from_to(self.addr(), dst, proto, payload)
    }

    /// Like [`IpInterface::frame_to`] but with an explicit source address
    /// (the ST-TCP servers send from the shared service IP).
    pub fn frame_from_to(
        &self,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        proto: IpProto,
        payload: Bytes,
    ) -> Option<EthernetFrame> {
        let pkt = Ipv4Packet::new(src, dst, proto, payload);
        self.encap(&pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;
    use crate::rng::SimRng;
    use crate::time::SimTime;

    fn iface() -> IpInterface {
        let mut i = IpInterface::new(NicId(0), MacAddr::unicast(1), Ipv4Addr::new(10, 0, 0, 1));
        i.add_arp(Ipv4Addr::new(10, 0, 0, 9), MacAddr::unicast(9));
        i
    }

    #[test]
    fn alias_management() {
        let mut i = iface();
        let svc = Ipv4Addr::new(10, 0, 0, 100);
        assert!(!i.accepts(svc));
        i.add_alias(svc);
        assert!(i.accepts(svc));
        assert_eq!(i.addrs().len(), 2);
        i.add_alias(svc); // idempotent
        assert_eq!(i.addrs().len(), 2);
        i.remove_alias(svc);
        assert!(!i.accepts(svc));
        // Primary can't be removed.
        i.remove_alias(i.addr());
        assert!(i.accepts(Ipv4Addr::new(10, 0, 0, 1)));
    }

    #[test]
    fn encap_uses_arp() {
        let i = iface();
        let pkt = Ipv4Packet::new(
            i.addr(),
            Ipv4Addr::new(10, 0, 0, 9),
            IpProto::Tcp,
            Bytes::from_static(b"x"),
        );
        let frame = i.encap(&pkt).unwrap();
        assert_eq!(frame.dst, MacAddr::unicast(9));
        assert_eq!(frame.src, MacAddr::unicast(1));
        assert_eq!(IpInterface::decap(&frame).unwrap(), pkt);
    }

    #[test]
    fn encap_without_arp_entry_fails() {
        let i = iface();
        let pkt = Ipv4Packet::new(
            i.addr(),
            Ipv4Addr::new(10, 0, 0, 77),
            IpProto::Tcp,
            Bytes::new(),
        );
        assert!(i.encap(&pkt).is_none());
        assert!(i
            .frame_to(Ipv4Addr::new(10, 0, 0, 77), IpProto::Tcp, Bytes::new())
            .is_none());
    }

    #[test]
    fn decap_rejects_non_ip() {
        let f = EthernetFrame::new(
            MacAddr::unicast(1),
            MacAddr::unicast(2),
            EtherType::Experimental,
            Bytes::from_static(b"raw"),
        );
        assert!(IpInterface::decap(&f).is_none());
    }

    fn with_ctx<R>(f: impl FnOnce(&mut NodeCtx<'_>) -> R) -> (R, Vec<crate::node::Effect>) {
        let mut rng = SimRng::seed_from(1);
        let mut effects = Vec::new();
        let mut next = 0u64;
        let mut flight = crate::flight::FlightRecorder::new();
        let mut profiler = crate::profile::Profiler::new();
        let r = {
            let mut ctx = NodeCtx {
                now: SimTime::ZERO,
                node: NodeId(0),
                rng: &mut rng,
                effects: &mut effects,
                next_timer_id: &mut next,
                flight: &mut flight,
                profiler: &mut profiler,
            };
            f(&mut ctx)
        };
        (r, effects)
    }

    #[test]
    fn ping_request_emits_frame() {
        let i = iface();
        let (ok, effects) = with_ctx(|ctx| i.send_ping(ctx, Ipv4Addr::new(10, 0, 0, 9), 7, 1));
        assert!(ok);
        assert_eq!(effects.len(), 1);
    }

    #[test]
    fn ping_to_unknown_host_fails_cleanly() {
        let i = iface();
        let (ok, effects) = with_ctx(|ctx| i.send_ping(ctx, Ipv4Addr::new(1, 2, 3, 4), 7, 1));
        assert!(!ok);
        assert!(effects.is_empty());
    }

    #[test]
    fn echo_request_gets_replied() {
        let mut i = iface();
        i.add_arp(Ipv4Addr::new(10, 0, 0, 5), MacAddr::unicast(5));
        let req = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 5),
            i.addr(),
            IpProto::Icmp,
            IcmpMessage::EchoRequest { id: 3, seq: 4 }.encode(),
        );
        let (ret, effects) = with_ctx(|ctx| i.handle_icmp(ctx, &req));
        assert_eq!(ret, None);
        assert_eq!(effects.len(), 1, "reply frame queued");
    }

    #[test]
    fn echo_reply_is_reported() {
        let i = iface();
        let rep = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 9),
            i.addr(),
            IpProto::Icmp,
            IcmpMessage::EchoReply { id: 3, seq: 4 }.encode(),
        );
        let (ret, effects) = with_ctx(|ctx| i.handle_icmp(ctx, &rep));
        assert_eq!(ret, Some((3, 4)));
        assert!(effects.is_empty());
    }

    #[test]
    fn icmp_for_other_hosts_ignored() {
        let i = iface();
        let req = Ipv4Packet::new(
            Ipv4Addr::new(10, 0, 0, 9),
            Ipv4Addr::new(10, 0, 0, 77),
            IpProto::Icmp,
            IcmpMessage::EchoRequest { id: 1, seq: 1 }.encode(),
        );
        let (ret, effects) = with_ctx(|ctx| i.handle_icmp(ctx, &req));
        assert_eq!(ret, None);
        assert!(effects.is_empty());
    }

    #[test]
    fn frame_from_to_uses_explicit_source() {
        let i = iface();
        let svc = Ipv4Addr::new(10, 0, 0, 100);
        let f = i
            .frame_from_to(svc, Ipv4Addr::new(10, 0, 0, 9), IpProto::Tcp, Bytes::new())
            .unwrap();
        let pkt = IpInterface::decap(&f).unwrap();
        assert_eq!(pkt.src, svc);
    }
}
