//! # simnet — a deterministic discrete-event network simulator
//!
//! `simnet` provides the physical substrate the ST-TCP reproduction runs
//! on: hosts with NICs and power state, point-to-point Ethernet links with
//! latency/bandwidth/loss, a learning switch with multicast flooding (the
//! mechanism behind ST-TCP's traffic tap), RS-232 serial channels (the
//! second heartbeat link), an IPv4-lite layer with static ARP and ICMP
//! echo, and a fault-injection API covering every failure class in the
//! paper's Table 1.
//!
//! Everything runs single-threaded on a virtual clock. Given the same
//! seed, topology, and scripts, a run is bit-for-bit reproducible — which
//! is what makes failover-time measurements and failure-scenario tests
//! meaningful.
//!
//! ## Layers
//!
//! * [`time`] / [`event`] / [`rng`] — the simulation kernel.
//! * [`mac`] / [`frame`] / [`link`] / [`switch`] / [`serial`] — layer 2.
//! * [`ip`] / [`iplayer`] — layer 3 (IPv4-lite, static ARP, ICMP echo).
//! * [`node`] / [`host`] / [`world`] — hosts and the event loop.
//! * [`fault`] / [`trace`] / [`flight`] / [`profile`] — fault injection
//!   and observability: the human-readable trace, the causal flight
//!   recorder (both on the shared [`ring`] abstraction), and the
//!   per-component wall-clock profiler.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//! use bytes::Bytes;
//!
//! // A node that greets a peer once at startup.
//! struct Greeter { me: MacAddr, peer: MacAddr, got: usize }
//! impl Node for Greeter {
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         let f = EthernetFrame::new(self.me, self.peer, EtherType::Ipv4,
//!                                    Bytes::from_static(b"hi"));
//!         ctx.send_frame(NicId(0), f);
//!     }
//!     fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {
//!         self.got += 1;
//!     }
//!     fn on_timer(&mut self, _: &mut NodeCtx<'_>, _: TimerToken) {}
//! }
//!
//! let mut w = World::new(1);
//! let (ma, mb) = (MacAddr::unicast(1), MacAddr::unicast(2));
//! let a = w.add_node("a", Box::new(Greeter { me: ma, peer: mb, got: 0 }));
//! let b = w.add_node("b", Box::new(Greeter { me: mb, peer: ma, got: 0 }));
//! let na = w.add_nic(a, ma);
//! let nb = w.add_nic(b, mb);
//! w.connect_nodes((a, na), (b, nb), LinkParams::lan());
//! w.start();
//! w.run_until(SimTime::from_millis(1));
//! assert_eq!(w.node::<Greeter>(b).unwrap().got, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod flight;
pub mod frame;
pub mod host;
pub mod ip;
pub mod iplayer;
pub mod link;
pub mod mac;
pub mod node;
pub mod profile;
pub mod ring;
pub mod rng;
pub mod serial;
pub mod switch;
pub mod time;
pub mod trace;
pub mod world;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::flight::{FlightEvent, FlightKind, FlightRecorder, SpanId};
    pub use crate::frame::{EtherType, EthernetFrame};
    pub use crate::ip::{IcmpMessage, IpProto, Ipv4Packet};
    pub use crate::iplayer::IpInterface;
    pub use crate::link::{LinkDir, LinkId, LinkParams, SwitchId};
    pub use crate::mac::MacAddr;
    pub use crate::node::{NicId, Node, NodeCtx, NodeId, SerialPortId, TimerId, TimerToken};
    pub use crate::profile::Component;
    pub use crate::rng::SimRng;
    pub use crate::serial::{SerialId, SerialParams};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::world::World;
}
