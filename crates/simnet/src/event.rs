//! The deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`. The sequence number
//! guarantees that simultaneous events dequeue in exactly the order they
//! were scheduled, which makes entire simulation runs bit-reproducible.
//!
//! # Implementation: hierarchical timing wheel
//!
//! The queue is a 6-level × 64-slot hashed timing wheel over the µs
//! clock (level *l* has 64^l µs granularity, so the wheel spans
//! 2^36 µs ≈ 19 virtual hours ahead of its `elapsed` cursor), with two
//! escape hatches that keep the ordering contract *exact* rather than
//! approximate:
//!
//! * an **overflow** min-heap for events scheduled beyond the wheel's
//!   span (they migrate into the wheel, one 2^36 µs block at a time,
//!   when the wheel drains), and
//! * an **overdue** min-heap for events pushed *behind* the cursor.
//!   `peek_time` has to advance the cursor to the earliest queued event
//!   (a wheel cannot answer "what's next" without cascading), and the
//!   world may afterwards push at times between its own clock and that
//!   cursor; those land here and still pop first, in `(time, seq)`
//!   order.
//!
//! Slot routing XORs the event time with the cursor: the highest
//! differing 6-bit group picks the level, so a slot at level *l* only
//! ever holds events that agree with the cursor on all higher groups.
//! Consequences that the pop path relies on (and the differential
//! proptest at the bottom of this file checks against the old
//! `BinaryHeap` implementation, kept as the test oracle):
//!
//! * within one level, occupied slots are strictly after the cursor's
//!   own slot — no wraparound, so "lowest set bit in the occupancy
//!   bitmap" is the next slot in time;
//! * all events at level *l* precede all events at level *l+1*, so the
//!   lowest occupied level holds the globally earliest event;
//! * a level-0 slot holds events of exactly one µs tick, in insertion
//!   order (cascading re-inserts preserve relative order, and a
//!   cascaded batch always precedes later direct pushes), so draining a
//!   level-0 slot into the `pending` FIFO yields exact `(time, seq)`
//!   order without comparisons.

use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::frame::EthernetFrame;
use crate::link::{LinkDir, LinkId};
use crate::node::{NodeId, TimerId, TimerToken};
use crate::serial::{SerialDir, SerialId};
use crate::time::SimTime;

/// A simulation event.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A frame finishes propagating along a link.
    LinkArrival {
        link: LinkId,
        dir: LinkDir,
        frame: EthernetFrame,
    },
    /// A serial message finishes propagating along a channel.
    SerialArrival {
        serial: SerialId,
        dir: SerialDir,
        data: Bytes,
    },
    /// A node timer fires. `epoch` must match the node's current power
    /// epoch; timers armed before a power cycle are discarded.
    Timer {
        node: NodeId,
        id: TimerId,
        token: TimerToken,
        epoch: u64,
    },
    /// The power controller cuts power to a node.
    PowerOff { node: NodeId },
    /// The power controller restores power to a node.
    PowerOn { node: NodeId },
    /// A scripted callback (fault injection, workload step) runs against
    /// the whole world.
    Script { id: u64 },
}

struct Queued {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Bits per wheel level (64 slots).
const BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels.
const LEVELS: usize = 6;
/// The wheel's span in µs: times at or beyond `elapsed ^ SPAN` overflow.
const SPAN: u64 = 1 << (BITS * LEVELS);

/// A min-queue of events ordered by `(time, insertion order)`.
pub(crate) struct EventQueue {
    /// The wheel cursor (µs): every wheel/pending/overflow event is at
    /// `>= elapsed`, every overdue event is at `< elapsed`. Never
    /// decreases.
    elapsed: u64,
    slots: [[Vec<Queued>; SLOTS]; LEVELS],
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Events at exactly `elapsed`, in seq order.
    pending: VecDeque<Queued>,
    /// Events pushed behind the cursor (see module docs).
    overdue: BinaryHeap<Queued>,
    /// Events beyond the wheel's span.
    overflow: BinaryHeap<Queued>,
    seq: u64,
    len: usize,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            elapsed: 0,
            slots: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occupied: [0; LEVELS],
            pending: VecDeque::new(),
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.route(Queued { at, seq, ev });
    }

    /// Files one event into the container the cursor says it belongs in.
    fn route(&mut self, q: Queued) {
        let at = q.at.as_micros();
        if at < self.elapsed {
            self.overdue.push(q);
        } else if at == self.elapsed {
            self.pending.push_back(q);
        } else {
            let x = at ^ self.elapsed;
            if x >= SPAN {
                self.overflow.push(q);
            } else {
                // x > 0 and below SPAN: the highest set bit picks the level.
                let level = (63 - x.leading_zeros() as usize) / BITS;
                let slot = ((at >> (BITS * level)) & (SLOTS as u64 - 1)) as usize;
                self.slots[level][slot].push(q);
                self.occupied[level] |= 1 << slot;
            }
        }
    }

    /// Advances the cursor until the earliest event sits in `overdue`
    /// or `pending` (or the queue is empty): cascades higher-level
    /// slots downward and migrates an overflow block into the wheel
    /// when it drains.
    fn settle(&mut self) {
        loop {
            if !self.overdue.is_empty() || !self.pending.is_empty() {
                return;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: migrate the overflow's next 2^36 µs block.
                let Some(top) = self.overflow.peek() else {
                    return;
                };
                let base = top.at.as_micros() & !(SPAN - 1);
                debug_assert!(base >= self.elapsed, "overflow block behind cursor");
                self.elapsed = base;
                while let Some(top) = self.overflow.peek() {
                    if top.at.as_micros() ^ self.elapsed >= SPAN {
                        break;
                    }
                    // Heap pop order is (time, seq), so same-µs events
                    // append to their slot in seq order.
                    let q = self.overflow.pop().expect("peeked");
                    self.route(q);
                }
                continue;
            };
            // Occupied slots are strictly after the cursor's slot, so the
            // lowest set bit is the next slot in time.
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1 << slot);
            let mut items = std::mem::take(&mut self.slots[level][slot]);
            if level == 0 {
                // One exact µs tick, already in (time, seq) order.
                self.elapsed = items[0].at.as_micros();
                debug_assert!(items.iter().all(|q| q.at.as_micros() == self.elapsed));
                self.pending.extend(items.drain(..));
            } else {
                // Advance to the slot's base and spread its events over
                // the lower levels (in stored order, which re-appends
                // same-time events without reordering them).
                let width = BITS * level;
                let block = 1u64 << (width + BITS);
                let base = (self.elapsed & !(block - 1)) | ((slot as u64) << width);
                debug_assert!(base > self.elapsed, "cascade must advance the cursor");
                self.elapsed = base;
                for q in items.drain(..) {
                    self.route(q);
                }
            }
            // Hand the (now empty) slot vector its capacity back.
            self.slots[level][slot] = items;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.settle();
        // Overdue events are strictly behind the cursor, pending events
        // exactly at it — overdue first, in heap (time, seq) order.
        let q = match self.overdue.pop() {
            Some(q) => q,
            None => self.pending.pop_front()?,
        };
        self.len -= 1;
        Some((q.at, q.ev))
    }

    /// The earliest queued time. Exact (not a lower bound), which is
    /// what `World::run_until`'s stop condition needs; computing it may
    /// cascade wheel slots, hence `&mut`.
    pub(crate) fn peek_time(&mut self) -> Option<SimTime> {
        self.settle();
        match self.overdue.peek() {
            Some(q) => Some(q.at),
            None => self.pending.front().map(|q| q.at),
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The original `BinaryHeap` queue, kept as the differential-test
/// oracle: trivially correct by inspection, bitwise-identical pop
/// order is asserted against it.
#[cfg(test)]
pub(crate) struct HeapQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

#[cfg(test)]
impl HeapQueue {
    pub(crate) fn new() -> HeapQueue {
        HeapQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Queued { at, seq, ev });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|q| (q.at, q.ev))
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn timer(n: usize) -> Ev {
        Ev::Timer {
            node: NodeId(n),
            id: TimerId(n as u64),
            token: TimerToken(0),
            epoch: 0,
        }
    }

    fn tag_of(ev: &Ev) -> usize {
        match ev {
            Ev::Timer { node, .. } => node.0,
            _ => unreachable!("tests only queue timers"),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), timer(3));
        q.push(SimTime::from_millis(1), timer(1));
        q.push(SimTime::from_millis(2), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_millis())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for n in 0..10 {
            q.push(t, timer(n));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| tag_of(&ev))
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_overflow_and_come_back() {
        let mut q = EventQueue::new();
        // Beyond the 2^36 µs wheel span, in several blocks.
        q.push(SimTime::from_micros(3 * SPAN + 7), timer(3));
        q.push(SimTime::from_micros(SPAN + 5), timer(1));
        q.push(SimTime::from_micros(SPAN + 5), timer(2));
        q.push(SimTime::from_micros(42), timer(0));
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, ev)| (t.as_micros(), tag_of(&ev)))
            .collect();
        assert_eq!(
            order,
            vec![(42, 0), (SPAN + 5, 1), (SPAN + 5, 2), (3 * SPAN + 7, 3)]
        );
    }

    #[test]
    fn push_behind_cursor_after_peek_pops_first() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(10_000), timer(1));
        // Peeking advances the cursor to 10 000 µs.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(10_000)));
        // The world may still push earlier (its own clock lags the
        // cursor): these must pop first, in (time, seq) order.
        q.push(SimTime::from_micros(500), timer(2));
        q.push(SimTime::from_micros(200), timer(3));
        q.push(SimTime::from_micros(500), timer(4));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(200)));
        let order: Vec<(u64, usize)> = std::iter::from_fn(|| q.pop())
            .map(|(t, ev)| (t.as_micros(), tag_of(&ev)))
            .collect();
        assert_eq!(order, vec![(200, 3), (500, 2), (500, 4), (10_000, 1)]);
    }

    #[test]
    fn interleaved_pushes_at_one_tick_keep_seq_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(123_456);
        q.push(t, timer(0));
        q.push(t, timer(1));
        // Drain the first, then push more at the same (now current) tick.
        assert_eq!(q.pop().map(|(_, ev)| tag_of(&ev)), Some(0));
        q.push(t, timer(2));
        q.push(t, timer(3));
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| tag_of(&ev))
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    /// Deterministic heavy churn: an LCG-driven push/pop storm across
    /// every wheel level plus the overflow heap, diffed against the
    /// heap oracle pop for pop.
    #[test]
    fn storm_matches_heap_oracle() {
        let mut wheel = EventQueue::new();
        let mut oracle = HeapQueue::new();
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rand = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 11
        };
        let mut floor = 0u64; // pushes never go below the last pop (world contract)
        let mut tag = 0usize;
        for round in 0..50_000u64 {
            let r = rand();
            if r % 3 != 0 {
                // Mix of near, mid, far and same-tick times.
                let at = match r % 7 {
                    0 => floor,
                    1 => floor + r % 64,
                    2 => floor + r % 4_096,
                    3 => floor + r % 1_000_000,
                    4 => floor + r % (SPAN / 2),
                    _ => floor + r % (3 * SPAN),
                };
                let t = SimTime::from_micros(at);
                wheel.push(t, timer(tag));
                oracle.push(t, timer(tag));
                tag += 1;
            } else {
                let got = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
                let want = oracle.pop().map(|(t, ev)| (t, tag_of(&ev)));
                assert_eq!(got, want, "divergence at round {round}");
                if let Some((t, _)) = got {
                    floor = t.as_micros();
                }
            }
        }
        loop {
            let got = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
            let want = oracle.pop().map(|(t, ev)| (t, tag_of(&ev)));
            assert_eq!(got, want, "divergence during drain");
            if got.is_none() {
                break;
            }
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Push(u64),
        Pop,
        Peek,
    }

    /// Half the draws are pushes (spread over same-tick, per-level, and
    /// overflow time scales), a third pops, the rest peeks.
    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..9, 0u64..u64::MAX).prop_map(|(kind, raw)| match kind {
            0 => Op::Push(raw % 64),
            1 => Op::Push(raw % 4_096),
            2 => Op::Push(raw % 1_000_000),
            3 => Op::Push(raw % SPAN),
            4 => Op::Push(raw % (4 * SPAN)),
            5..=7 => Op::Pop,
            _ => Op::Peek,
        })
    }

    proptest! {
        /// Differential test: the wheel and the heap oracle agree on
        /// every peek and every pop — time *and* insertion order — for
        /// arbitrary interleaved workloads. Unlike the world (which
        /// never schedules into the past), this pushes at arbitrary
        /// times, so it also drives the overdue path hard.
        #[test]
        fn wheel_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 0..400)) {
            let mut wheel = EventQueue::new();
            let mut oracle = HeapQueue::new();
            let mut tag = 0usize;
            for op in ops {
                match op {
                    Op::Push(at) => {
                        let t = SimTime::from_micros(at);
                        wheel.push(t, timer(tag));
                        oracle.push(t, timer(tag));
                        tag += 1;
                    }
                    Op::Pop => {
                        let got = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
                        let want = oracle.pop().map(|(t, ev)| (t, tag_of(&ev)));
                        prop_assert_eq!(got, want);
                    }
                    Op::Peek => {
                        prop_assert_eq!(wheel.peek_time(), oracle.peek_time());
                    }
                }
            }
            loop {
                let got = wheel.pop().map(|(t, ev)| (t, tag_of(&ev)));
                let want = oracle.pop().map(|(t, ev)| (t, tag_of(&ev)));
                prop_assert_eq!(&got, &want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
