//! The deterministic event queue.
//!
//! Events are ordered by `(time, insertion sequence)`. The sequence number
//! guarantees that simultaneous events dequeue in exactly the order they
//! were scheduled, which makes entire simulation runs bit-reproducible.

use bytes::Bytes;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::frame::EthernetFrame;
use crate::link::{LinkDir, LinkId};
use crate::node::{NodeId, TimerId, TimerToken};
use crate::serial::{SerialDir, SerialId};
use crate::time::SimTime;

/// A simulation event.
#[derive(Debug)]
pub(crate) enum Ev {
    /// A frame finishes propagating along a link.
    LinkArrival {
        link: LinkId,
        dir: LinkDir,
        frame: EthernetFrame,
    },
    /// A serial message finishes propagating along a channel.
    SerialArrival {
        serial: SerialId,
        dir: SerialDir,
        data: Bytes,
    },
    /// A node timer fires. `epoch` must match the node's current power
    /// epoch; timers armed before a power cycle are discarded.
    Timer {
        node: NodeId,
        id: TimerId,
        token: TimerToken,
        epoch: u64,
    },
    /// The power controller cuts power to a node.
    PowerOff { node: NodeId },
    /// The power controller restores power to a node.
    PowerOn { node: NodeId },
    /// A scripted callback (fault injection, workload step) runs against
    /// the whole world.
    Script { id: u64 },
}

struct Queued {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Queued {}

impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Queued {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-queue of events ordered by `(time, insertion order)`.
pub(crate) struct EventQueue {
    heap: BinaryHeap<Queued>,
    seq: u64,
}

impl EventQueue {
    pub(crate) fn new() -> EventQueue {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Queued { at, seq, ev });
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, Ev)> {
        self.heap.pop().map(|q| (q.at, q.ev))
    }

    pub(crate) fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|q| q.at)
    }

    pub(crate) fn len(&self) -> usize {
        self.heap.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(n: usize) -> Ev {
        Ev::Timer {
            node: NodeId(n),
            id: TimerId(n as u64),
            token: TimerToken(0),
            epoch: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_millis(3), timer(3));
        q.push(SimTime::from_millis(1), timer(1));
        q.push(SimTime::from_millis(2), timer(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|(t, _)| t.as_millis())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for n in 0..10 {
            q.push(t, timer(n));
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|(_, ev)| match ev {
                Ev::Timer { node, .. } => node.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_millis(7), timer(0));
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(7)));
        assert_eq!(q.len(), 1);
        let _ = q.pop();
        assert!(q.is_empty());
    }
}
