//! The one bounded-ring abstraction shared by every in-sim log.
//!
//! Both the human-readable trace ([`crate::trace::Trace`]) and the
//! flight recorder ([`crate::flight::FlightRecorder`]) need the same
//! thing: an append-only log that, once a capacity is set, keeps the
//! *newest* records, counts what it evicted, and never reallocates on
//! the hot path. [`Ring`] is that abstraction — storage is reserved up
//! front when a capacity is set, and a push at capacity pops the oldest
//! record before appending, so a bounded ring's backing buffer never
//! grows after construction.

use std::collections::VecDeque;

/// A bounded (or unbounded) append-only ring that keeps the newest
/// items and counts evictions.
#[derive(Debug, Clone)]
pub struct Ring<T> {
    items: VecDeque<T>,
    /// Maximum items kept; `None` means unbounded.
    capacity: Option<usize>,
    /// Items evicted to honour the capacity.
    dropped: u64,
}

impl<T> Default for Ring<T> {
    fn default() -> Ring<T> {
        Ring::new()
    }
}

impl<T> Ring<T> {
    /// Creates an empty, unbounded ring.
    pub fn new() -> Ring<T> {
        Ring {
            items: VecDeque::new(),
            capacity: None,
            dropped: 0,
        }
    }

    /// Creates an empty ring bounded to `capacity` items, with the
    /// backing storage reserved up front so pushes never reallocate.
    pub fn bounded(capacity: usize) -> Ring<T> {
        Ring {
            items: VecDeque::with_capacity(capacity),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Bounds (or unbounds, with `None`) the ring; excess oldest items
    /// are evicted immediately and the backing storage is reserved so
    /// subsequent pushes stay allocation-free.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(cap) = capacity {
            while self.items.len() > cap {
                self.items.pop_front();
                self.dropped += 1;
            }
            self.items.reserve(cap - self.items.len());
        }
    }

    /// The configured bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Items evicted so far to honour the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Appends an item, evicting the oldest first when at capacity.
    /// A bounded ring performs no allocation here.
    pub fn push(&mut self, item: T) {
        match self.capacity {
            Some(0) => self.dropped += 1,
            Some(cap) => {
                if self.items.len() == cap {
                    self.items.pop_front();
                    self.dropped += 1;
                }
                self.items.push_back(item);
            }
            None => self.items.push_back(item),
        }
    }

    /// The retained items, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        self.items.iter()
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no items are retained.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Discards every retained item (the eviction counter is kept).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_keeps_everything() {
        let mut r = Ring::new();
        for i in 0..100u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 100);
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.capacity(), None);
    }

    #[test]
    fn wraparound_at_capacity_keeps_newest_and_counts() {
        let mut r = Ring::bounded(3);
        for i in 0..10u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 7);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn bounded_ring_never_grows_its_buffer() {
        let mut r = Ring::bounded(8);
        let before = r.items.capacity();
        for i in 0..1000u32 {
            r.push(i);
        }
        assert_eq!(r.items.capacity(), before, "push reallocated at capacity");
        assert_eq!(r.len(), 8);
    }

    #[test]
    fn capacity_can_be_tightened_and_removed_live() {
        let mut r = Ring::new();
        for i in 0..5u32 {
            r.push(i);
        }
        r.set_capacity(Some(2));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![3, 4]);
        r.set_capacity(None);
        for i in 5..20u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 17);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = Ring::bounded(0);
        r.push(1u32);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn clear_keeps_the_eviction_counter() {
        let mut r = Ring::bounded(2);
        for i in 0..4u32 {
            r.push(i);
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }
}
