//! The always-on flight recorder: causally-linked spans over the
//! datapath.
//!
//! Every host owns a fixed-capacity [`Ring`](crate::ring::Ring) of
//! [`FlightEvent`]s, recorded from inside node dispatch with zero
//! allocation (events are `Copy`, the rings are reserved up front).
//! When a run ends in an invariant violation, the harness snapshots the
//! rings — the last N ms of segment, heartbeat, fence, fault, and
//! verdict activity, causally linked by span id — and the `obs` crate
//! renders the snapshot as schema-versioned JSON and as a Chrome
//! trace-event file loadable in `ui.perfetto.dev`.
//!
//! # Span identity
//!
//! A [`SpanId`] is a deterministic hash of *wire-observable* content:
//! both endpoints of a segment (or a heartbeat, or a fence round)
//! derive the same id independently, so the send and delivery of one
//! message share a span with no wire-format change and no shared
//! mutable state. Ids are therefore byte-identical across runs and
//! across `--threads` settings (the simulation itself is
//! single-threaded per world; workers only fan out across seeds).

use core::fmt;

use crate::node::NodeId;
use crate::ring::Ring;
use crate::time::{SimDuration, SimTime};

/// Default per-host ring capacity, in events. At chaos traffic rates
/// (~1 segment per ms per direction) this holds several virtual
/// seconds of history per host.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 1024;

/// A deterministic causal span identifier. `SpanId(0)` is reserved as
/// [`SpanId::NONE`] (no span / no parent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The null span: "no parent" / "not part of a span".
    pub const NONE: SpanId = SpanId(0);

    /// FNV-1a over little-endian words, with a domain tag as the first
    /// word so different span families never collide structurally. The
    /// null value is remapped so a real span is never [`SpanId::NONE`].
    fn fnv(parts: &[u64]) -> SpanId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &p in parts {
            for b in p.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        }
        if h == 0 {
            h = 0x5eed;
        }
        SpanId(h)
    }

    /// Span of one TCP segment, derived from its header: both the
    /// sender and the receiver compute the same id from the bytes on
    /// the wire.
    pub fn segment(src_port: u16, dst_port: u16, seq: u32, flags: u8) -> SpanId {
        SpanId::fnv(&[
            1,
            u64::from(src_port),
            u64::from(dst_port),
            u64::from(seq),
            u64::from(flags),
        ])
    }

    /// Span of one heartbeat emission, derived from the payload header
    /// (sender role, rank, sequence number) — emit and every receive of
    /// the same round share it.
    pub fn heartbeat(role: u8, rank: u8, seqno: u32) -> SpanId {
        SpanId::fnv(&[2, u64::from(role), u64::from(rank), u64::from(seqno)])
    }

    /// Span of one fencing round, derived from `(epoch, target_rank)` —
    /// the request, every ack, and the commit share it.
    pub fn fence(epoch: u64, target_rank: u8) -> SpanId {
        SpanId::fnv(&[3, epoch, u64::from(target_rank)])
    }

    /// Span of one injected fault, derived from its injection index.
    pub fn fault(index: u64) -> SpanId {
        SpanId::fnv(&[4, index])
    }

    /// Span of one failure verdict, derived from the deciding node and
    /// the virtual time of the decision (both deterministic).
    pub fn verdict(node: u64, at_us: u64) -> SpanId {
        SpanId::fnv(&[5, node, at_us])
    }

    /// True for the null span.
    pub fn is_none(self) -> bool {
        self == SpanId::NONE
    }

    /// Parses the 16-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<SpanId> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(SpanId)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// What happened, with the numeric arguments the dump schema carries.
/// All variants are `Copy` so recording never allocates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A TCP segment left a node.
    SegSend {
        /// Connection key: `src_port << 16 | dst_port` as seen by the sender.
        conn: u32,
        /// Sequence number from the header.
        seq: u32,
        /// Payload length in bytes.
        len: u32,
        /// Header flag bits (the TCP flag-byte encoding).
        flags: u8,
    },
    /// A TCP segment reached node logic.
    SegDeliver {
        /// Connection key: `src_port << 16 | dst_port` as on the wire.
        conn: u32,
        /// Sequence number from the header.
        seq: u32,
        /// Payload length in bytes.
        len: u32,
        /// Header flag bits.
        flags: u8,
    },
    /// An acknowledgement was processed for a span's segment.
    SegAck {
        /// Connection key of the acked direction.
        conn: u32,
        /// Cumulative ack number.
        ack: u32,
    },
    /// A heartbeat round was emitted on one link.
    HbEmit {
        /// Heartbeat sequence number.
        seqno: u32,
        /// Which link (0 = LAN, 1 = serial, …).
        link: u8,
        /// Wire bytes of this emission.
        bytes: u32,
        /// Connection records carried.
        conns: u32,
    },
    /// A heartbeat was received and processed.
    HbRecv {
        /// Heartbeat sequence number.
        seqno: u32,
        /// Which link it arrived on.
        link: u8,
    },
    /// A fencing round was requested.
    FenceRequest {
        /// Fencing epoch.
        epoch: u64,
        /// Rank being fenced.
        target_rank: u8,
    },
    /// A fencing vote arrived.
    FenceAck {
        /// Fencing epoch.
        epoch: u64,
        /// Rank being fenced.
        target_rank: u8,
        /// Rank of the voter.
        voter_rank: u8,
        /// Whether the vote granted the fence (1) or refused it (0).
        granted: bool,
    },
    /// A fencing round committed.
    FenceCommit {
        /// Fencing epoch.
        epoch: u64,
        /// Rank that was fenced.
        target_rank: u8,
    },
    /// A fault was injected into the world.
    Fault {
        /// Index into [`crate::world::World::faults`].
        index: u32,
    },
    /// A node declared a peer failed.
    Verdict {
        /// Stable numeric code of the failure reason (defined by the
        /// layer that records the verdict).
        reason: u32,
    },
    /// A STONITH power-off was commanded.
    Stonith {
        /// The node being powered off.
        target: u32,
    },
    /// A node took over the service.
    Takeover {
        /// Connections adopted.
        conns: u32,
    },
}

/// `(kind name, field names)` for every [`FlightKind`] variant — the
/// dump schema, used by `obs` for validation and round-tripping.
pub const FLIGHT_KIND_SPECS: &[(&str, &[&str])] = &[
    ("seg_send", &["conn", "seq", "len", "flags"]),
    ("seg_deliver", &["conn", "seq", "len", "flags"]),
    ("seg_ack", &["conn", "ack"]),
    ("hb_emit", &["seqno", "link", "bytes", "conns"]),
    ("hb_recv", &["seqno", "link"]),
    ("fence_request", &["epoch", "target_rank"]),
    (
        "fence_ack",
        &["epoch", "target_rank", "voter_rank", "granted"],
    ),
    ("fence_commit", &["epoch", "target_rank"]),
    ("fault", &["index"]),
    ("verdict", &["reason"]),
    ("stonith", &["target"]),
    ("takeover", &["conns"]),
];

impl FlightKind {
    /// Stable schema name of this variant.
    pub fn name(&self) -> &'static str {
        match self {
            FlightKind::SegSend { .. } => "seg_send",
            FlightKind::SegDeliver { .. } => "seg_deliver",
            FlightKind::SegAck { .. } => "seg_ack",
            FlightKind::HbEmit { .. } => "hb_emit",
            FlightKind::HbRecv { .. } => "hb_recv",
            FlightKind::FenceRequest { .. } => "fence_request",
            FlightKind::FenceAck { .. } => "fence_ack",
            FlightKind::FenceCommit { .. } => "fence_commit",
            FlightKind::Fault { .. } => "fault",
            FlightKind::Verdict { .. } => "verdict",
            FlightKind::Stonith { .. } => "stonith",
            FlightKind::Takeover { .. } => "takeover",
        }
    }

    /// The numeric arguments, in schema order. Cold path only (dump
    /// rendering); the hot path stores the `Copy` variant itself.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            FlightKind::SegSend {
                conn,
                seq,
                len,
                flags,
            } => vec![
                ("conn", u64::from(conn)),
                ("seq", u64::from(seq)),
                ("len", u64::from(len)),
                ("flags", u64::from(flags)),
            ],
            FlightKind::SegDeliver {
                conn,
                seq,
                len,
                flags,
            } => vec![
                ("conn", u64::from(conn)),
                ("seq", u64::from(seq)),
                ("len", u64::from(len)),
                ("flags", u64::from(flags)),
            ],
            FlightKind::SegAck { conn, ack } => {
                vec![("conn", u64::from(conn)), ("ack", u64::from(ack))]
            }
            FlightKind::HbEmit {
                seqno,
                link,
                bytes,
                conns,
            } => vec![
                ("seqno", u64::from(seqno)),
                ("link", u64::from(link)),
                ("bytes", u64::from(bytes)),
                ("conns", u64::from(conns)),
            ],
            FlightKind::HbRecv { seqno, link } => {
                vec![("seqno", u64::from(seqno)), ("link", u64::from(link))]
            }
            FlightKind::FenceRequest { epoch, target_rank } => {
                vec![("epoch", epoch), ("target_rank", u64::from(target_rank))]
            }
            FlightKind::FenceAck {
                epoch,
                target_rank,
                voter_rank,
                granted,
            } => vec![
                ("epoch", epoch),
                ("target_rank", u64::from(target_rank)),
                ("voter_rank", u64::from(voter_rank)),
                ("granted", u64::from(granted)),
            ],
            FlightKind::FenceCommit { epoch, target_rank } => {
                vec![("epoch", epoch), ("target_rank", u64::from(target_rank))]
            }
            FlightKind::Fault { index } => vec![("index", u64::from(index))],
            FlightKind::Verdict { reason } => vec![("reason", u64::from(reason))],
            FlightKind::Stonith { target } => vec![("target", u64::from(target))],
            FlightKind::Takeover { conns } => vec![("conns", u64::from(conns))],
        }
    }

    /// Rebuilds a variant from its schema name and a field lookup —
    /// the inverse of [`FlightKind::name`] + [`FlightKind::fields`],
    /// used when parsing a dump back. Returns `None` for an unknown
    /// name or a missing field.
    pub fn from_fields(name: &str, get: &dyn Fn(&str) -> Option<u64>) -> Option<FlightKind> {
        let f = |k: &str| get(k);
        Some(match name {
            "seg_send" => FlightKind::SegSend {
                conn: f("conn")? as u32,
                seq: f("seq")? as u32,
                len: f("len")? as u32,
                flags: f("flags")? as u8,
            },
            "seg_deliver" => FlightKind::SegDeliver {
                conn: f("conn")? as u32,
                seq: f("seq")? as u32,
                len: f("len")? as u32,
                flags: f("flags")? as u8,
            },
            "seg_ack" => FlightKind::SegAck {
                conn: f("conn")? as u32,
                ack: f("ack")? as u32,
            },
            "hb_emit" => FlightKind::HbEmit {
                seqno: f("seqno")? as u32,
                link: f("link")? as u8,
                bytes: f("bytes")? as u32,
                conns: f("conns")? as u32,
            },
            "hb_recv" => FlightKind::HbRecv {
                seqno: f("seqno")? as u32,
                link: f("link")? as u8,
            },
            "fence_request" => FlightKind::FenceRequest {
                epoch: f("epoch")?,
                target_rank: f("target_rank")? as u8,
            },
            "fence_ack" => FlightKind::FenceAck {
                epoch: f("epoch")?,
                target_rank: f("target_rank")? as u8,
                voter_rank: f("voter_rank")? as u8,
                granted: f("granted")? != 0,
            },
            "fence_commit" => FlightKind::FenceCommit {
                epoch: f("epoch")?,
                target_rank: f("target_rank")? as u8,
            },
            "fault" => FlightKind::Fault {
                index: f("index")? as u32,
            },
            "verdict" => FlightKind::Verdict {
                reason: f("reason")? as u32,
            },
            "stonith" => FlightKind::Stonith {
                target: f("target")? as u32,
            },
            "takeover" => FlightKind::Takeover {
                conns: f("conns")? as u32,
            },
            _ => return None,
        })
    }
}

/// One recorded event. `Copy`, so recording is a struct store into a
/// pre-reserved ring — no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global record sequence number: the total order across all hosts.
    pub seq: u64,
    /// Virtual time of the event.
    pub time: SimTime,
    /// The recording node; `None` for world-level events (faults).
    pub node: Option<NodeId>,
    /// The causal span this event belongs to.
    pub span: SpanId,
    /// The span that caused this one ([`SpanId::NONE`] for roots).
    pub parent: SpanId,
    /// What happened.
    pub kind: FlightKind,
}

/// A captured flight-recorder snapshot, ready for a renderer: the
/// causally-linked events plus the host names their `node` ids index
/// (and the tail window that selected them, for the dump header).
///
/// Lives in `simnet` so harnesses can capture without depending on a
/// serializer; the `obs` crate renders it to JSON and Chrome trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlightSnapshot {
    /// The selected events, in global record order.
    pub events: Vec<FlightEvent>,
    /// `hosts[i]` names node `i`.
    pub hosts: Vec<String>,
    /// The tail window the capture used, in milliseconds (`None` when
    /// the full retained history was kept).
    pub window_ms: Option<u64>,
}

/// Per-host flight-recorder rings plus the global sequence counter.
///
/// Ring 0 belongs to the world (fault injections); ring `i + 1` to
/// node `i`. All rings share one capacity so the recorder's memory is
/// `O(hosts × capacity)` regardless of run length.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    rings: Vec<Ring<FlightEvent>>,
    capacity: usize,
    next_seq: u64,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Creates a recorder with the default per-host capacity and the
    /// world ring only; host rings are added as nodes are created.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            rings: vec![Ring::bounded(DEFAULT_FLIGHT_CAPACITY)],
            capacity: DEFAULT_FLIGHT_CAPACITY,
            next_seq: 0,
        }
    }

    /// Registers one more host ring (called by the world per node).
    pub(crate) fn add_host(&mut self) {
        self.rings.push(Ring::bounded(self.capacity));
    }

    /// Sets the per-host ring capacity, applied to every existing ring
    /// (evicting oldest records if tightening) and to future hosts.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        for r in &mut self.rings {
            r.set_capacity(Some(capacity));
        }
    }

    /// The per-host ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event. Zero-allocation: a sequence-number bump and a
    /// `Copy` store into the owner's pre-reserved ring.
    pub fn record(
        &mut self,
        node: Option<NodeId>,
        time: SimTime,
        span: SpanId,
        parent: SpanId,
        kind: FlightKind,
    ) {
        let idx = match node {
            Some(n) if n.0 + 1 < self.rings.len() => n.0 + 1,
            Some(_) => 0, // defensive: unknown node falls into the world ring
            None => 0,
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rings[idx].push(FlightEvent {
            seq,
            time,
            node,
            span,
            parent,
            kind,
        });
    }

    /// Total events recorded (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Total events evicted across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(Ring::dropped).sum()
    }

    /// Total events currently retained across all rings.
    pub fn len(&self) -> usize {
        self.rings.iter().map(Ring::len).sum()
    }

    /// True if no events are retained.
    pub fn is_empty(&self) -> bool {
        self.rings.iter().all(Ring::is_empty)
    }

    /// Merges every ring into one record-order sequence, keeping only
    /// events within `window` of the newest event (pass `None` for
    /// everything retained). This is the dump the harness writes when a
    /// run violates an invariant.
    pub fn snapshot(&self, window: Option<SimDuration>) -> Vec<FlightEvent> {
        let mut out: Vec<FlightEvent> = self.rings.iter().flat_map(|r| r.iter().copied()).collect();
        out.sort_by_key(|e| e.seq);
        if let Some(w) = window {
            if let Some(&last) = out.last() {
                out.retain(|e| last.time.saturating_since(e.time) <= w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_ids_are_deterministic_and_domain_separated() {
        let a = SpanId::segment(80, 4000, 17, 0b10000);
        let b = SpanId::segment(80, 4000, 17, 0b10000);
        assert_eq!(a, b);
        assert_ne!(a, SpanId::segment(80, 4000, 18, 0b10000));
        // A heartbeat span never structurally collides with a fault
        // span of the same raw words.
        assert_ne!(SpanId::heartbeat(1, 0, 7), SpanId::fault(7));
        assert!(!a.is_none());
        assert!(SpanId::NONE.is_none());
    }

    #[test]
    fn span_hex_round_trips() {
        let s = SpanId::fence(3, 1);
        assert_eq!(SpanId::from_hex(&s.to_string()), Some(s));
        assert_eq!(s.to_string().len(), 16);
        assert!(SpanId::from_hex("xyz").is_none());
        assert!(SpanId::from_hex("00").is_none());
    }

    #[test]
    fn kind_fields_round_trip_through_the_schema() {
        let kinds = [
            FlightKind::SegSend {
                conn: (80 << 16) | 4000,
                seq: 1234,
                len: 512,
                flags: 0b11000,
            },
            FlightKind::SegDeliver {
                conn: 9,
                seq: 0,
                len: 0,
                flags: 2,
            },
            FlightKind::SegAck { conn: 9, ack: 77 },
            FlightKind::HbEmit {
                seqno: 41,
                link: 0,
                bytes: 34,
                conns: 1,
            },
            FlightKind::HbRecv { seqno: 41, link: 1 },
            FlightKind::FenceRequest {
                epoch: 2,
                target_rank: 0,
            },
            FlightKind::FenceAck {
                epoch: 2,
                target_rank: 0,
                voter_rank: 2,
                granted: true,
            },
            FlightKind::FenceCommit {
                epoch: 2,
                target_rank: 0,
            },
            FlightKind::Fault { index: 0 },
            FlightKind::Verdict { reason: 3 },
            FlightKind::Stonith { target: 1 },
            FlightKind::Takeover { conns: 4 },
        ];
        assert_eq!(kinds.len(), FLIGHT_KIND_SPECS.len());
        for k in kinds {
            let fields = k.fields();
            let spec = FLIGHT_KIND_SPECS
                .iter()
                .find(|(n, _)| *n == k.name())
                .expect("kind in spec table");
            let names: Vec<&str> = fields.iter().map(|&(n, _)| n).collect();
            assert_eq!(&names[..], spec.1, "field order matches spec");
            let get = |name: &str| fields.iter().find(|&&(n, _)| n == name).map(|&(_, v)| v);
            assert_eq!(FlightKind::from_fields(k.name(), &get), Some(k));
        }
        assert_eq!(FlightKind::from_fields("nope", &|_| Some(0)), None);
    }

    #[test]
    fn recorder_routes_by_node_and_snapshots_in_record_order() {
        let mut fr = FlightRecorder::new();
        fr.add_host();
        fr.add_host();
        fr.record(
            None,
            SimTime::from_millis(1),
            SpanId::fault(0),
            SpanId::NONE,
            FlightKind::Fault { index: 0 },
        );
        fr.record(
            Some(NodeId(1)),
            SimTime::from_millis(2),
            SpanId::heartbeat(1, 0, 5),
            SpanId::NONE,
            FlightKind::HbEmit {
                seqno: 5,
                link: 0,
                bytes: 34,
                conns: 1,
            },
        );
        fr.record(
            Some(NodeId(0)),
            SimTime::from_millis(3),
            SpanId::heartbeat(1, 0, 5),
            SpanId::NONE,
            FlightKind::HbRecv { seqno: 5, link: 0 },
        );
        let snap = fr.snapshot(None);
        assert_eq!(snap.len(), 3);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(snap[1].span, snap[2].span, "emit and recv share a span");
        assert_eq!(fr.recorded(), 3);
        assert_eq!(fr.dropped(), 0);
    }

    #[test]
    fn snapshot_window_keeps_only_the_tail() {
        let mut fr = FlightRecorder::new();
        for i in 0..10u64 {
            fr.record(
                None,
                SimTime::from_millis(i * 100),
                SpanId::fault(i),
                SpanId::NONE,
                FlightKind::Fault { index: i as u32 },
            );
        }
        let tail = fr.snapshot(Some(SimDuration::from_millis(250)));
        let times: Vec<u64> = tail.iter().map(|e| e.time.as_millis()).collect();
        assert_eq!(times, vec![700, 800, 900]);
        assert_eq!(fr.snapshot(None).len(), 10);
    }

    #[test]
    fn per_host_rings_wrap_independently() {
        let mut fr = FlightRecorder::new();
        fr.add_host();
        fr.set_capacity(4);
        for i in 0..20u64 {
            fr.record(
                Some(NodeId(0)),
                SimTime::from_millis(i),
                SpanId::fault(i),
                SpanId::NONE,
                FlightKind::Fault { index: i as u32 },
            );
        }
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.dropped(), 16);
        let snap = fr.snapshot(None);
        assert_eq!(snap.first().unwrap().seq, 16, "oldest retained is #16");
    }
}
