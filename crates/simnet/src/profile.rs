//! Per-component wall-clock attribution of simulation work.
//!
//! Every event-loop dispatch is attributed to a fixed component bucket
//! — the kernel (queue + effect plumbing), the TCP stack, the ST-TCP
//! server layer, the standby pool, or the application — via an
//! enter/exit scope stack. Exits subtract child time from the parent,
//! so each bucket's `self_ns` is *exclusive* time and the buckets sum
//! to the run's total measured time.
//!
//! Measurement is observational only: [`Profiler::enter`] /
//! [`Profiler::exit`] read the host clock but never feed anything back
//! into simulation state, so enabling the profiler cannot perturb
//! virtual-time determinism. It is disabled by default; when disabled,
//! enter/exit are branch-only no-ops.

use std::time::Instant;

/// The fixed attribution buckets. `Kernel` is everything inside the
/// world's event loop that is not inside a node callback; the rest are
/// set per node (and refined by in-callback sub-scopes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// The simulation kernel: queue, links, switches, effect plumbing.
    Kernel,
    /// The TCP endpoint work inside a node callback.
    Tcp,
    /// The ST-TCP server layer (heartbeats, hold buffer, failover).
    Sttcp,
    /// The standby-pool layer (membership, fencing, rank logic).
    Pool,
    /// Application logic (clients, echo/download apps).
    App,
    /// TCP deadline scheduling: timer-wheel maintenance (deadline
    /// sync + next-deadline scans) and due-socket timer dispatch.
    TcpWheel,
    /// TCP egress polling: draining pending segments from endpoints.
    TcpPoll,
    /// Heartbeat frame construction and encoding.
    HbEncode,
    /// Anything not otherwise attributed.
    Other,
}

impl Component {
    /// Every bucket, in report order.
    pub const ALL: [Component; 9] = [
        Component::Kernel,
        Component::Tcp,
        Component::Sttcp,
        Component::Pool,
        Component::App,
        Component::TcpWheel,
        Component::TcpPoll,
        Component::HbEncode,
        Component::Other,
    ];

    /// Stable report key.
    pub fn key(self) -> &'static str {
        match self {
            Component::Kernel => "simnet",
            Component::Tcp => "tcp",
            Component::Sttcp => "sttcp",
            Component::Pool => "pool",
            Component::App => "app",
            Component::TcpWheel => "tcp_wheel",
            Component::TcpPoll => "tcp_poll",
            Component::HbEncode => "hb_encode",
            Component::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            Component::Kernel => 0,
            Component::Tcp => 1,
            Component::Sttcp => 2,
            Component::Pool => 3,
            Component::App => 4,
            Component::TcpWheel => 5,
            Component::TcpPoll => 6,
            Component::HbEncode => 7,
            Component::Other => 8,
        }
    }
}

/// Accumulated measurements for one bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ComponentStats {
    /// Scopes entered (event dispatches, or sub-scopes).
    pub scopes: u64,
    /// Exclusive wall-clock nanoseconds (child scopes subtracted).
    pub self_ns: u64,
    /// Inclusive wall-clock nanoseconds.
    pub total_ns: u64,
}

#[derive(Debug)]
struct Frame {
    comp: Component,
    start: Instant,
    child_ns: u64,
}

/// The scope-stack profiler. See the [module docs](self).
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    stats: [ComponentStats; 9],
    stack: Vec<Frame>,
}

impl Profiler {
    /// Creates a disabled profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Enables or disables measurement. Toggle only between runs — a
    /// mid-scope toggle orphans the open scopes (harmless, but their
    /// time is lost).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
        if !on {
            self.stack.clear();
        }
    }

    /// Whether measurement is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a scope attributed to `comp`. No-op when disabled.
    pub fn enter(&mut self, comp: Component) {
        if self.enabled {
            self.stack.push(Frame {
                comp,
                start: Instant::now(),
                child_ns: 0,
            });
        }
    }

    /// Closes the innermost open scope, charging its exclusive time to
    /// its bucket and its inclusive time to the parent's child total.
    /// No-op when disabled or when no scope is open.
    pub fn exit(&mut self) {
        if !self.enabled {
            return;
        }
        let Some(frame) = self.stack.pop() else {
            return;
        };
        let elapsed = frame.start.elapsed().as_nanos() as u64;
        let s = &mut self.stats[frame.comp.index()];
        s.scopes += 1;
        s.total_ns += elapsed;
        s.self_ns += elapsed.saturating_sub(frame.child_ns);
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += elapsed;
        }
    }

    /// The accumulated measurements for one bucket.
    pub fn stats(&self, comp: Component) -> ComponentStats {
        self.stats[comp.index()]
    }

    /// Sum of exclusive time across every bucket — the run's total
    /// measured wall-clock time.
    pub fn total_self_ns(&self) -> u64 {
        self.stats.iter().map(|s| s.self_ns).sum()
    }

    /// Clears every measurement (the enabled flag is kept).
    pub fn reset(&mut self) {
        self.stats = [ComponentStats::default(); 9];
        self.stack.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new();
        p.enter(Component::Kernel);
        p.exit();
        assert_eq!(p.stats(Component::Kernel).scopes, 0);
        assert_eq!(p.total_self_ns(), 0);
    }

    #[test]
    fn nested_scopes_charge_exclusive_time_to_each_bucket() {
        let mut p = Profiler::new();
        p.set_enabled(true);
        p.enter(Component::Kernel);
        p.enter(Component::Tcp);
        // Burn a little measurable time inside the child scope.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        assert!(x > 0);
        p.exit();
        p.exit();
        let kernel = p.stats(Component::Kernel);
        let tcp = p.stats(Component::Tcp);
        assert_eq!(kernel.scopes, 1);
        assert_eq!(tcp.scopes, 1);
        assert!(kernel.total_ns >= tcp.total_ns, "parent includes child");
        assert!(
            kernel.self_ns <= kernel.total_ns,
            "exclusive never exceeds inclusive"
        );
        // Exclusive times sum to the outermost inclusive time (within
        // measurement noise they are exactly complementary by
        // construction: self = total - children).
        assert_eq!(p.total_self_ns(), kernel.self_ns + tcp.self_ns);
    }

    #[test]
    fn unbalanced_exit_is_a_no_op() {
        let mut p = Profiler::new();
        p.set_enabled(true);
        p.exit();
        assert_eq!(p.total_self_ns(), 0);
    }

    #[test]
    fn reset_clears_stats_and_keeps_enabled() {
        let mut p = Profiler::new();
        p.set_enabled(true);
        p.enter(Component::App);
        p.exit();
        assert_eq!(p.stats(Component::App).scopes, 1);
        p.reset();
        assert_eq!(p.stats(Component::App).scopes, 0);
        assert!(p.enabled());
    }

    #[test]
    fn component_keys_are_stable_and_distinct() {
        let keys: Vec<&str> = Component::ALL.iter().map(|c| c.key()).collect();
        assert_eq!(
            keys,
            vec![
                "simnet",
                "tcp",
                "sttcp",
                "pool",
                "app",
                "tcp_wheel",
                "tcp_poll",
                "hb_encode",
                "other"
            ]
        );
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }
}
