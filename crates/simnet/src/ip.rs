//! IPv4-lite: packet format, internet checksum, and ICMP echo.
//!
//! This is a deliberately small IPv4: 20-byte header with no options, no
//! fragmentation (the simulator delivers whole frames), and a fixed
//! protocol set. It is enough to carry TCP, ICMP echo (the gateway-ping
//! failure detector of paper §4.3), and the ST-TCP heartbeat, while still
//! having a real wire encoding with a verified checksum.

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;
use std::net::Ipv4Addr;

/// Length of the (option-less) IPv4 header in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// The transport protocol carried by an [`Ipv4Packet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IpProto {
    /// ICMP (protocol 1) — echo request/reply for the gateway-ping detector.
    Icmp,
    /// TCP (protocol 6).
    Tcp,
    /// ST-TCP heartbeat (protocol 253, the RFC 3692 experimental number).
    ///
    /// The real system carries the IP-link heartbeat over UDP; we give it
    /// its own protocol number instead of modelling a full UDP layer, which
    /// preserves the property that matters: the heartbeat shares fate with
    /// the IP link.
    Heartbeat,
    /// Any other protocol number, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// The 8-bit wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Heartbeat => 253,
            IpProto::Other(v) => v,
        }
    }

    /// Decodes an 8-bit wire value.
    pub fn from_u8(v: u8) -> IpProto {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            253 => IpProto::Heartbeat,
            other => IpProto::Other(other),
        }
    }
}

impl fmt::Display for IpProto {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpProto::Icmp => write!(f, "icmp"),
            IpProto::Tcp => write!(f, "tcp"),
            IpProto::Heartbeat => write!(f, "hb"),
            IpProto::Other(v) => write!(f, "proto{v}"),
        }
    }
}

/// An IPv4 packet (header fields + payload).
///
/// # Examples
///
/// ```
/// use simnet::ip::{Ipv4Packet, IpProto};
/// use bytes::Bytes;
///
/// let p = Ipv4Packet::new(
///     "10.0.0.1".parse()?,
///     "10.0.0.9".parse()?,
///     IpProto::Tcp,
///     Bytes::from_static(b"segment"),
/// );
/// let wire = p.encode();
/// assert_eq!(Ipv4Packet::decode(&wire)?, p);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Packet {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Transport protocol of the payload.
    pub proto: IpProto,
    /// Time to live.
    pub ttl: u8,
    /// Transport payload.
    pub payload: Bytes,
}

/// Error returned when decoding an IPv4 packet fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IpDecodeError {
    /// Input shorter than the fixed header, or shorter than the header's
    /// declared total length.
    Truncated,
    /// Version field is not 4 or IHL is not 5 (options unsupported).
    BadHeader,
    /// Header checksum mismatch.
    BadChecksum,
}

impl fmt::Display for IpDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpDecodeError::Truncated => write!(f, "packet shorter than declared length"),
            IpDecodeError::BadHeader => write!(f, "unsupported ip version or header length"),
            IpDecodeError::BadChecksum => write!(f, "ip header checksum mismatch"),
        }
    }
}

impl std::error::Error for IpDecodeError {}

/// Computes the RFC 1071 internet checksum over `data`.
///
/// Used by the IPv4 header, ICMP, and the TCP layer in `simtcp`.
pub fn internet_checksum(data: &[u8]) -> u16 {
    let mut acc = ChecksumAccumulator::new();
    acc.push(data);
    acc.finish()
}

/// An incremental RFC 1071 internet checksum.
///
/// Folds the one's-complement sum over any number of [`push`]ed slices
/// — pseudo-header, TCP header, payload — without concatenating them
/// into a temporary buffer. Byte parity is carried across slices, so
/// splitting the input at any offset (even mid-word) yields the same
/// checksum as one contiguous pass.
///
/// [`push`]: ChecksumAccumulator::push
#[derive(Debug, Default, Clone)]
pub struct ChecksumAccumulator {
    sum: u32,
    /// True when an odd number of bytes has been pushed so far: the next
    /// byte is the *low* half of the word straddling the slice boundary.
    odd: bool,
}

impl ChecksumAccumulator {
    /// An empty accumulator.
    pub fn new() -> ChecksumAccumulator {
        ChecksumAccumulator::default()
    }

    /// Folds `data` into the running sum.
    ///
    /// Word-at-a-time: eight bytes per iteration, decomposed into four
    /// big-endian 16-bit words summed in a 64-bit accumulator. One's-
    /// complement addition is commutative and associative over 16-bit
    /// words, so this is byte-identical to the scalar two-byte walk
    /// (pinned by a differential proptest).
    pub fn push(&mut self, data: &[u8]) {
        let mut data = data;
        if self.odd {
            let Some((&first, rest)) = data.split_first() else {
                return;
            };
            self.sum += u32::from(first);
            self.fold();
            self.odd = false;
            data = rest;
        }
        // A u64 holds ~2^45 max-value words before the carry bits could
        // reach the top, so no mid-loop fold is needed for any input a
        // packet could present.
        let mut sum64 = u64::from(self.sum);
        let mut eights = data.chunks_exact(8);
        for c in &mut eights {
            let w = u64::from_be_bytes(c.try_into().unwrap());
            sum64 += (w >> 48) + ((w >> 32) & 0xffff) + ((w >> 16) & 0xffff) + (w & 0xffff);
        }
        let mut chunks = eights.remainder().chunks_exact(2);
        for c in &mut chunks {
            sum64 += u64::from(u16::from_be_bytes([c[0], c[1]]));
        }
        while sum64 >> 32 != 0 {
            sum64 = (sum64 & 0xffff_ffff) + (sum64 >> 32);
        }
        self.sum = sum64 as u32;
        if let [last] = chunks.remainder() {
            self.sum += u32::from(*last) << 8;
            self.odd = true;
        }
        self.fold();
    }

    fn fold(&mut self) {
        while self.sum >> 16 != 0 {
            self.sum = (self.sum & 0xffff) + (self.sum >> 16);
        }
    }

    /// The final checksum (one's complement of the folded sum).
    pub fn finish(mut self) -> u16 {
        self.fold();
        !(self.sum as u16)
    }
}

impl Ipv4Packet {
    /// Default TTL for locally generated packets.
    pub const DEFAULT_TTL: u8 = 64;

    /// Creates a packet with the default TTL.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload: Bytes) -> Self {
        Ipv4Packet {
            src,
            dst,
            proto,
            ttl: Self::DEFAULT_TTL,
            payload,
        }
    }

    /// Total on-wire length: header plus payload.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }

    /// Serializes the packet, computing the header checksum.
    pub fn encode(&self) -> Bytes {
        let total_len = self.wire_len() as u16;
        let mut hdr = [0u8; IPV4_HEADER_LEN];
        hdr[0] = 0x45; // version 4, IHL 5
        hdr[2..4].copy_from_slice(&total_len.to_be_bytes());
        hdr[8] = self.ttl;
        hdr[9] = self.proto.to_u8();
        hdr[12..16].copy_from_slice(&self.src.octets());
        hdr[16..20].copy_from_slice(&self.dst.octets());
        let csum = internet_checksum(&hdr);
        hdr[10..12].copy_from_slice(&csum.to_be_bytes());

        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_slice(&hdr);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a packet from wire bytes, verifying the header checksum.
    ///
    /// # Errors
    ///
    /// Returns an [`IpDecodeError`] on truncation, unsupported header
    /// layout, or checksum mismatch.
    pub fn decode(wire: &[u8]) -> Result<Ipv4Packet, IpDecodeError> {
        if wire.len() < IPV4_HEADER_LEN {
            return Err(IpDecodeError::Truncated);
        }
        if wire[0] != 0x45 {
            return Err(IpDecodeError::BadHeader);
        }
        if internet_checksum(&wire[..IPV4_HEADER_LEN]) != 0 {
            return Err(IpDecodeError::BadChecksum);
        }
        let total_len = u16::from_be_bytes([wire[2], wire[3]]) as usize;
        if total_len < IPV4_HEADER_LEN || wire.len() < total_len {
            return Err(IpDecodeError::Truncated);
        }
        let mut src = [0u8; 4];
        let mut dst = [0u8; 4];
        src.copy_from_slice(&wire[12..16]);
        dst.copy_from_slice(&wire[16..20]);
        Ok(Ipv4Packet {
            src: Ipv4Addr::from(src),
            dst: Ipv4Addr::from(dst),
            proto: IpProto::from_u8(wire[9]),
            ttl: wire[8],
            payload: Bytes::copy_from_slice(&wire[IPV4_HEADER_LEN..total_len]),
        })
    }
}

impl fmt::Display for Ipv4Packet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} -> {} {} {}B]",
            self.src,
            self.dst,
            self.proto,
            self.payload.len()
        )
    }
}

/// An ICMP echo message (the only ICMP types the simulator needs).
///
/// Used by the ST-TCP local-network-failure detector: when the IP-link
/// heartbeat dies but the serial heartbeat survives, both servers ping the
/// gateway and exchange the results over the serial link (paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IcmpMessage {
    /// Echo request with an identifier and sequence number.
    EchoRequest {
        /// Identifier grouping requests from one pinger.
        id: u16,
        /// Sequence number within the identifier.
        seq: u16,
    },
    /// Echo reply mirroring the request's identifier and sequence.
    EchoReply {
        /// Identifier copied from the request.
        id: u16,
        /// Sequence copied from the request.
        seq: u16,
    },
}

/// Error returned when decoding an ICMP message fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpDecodeError {
    /// Fewer than 8 bytes of input.
    Truncated,
    /// Not an echo request/reply.
    UnsupportedType,
    /// Checksum mismatch.
    BadChecksum,
}

impl fmt::Display for IcmpDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcmpDecodeError::Truncated => write!(f, "icmp message shorter than header"),
            IcmpDecodeError::UnsupportedType => write!(f, "unsupported icmp type"),
            IcmpDecodeError::BadChecksum => write!(f, "icmp checksum mismatch"),
        }
    }
}

impl std::error::Error for IcmpDecodeError {}

impl IcmpMessage {
    /// Serializes the message (8-byte ICMP header, no payload).
    pub fn encode(&self) -> Bytes {
        let (ty, id, seq) = match *self {
            IcmpMessage::EchoRequest { id, seq } => (8u8, id, seq),
            IcmpMessage::EchoReply { id, seq } => (0u8, id, seq),
        };
        let mut buf = [0u8; 8];
        buf[0] = ty;
        buf[4..6].copy_from_slice(&id.to_be_bytes());
        buf[6..8].copy_from_slice(&seq.to_be_bytes());
        let csum = internet_checksum(&buf);
        buf[2..4].copy_from_slice(&csum.to_be_bytes());
        Bytes::copy_from_slice(&buf)
    }

    /// Parses a message, verifying the checksum.
    ///
    /// # Errors
    ///
    /// Returns an [`IcmpDecodeError`] on truncation, non-echo type, or
    /// checksum mismatch.
    pub fn decode(wire: &[u8]) -> Result<IcmpMessage, IcmpDecodeError> {
        if wire.len() < 8 {
            return Err(IcmpDecodeError::Truncated);
        }
        if internet_checksum(&wire[..8]) != 0 {
            return Err(IcmpDecodeError::BadChecksum);
        }
        let id = u16::from_be_bytes([wire[4], wire[5]]);
        let seq = u16::from_be_bytes([wire[6], wire[7]]);
        match wire[0] {
            8 => Ok(IcmpMessage::EchoRequest { id, seq }),
            0 => Ok(IcmpMessage::EchoReply { id, seq }),
            _ => Err(IcmpDecodeError::UnsupportedType),
        }
    }

    /// The reply corresponding to this request.
    ///
    /// Returns `None` when `self` is already a reply.
    pub fn reply(&self) -> Option<IcmpMessage> {
        match *self {
            IcmpMessage::EchoRequest { id, seq } => Some(IcmpMessage::EchoReply { id, seq }),
            IcmpMessage::EchoReply { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn sample() -> Ipv4Packet {
        Ipv4Packet::new(addr(1), addr(9), IpProto::Tcp, Bytes::from_static(b"abc"))
    }

    #[test]
    fn checksum_known_vector() {
        // Example from RFC 1071 discussions: verify the complement property
        // rather than a magic constant — appending the checksum makes the
        // total sum verify to zero.
        let data = [0x45u8, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11];
        let csum = internet_checksum(&data);
        let mut with = data.to_vec();
        with.extend_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_odd_length() {
        let data = [1u8, 2, 3];
        let csum = internet_checksum(&data);
        let mut with = data.to_vec();
        // Odd-length data is padded with zero for the sum, so to verify we
        // pad first, then append.
        with.push(0);
        with.extend_from_slice(&csum.to_be_bytes());
        assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn ip_roundtrip() {
        let p = sample();
        assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ip_empty_payload_roundtrip() {
        let p = Ipv4Packet::new(addr(2), addr(3), IpProto::Heartbeat, Bytes::new());
        assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ip_corrupted_checksum_rejected() {
        let mut wire = sample().encode().to_vec();
        wire[15] ^= 0xff; // flip a src-address byte
        assert_eq!(Ipv4Packet::decode(&wire), Err(IpDecodeError::BadChecksum));
    }

    #[test]
    fn ip_truncated_rejected() {
        let wire = sample().encode();
        assert_eq!(
            Ipv4Packet::decode(&wire[..10]),
            Err(IpDecodeError::Truncated)
        );
        // Truncated below declared total length.
        assert_eq!(
            Ipv4Packet::decode(&wire[..wire.len() - 1]),
            Err(IpDecodeError::Truncated)
        );
    }

    #[test]
    fn ip_bad_version_rejected() {
        let mut wire = sample().encode().to_vec();
        wire[0] = 0x65; // version 6
        assert_eq!(Ipv4Packet::decode(&wire), Err(IpDecodeError::BadHeader));
    }

    #[test]
    fn ip_trailing_padding_ignored() {
        // Ethernet can pad short frames; decode must honor total_len.
        let p = sample();
        let mut wire = p.encode().to_vec();
        wire.extend_from_slice(&[0u8; 7]);
        assert_eq!(Ipv4Packet::decode(&wire).unwrap(), p);
    }

    #[test]
    fn proto_wire_values() {
        assert_eq!(IpProto::Tcp.to_u8(), 6);
        assert_eq!(IpProto::from_u8(1), IpProto::Icmp);
        assert_eq!(IpProto::from_u8(253), IpProto::Heartbeat);
        assert_eq!(IpProto::from_u8(17), IpProto::Other(17));
    }

    #[test]
    fn icmp_roundtrip() {
        for msg in [
            IcmpMessage::EchoRequest { id: 7, seq: 1 },
            IcmpMessage::EchoReply { id: 7, seq: 1 },
            IcmpMessage::EchoRequest { id: 0, seq: 0xffff },
        ] {
            assert_eq!(IcmpMessage::decode(&msg.encode()).unwrap(), msg);
        }
    }

    #[test]
    fn icmp_reply_pairs_request() {
        let req = IcmpMessage::EchoRequest { id: 3, seq: 9 };
        assert_eq!(req.reply(), Some(IcmpMessage::EchoReply { id: 3, seq: 9 }));
        assert_eq!(req.reply().unwrap().reply(), None);
    }

    #[test]
    fn icmp_corruption_rejected() {
        let mut wire = IcmpMessage::EchoRequest { id: 1, seq: 2 }.encode().to_vec();
        wire[5] ^= 1;
        assert_eq!(
            IcmpMessage::decode(&wire),
            Err(IcmpDecodeError::BadChecksum)
        );
        assert_eq!(
            IcmpMessage::decode(&wire[..4]),
            Err(IcmpDecodeError::Truncated)
        );
    }

    #[test]
    fn icmp_unsupported_type_rejected() {
        let mut wire = [0u8; 8];
        wire[0] = 3; // destination unreachable
        let csum = internet_checksum(&wire);
        wire[2..4].copy_from_slice(&csum.to_be_bytes());
        assert_eq!(
            IcmpMessage::decode(&wire),
            Err(IcmpDecodeError::UnsupportedType)
        );
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!sample().to_string().is_empty());
        assert_eq!(IpProto::Heartbeat.to_string(), "hb");
    }

    #[test]
    fn accumulator_matches_contiguous_checksum_at_every_split() {
        let data: Vec<u8> = (0u16..313)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        let whole = internet_checksum(&data);
        for split in 0..=data.len() {
            let mut acc = ChecksumAccumulator::new();
            acc.push(&data[..split]);
            acc.push(&data[split..]);
            assert_eq!(acc.finish(), whole, "split at {split}");
        }
    }

    #[test]
    fn accumulator_handles_odd_slices_and_empty_pushes() {
        // Three odd-length slices + empty pushes: parity carries across.
        let (a, b, c) = (
            &[0x01u8, 0x02, 0x03][..],
            &[0x04u8][..],
            &[0x05u8, 0x06, 0x07][..],
        );
        let mut joined = Vec::new();
        joined.extend_from_slice(a);
        joined.extend_from_slice(b);
        joined.extend_from_slice(c);
        let mut acc = ChecksumAccumulator::new();
        acc.push(a);
        acc.push(&[]);
        acc.push(b);
        acc.push(c);
        acc.push(&[]);
        assert_eq!(acc.finish(), internet_checksum(&joined));
    }
}
