//! A learning Ethernet switch with multicast flooding.
//!
//! The switch is the heart of ST-TCP's tap: the gateway maps the service
//! IP to a *multicast* Ethernet address, so the switch floods every client
//! frame to all ports — delivering it to both the primary and the backup
//! simultaneously (paper §5, Figure 2). Unicast traffic (e.g. the
//! primary's responses toward the client) is learned and forwarded to a
//! single port, which is exactly why the backup does **not** see
//! primary→client traffic in the enhanced design (§3).

use std::collections::HashMap;

use crate::frame::EthernetFrame;
use crate::link::LinkId;
use crate::mac::MacAddr;

/// The simulator-internal state of one switch.
#[derive(Debug)]
pub struct SwitchState {
    /// `ports[i]` is the link attached to port `i`, if any.
    ports: Vec<Option<LinkId>>,
    /// MAC learning table: source address → port last seen on.
    table: HashMap<MacAddr, usize>,
    /// Static multicast membership (IGMP-snooping style): when a
    /// multicast destination has a registered group, the frame is
    /// delivered only to its member ports instead of flooding. Keeps a
    /// many-client tap O(servers) per frame instead of O(ports).
    groups: HashMap<MacAddr, Vec<usize>>,
}

impl SwitchState {
    pub(crate) fn new(port_count: usize) -> SwitchState {
        SwitchState {
            ports: vec![None; port_count],
            table: HashMap::new(),
            groups: HashMap::new(),
        }
    }

    /// Number of ports.
    pub fn port_count(&self) -> usize {
        self.ports.len()
    }

    /// The link attached to `port`, if any.
    pub fn link_at(&self, port: usize) -> Option<LinkId> {
        self.ports.get(port).copied().flatten()
    }

    /// Attaches `link` to `port`.
    ///
    /// # Panics
    ///
    /// Panics if the port index is out of range or already attached —
    /// both are topology construction bugs.
    pub(crate) fn attach(&mut self, port: usize, link: LinkId) {
        let slot = self
            .ports
            .get_mut(port)
            .unwrap_or_else(|| panic!("switch has no port {port}"));
        assert!(slot.is_none(), "switch port {port} already attached");
        *slot = Some(link);
    }

    /// The port a given MAC was learned on, if any.
    pub fn learned_port(&self, mac: MacAddr) -> Option<usize> {
        self.table.get(&mac).copied()
    }

    /// Registers `port` as a member of the multicast group `mac`.
    /// Frames addressed to a registered group go only to its members;
    /// unregistered multicast destinations still flood.
    ///
    /// # Panics
    ///
    /// Panics if `mac` is not a multicast address.
    pub fn join_group(&mut self, mac: MacAddr, port: usize) {
        assert!(mac.is_multicast(), "{mac:?} is not a multicast address");
        let members = self.groups.entry(mac).or_default();
        if !members.contains(&port) {
            members.push(port);
        }
    }

    /// Processes a frame arriving on `in_port`, returning the output links
    /// the frame must be transmitted on.
    ///
    /// Learning: the source MAC (if unicast) is bound to `in_port`.
    /// Forwarding: multicast/broadcast destinations flood to every attached
    /// port except the ingress; known unicast goes to its learned port;
    /// unknown unicast floods.
    pub fn forward(&mut self, in_port: usize, frame: &EthernetFrame) -> Vec<LinkId> {
        if frame.src.is_unicast() {
            self.table.insert(frame.src, in_port);
        }
        if frame.dst.is_multicast() {
            if let Some(members) = self.groups.get(&frame.dst) {
                return members
                    .iter()
                    .filter(|&&p| p != in_port)
                    .filter_map(|&p| self.link_at(p))
                    .collect();
            }
            return self.flood(in_port);
        }
        match self.table.get(&frame.dst) {
            Some(&port) if port == in_port => Vec::new(), // hairpin: drop
            Some(&port) => self.link_at(port).into_iter().collect(),
            None => self.flood(in_port),
        }
    }

    fn flood(&self, in_port: usize) -> Vec<LinkId> {
        self.ports
            .iter()
            .enumerate()
            .filter(|&(i, p)| i != in_port && p.is_some())
            .map(|(_, p)| p.unwrap())
            .collect()
    }

    /// Clears the learning table (used by tests to force flooding).
    pub fn flush_table(&mut self) {
        self.table.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EtherType;
    use bytes::Bytes;

    fn frame(src: MacAddr, dst: MacAddr) -> EthernetFrame {
        EthernetFrame::new(src, dst, EtherType::Ipv4, Bytes::from_static(b"x"))
    }

    fn switch3() -> SwitchState {
        let mut s = SwitchState::new(4);
        s.attach(0, LinkId(10));
        s.attach(1, LinkId(11));
        s.attach(2, LinkId(12));
        // port 3 left unattached
        s
    }

    #[test]
    fn unknown_unicast_floods_except_ingress() {
        let mut s = switch3();
        let out = s.forward(0, &frame(MacAddr::unicast(1), MacAddr::unicast(2)));
        assert_eq!(out, vec![LinkId(11), LinkId(12)]);
    }

    #[test]
    fn learning_directs_unicast() {
        let mut s = switch3();
        // Host with mac 2 talks from port 1 → learned.
        let _ = s.forward(1, &frame(MacAddr::unicast(2), MacAddr::unicast(1)));
        assert_eq!(s.learned_port(MacAddr::unicast(2)), Some(1));
        // Now traffic to mac 2 goes only out port 1.
        let out = s.forward(0, &frame(MacAddr::unicast(1), MacAddr::unicast(2)));
        assert_eq!(out, vec![LinkId(11)]);
    }

    #[test]
    fn multicast_always_floods_even_after_learning() {
        let mut s = switch3();
        let multi = MacAddr::multicast(5);
        // Even if somebody claims to source from a multicast address, the
        // destination being multicast floods, and multicast sources are not
        // learned.
        let _ = s.forward(1, &frame(MacAddr::unicast(2), multi));
        let out = s.forward(0, &frame(MacAddr::unicast(1), multi));
        assert_eq!(out, vec![LinkId(11), LinkId(12)]);
        assert_eq!(s.learned_port(multi), None);
    }

    #[test]
    fn broadcast_floods() {
        let mut s = switch3();
        let out = s.forward(2, &frame(MacAddr::unicast(9), MacAddr::BROADCAST));
        assert_eq!(out, vec![LinkId(10), LinkId(11)]);
    }

    #[test]
    fn hairpin_to_ingress_port_is_dropped() {
        let mut s = switch3();
        let _ = s.forward(1, &frame(MacAddr::unicast(2), MacAddr::unicast(9)));
        // Destination learned on the same port the frame came in on.
        let out = s.forward(1, &frame(MacAddr::unicast(3), MacAddr::unicast(2)));
        assert!(out.is_empty());
    }

    #[test]
    fn relearning_follows_station_moves() {
        let mut s = switch3();
        let _ = s.forward(0, &frame(MacAddr::unicast(7), MacAddr::BROADCAST));
        assert_eq!(s.learned_port(MacAddr::unicast(7)), Some(0));
        let _ = s.forward(2, &frame(MacAddr::unicast(7), MacAddr::BROADCAST));
        assert_eq!(s.learned_port(MacAddr::unicast(7)), Some(2));
    }

    #[test]
    fn flush_table_forces_flooding_again() {
        let mut s = switch3();
        let _ = s.forward(1, &frame(MacAddr::unicast(2), MacAddr::unicast(1)));
        s.flush_table();
        let out = s.forward(0, &frame(MacAddr::unicast(1), MacAddr::unicast(2)));
        assert_eq!(out, vec![LinkId(11), LinkId(12)]);
    }

    #[test]
    fn registered_group_delivers_only_to_members() {
        let mut s = switch3();
        let multi = MacAddr::multicast(5);
        s.join_group(multi, 1);
        // Duplicate joins are idempotent.
        s.join_group(multi, 1);
        let out = s.forward(0, &frame(MacAddr::unicast(1), multi));
        assert_eq!(out, vec![LinkId(11)]);
        // Ingress membership is excluded, like flooding.
        let out = s.forward(1, &frame(MacAddr::unicast(2), multi));
        assert!(out.is_empty());
        // Other multicast groups still flood.
        let out = s.forward(0, &frame(MacAddr::unicast(1), MacAddr::multicast(6)));
        assert_eq!(out, vec![LinkId(11), LinkId(12)]);
    }

    #[test]
    #[should_panic(expected = "not a multicast address")]
    fn join_group_rejects_unicast() {
        let mut s = switch3();
        s.join_group(MacAddr::unicast(1), 0);
    }

    #[test]
    #[should_panic(expected = "already attached")]
    fn double_attach_panics() {
        let mut s = SwitchState::new(1);
        s.attach(0, LinkId(1));
        s.attach(0, LinkId(2));
    }

    #[test]
    fn accessors() {
        let s = switch3();
        assert_eq!(s.port_count(), 4);
        assert_eq!(s.link_at(0), Some(LinkId(10)));
        assert_eq!(s.link_at(3), None);
        assert_eq!(s.link_at(99), None);
    }
}
