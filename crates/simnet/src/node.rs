//! The [`Node`] trait and the context handed to node callbacks.
//!
//! A *node* is any host-like participant in the simulation: a client, the
//! primary server, the backup server, a gateway. Nodes are pure event
//! handlers — they receive frames, serial bytes, and timer firings, and
//! react by queueing *effects* (frames to send, timers to arm, a peer to
//! power off) on the [`NodeCtx`]. The world applies effects after the
//! callback returns, which keeps the event loop free of aliasing and makes
//! every step deterministic.

use bytes::Bytes;
use core::fmt;

use crate::flight::{FlightKind, FlightRecorder, SpanId};
use crate::frame::EthernetFrame;
use crate::profile::{Component, Profiler};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a node within a [`crate::world::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// Identifies a NIC within a node (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NicId(pub usize);

/// Identifies a serial port within a node (dense, starting at 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SerialPortId(pub usize);

/// A world-unique handle for a pending timer, used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u64);

/// An opaque payload a node attaches to a timer so it can tell its timers
/// apart when they fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerToken(pub u64);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An effect queued by a node callback, applied by the world afterwards.
#[derive(Debug)]
pub(crate) enum Effect {
    SendFrame {
        nic: NicId,
        frame: EthernetFrame,
    },
    SendSerial {
        port: SerialPortId,
        data: Bytes,
    },
    SetTimer {
        id: TimerId,
        at: SimTime,
        token: TimerToken,
    },
    CancelTimer(TimerId),
    PowerOff {
        target: NodeId,
        after: SimDuration,
    },
    Trace(String),
}

/// The context passed to every [`Node`] callback.
///
/// Provides the current virtual time, deterministic randomness, and the
/// ability to queue effects. All effects take hold only after the callback
/// returns, in the order they were queued.
pub struct NodeCtx<'a> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) effects: &'a mut Vec<Effect>,
    pub(crate) next_timer_id: &'a mut u64,
    pub(crate) flight: &'a mut FlightRecorder,
    pub(crate) profiler: &'a mut Profiler,
}

impl fmt::Debug for NodeCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NodeCtx")
            .field("now", &self.now)
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl NodeCtx<'_> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Deterministic randomness shared by the whole world.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Queues a frame for transmission out of `nic`.
    ///
    /// Silently dropped by the world if the NIC is down, unattached, or the
    /// node is powered off — exactly like a real NIC with no carrier.
    pub fn send_frame(&mut self, nic: NicId, frame: EthernetFrame) {
        self.effects.push(Effect::SendFrame { nic, frame });
    }

    /// Queues `data` for transmission out of serial port `port`.
    pub fn send_serial(&mut self, port: SerialPortId, data: Bytes) {
        self.effects.push(Effect::SendSerial { port, data });
    }

    /// Arms a timer to fire `after` from now, delivering `token` to
    /// [`Node::on_timer`]. Returns a handle usable with
    /// [`NodeCtx::cancel_timer`].
    pub fn set_timer(&mut self, after: SimDuration, token: TimerToken) -> TimerId {
        let id = TimerId(*self.next_timer_id);
        *self.next_timer_id += 1;
        self.effects.push(Effect::SetTimer {
            id,
            at: self.now + after,
            token,
        });
        id
    }

    /// Cancels a previously armed timer. Cancelling an already-fired or
    /// already-cancelled timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// Commands the power controller to power off `target` after `after`
    /// (the STONITH action the backup performs before taking over a
    /// connection, and the primary performs before going non-fault-tolerant).
    pub fn power_off(&mut self, target: NodeId, after: SimDuration) {
        self.effects.push(Effect::PowerOff { target, after });
    }

    /// Records a line in the world trace (visible to tests and harnesses).
    pub fn trace(&mut self, msg: impl Into<String>) {
        self.effects.push(Effect::Trace(msg.into()));
    }

    /// Records a causal event in this node's flight-recorder ring.
    /// Zero-allocation: the event is `Copy` and the ring is
    /// pre-reserved, so this is safe on the hottest datapath.
    pub fn flight(&mut self, span: SpanId, parent: SpanId, kind: FlightKind) {
        self.flight
            .record(Some(self.node), self.now, span, parent, kind);
    }

    /// Opens a profiler sub-scope attributed to `comp` (for refining a
    /// dispatch's attribution, e.g. the TCP work inside a server
    /// callback). Must be balanced with [`NodeCtx::profile_exit`]
    /// before the callback returns. No-op when profiling is disabled.
    pub fn profile_enter(&mut self, comp: Component) {
        self.profiler.enter(comp);
    }

    /// Closes the innermost profiler sub-scope.
    pub fn profile_exit(&mut self) {
        self.profiler.exit();
    }
}

/// A participant in the simulation.
///
/// Implementations live outside `simnet` (the TCP endpoints, ST-TCP
/// servers, clients, and gateways). All callbacks receive a [`NodeCtx`]
/// for observing time and queueing effects.
///
/// The `Any` supertrait lets harnesses recover the concrete node type
/// after a run via [`crate::world::World::node`] to inspect final state.
pub trait Node: core::any::Any {
    /// Called once when the world starts, before any other event.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }

    /// A frame arrived on `nic`.
    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, nic: NicId, frame: EthernetFrame);

    /// Serial data arrived on `port`.
    fn on_serial(&mut self, ctx: &mut NodeCtx<'_>, port: SerialPortId, data: Bytes) {
        let _ = (ctx, port, data);
    }

    /// A timer armed with [`NodeCtx::set_timer`] fired.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken);

    /// The node has been powered off by the power controller. No further
    /// callbacks will be delivered until it is powered on again. The node
    /// must not queue effects here (they are discarded); the hook exists so
    /// implementations can mark internal state for assertions.
    fn on_power_off(&mut self) {}

    /// The node has been powered back on (cold boot).
    fn on_power_on(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_assigns_monotonic_timer_ids() {
        let mut rng = SimRng::seed_from(1);
        let mut effects = Vec::new();
        let mut next = 0u64;
        let mut flight = FlightRecorder::new();
        let mut profiler = Profiler::new();
        let mut ctx = NodeCtx {
            now: SimTime::from_millis(5),
            node: NodeId(3),
            rng: &mut rng,
            effects: &mut effects,
            next_timer_id: &mut next,
            flight: &mut flight,
            profiler: &mut profiler,
        };
        let a = ctx.set_timer(SimDuration::from_millis(1), TimerToken(10));
        let b = ctx.set_timer(SimDuration::from_millis(2), TimerToken(11));
        assert!(b.0 > a.0);
        assert_eq!(ctx.now(), SimTime::from_millis(5));
        assert_eq!(ctx.node_id(), NodeId(3));
        assert_eq!(effects.len(), 2);
        match &effects[0] {
            Effect::SetTimer { at, token, .. } => {
                assert_eq!(*at, SimTime::from_millis(6));
                assert_eq!(*token, TimerToken(10));
            }
            other => panic!("unexpected effect {other:?}"),
        }
    }

    #[test]
    fn effects_preserve_order() {
        let mut rng = SimRng::seed_from(1);
        let mut effects = Vec::new();
        let mut next = 0u64;
        let mut flight = FlightRecorder::new();
        let mut profiler = Profiler::new();
        let mut ctx = NodeCtx {
            now: SimTime::ZERO,
            node: NodeId(0),
            rng: &mut rng,
            effects: &mut effects,
            next_timer_id: &mut next,
            flight: &mut flight,
            profiler: &mut profiler,
        };
        ctx.trace("first");
        ctx.power_off(NodeId(1), SimDuration::ZERO);
        ctx.trace("second");
        assert_eq!(effects.len(), 3);
        assert!(matches!(effects[0], Effect::Trace(_)));
        assert!(matches!(effects[1], Effect::PowerOff { .. }));
        assert!(matches!(effects[2], Effect::Trace(_)));
    }

    #[test]
    fn ctx_flight_records_into_the_node_ring() {
        let mut rng = SimRng::seed_from(1);
        let mut effects = Vec::new();
        let mut next = 0u64;
        let mut flight = FlightRecorder::new();
        flight.add_host();
        let mut profiler = Profiler::new();
        let span = SpanId::heartbeat(1, 0, 9);
        {
            let mut ctx = NodeCtx {
                now: SimTime::from_millis(7),
                node: NodeId(0),
                rng: &mut rng,
                effects: &mut effects,
                next_timer_id: &mut next,
                flight: &mut flight,
                profiler: &mut profiler,
            };
            ctx.flight(span, SpanId::NONE, FlightKind::HbRecv { seqno: 9, link: 0 });
        }
        let snap = flight.snapshot(None);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].node, Some(NodeId(0)));
        assert_eq!(snap[0].span, span);
        assert_eq!(snap[0].time, SimTime::from_millis(7));
    }
}
