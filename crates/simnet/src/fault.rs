//! Fault injection.
//!
//! Exposes every failure class from the paper's Table 1 as a first-class,
//! schedulable operation on the [`World`]:
//!
//! | Paper failure                  | Injection call |
//! |--------------------------------|----------------|
//! | HW/OS crash                    | [`World::crash_node`] |
//! | Application crash (±cleanup)   | injected at the app layer (`sttcp-apps`) |
//! | NIC failure                    | [`World::fail_nic`] |
//! | Cable failure                  | [`World::cut_link`] |
//! | Temporary network failure      | [`World::set_link_loss`], [`World::drop_window`], [`World::drop_next`] |
//! | Serial-cable failure           | [`World::fail_serial`] |
//!
//! All of these can be invoked immediately or scheduled at a virtual time
//! via [`World::schedule`]. Each goes through [`World::note_fault`], which
//! records an `inject:` trace line (so tests can assert on injection
//! order) and an uncapped fault-episode log (so metrics can attribute
//! symptoms to faults even with a bounded trace).

use crate::link::{DropFilter, LinkDir, LinkId};
use crate::node::{NicId, NodeId};
use crate::serial::SerialId;
use crate::time::SimTime;
use crate::world::World;

impl World {
    /// Crashes a node at the hardware/OS level: it immediately loses power
    /// and stops sending, receiving, and processing. This is the paper's
    /// "HW/OS crash failure" (Table 1, row 1) and is also what the STONITH
    /// power-down performs.
    pub fn crash_node(&mut self, node: NodeId) {
        let name = self.node_name(node).to_string();
        self.note_fault(format!("crash {name}"));
        self.force_power_off(node);
    }

    /// Restores power to a crashed/powered-off node (cold boot). The node
    /// receives [`crate::node::Node::on_power_on`].
    pub fn restore_node(&mut self, node: NodeId) {
        let name = self.node_name(node).to_string();
        self.note_fault(format!("power on {name}"));
        self.force_power_on(node);
    }

    /// Schedules power restoration for `node` after `delay` (a repair
    /// action arriving some time after a crash).
    pub fn power_on_after(&mut self, node: NodeId, delay: crate::time::SimDuration) {
        let at = self.now() + delay;
        self.push_event(at, crate::event::Ev::PowerOn { node });
    }

    /// Fails a NIC: frames in either direction are silently dropped from
    /// now on (Table 1, row 4).
    pub fn fail_nic(&mut self, node: NodeId, nic: NicId) {
        let name = self.node_name(node).to_string();
        self.note_fault(format!("fail nic{} on {name}", nic.0));
        self.nodes[node.0].nics[nic.0].up = false;
    }

    /// Restores a failed NIC.
    pub fn restore_nic(&mut self, node: NodeId, nic: NicId) {
        let name = self.node_name(node).to_string();
        self.note_fault(format!("restore nic{} on {name}", nic.0));
        self.nodes[node.0].nics[nic.0].up = true;
    }

    /// Cuts a cable: the link drops all frames in both directions.
    pub fn cut_link(&mut self, link: LinkId) {
        self.note_fault(format!("cut link {}", link.0));
        self.link_mut(link).set_down(true);
    }

    /// Restores a cut cable.
    pub fn restore_link(&mut self, link: LinkId) {
        self.note_fault(format!("restore link {}", link.0));
        self.link_mut(link).set_down(false);
    }

    /// Sets a probabilistic per-frame loss rate on one direction of a link
    /// (temporary network failure, Table 1 row 5).
    pub fn set_link_loss(&mut self, link: LinkId, dir: LinkDir, prob: f64) {
        self.note_fault(format!("loss {prob} on link {} {dir}", link.0));
        self.link_mut(link).set_loss(dir, prob);
    }

    /// Drops every frame on one direction of a link until `until`.
    pub fn drop_window(&mut self, link: LinkId, dir: LinkDir, until: SimTime) {
        self.note_fault(format!(
            "drop window on link {} {dir} until {until}",
            link.0
        ));
        self.link_mut(link).set_drop_window(dir, until);
    }

    /// Drops the next `n` frames on one direction of a link.
    pub fn drop_next(&mut self, link: LinkId, dir: LinkDir, n: u64) {
        self.note_fault(format!("drop next {n} on link {} {dir}", link.0));
        self.link_mut(link).set_drop_next(dir, n);
    }

    /// Corrupts the next `n` frames on one direction of a link: each has
    /// one payload bit flipped in flight (bad cable / flaky switch port).
    /// Frames protected by a checksum arrive and fail verification; the
    /// receiver must treat them as loss, never act on the contents.
    pub fn corrupt_frames(&mut self, link: LinkId, dir: LinkDir, n: u64) {
        self.note_fault(format!("corrupt next {n} on link {} {dir}", link.0));
        self.link_mut(link).set_corrupt_next(dir, n);
    }

    /// Duplicates the next `n` frames on one direction of a link: each is
    /// transmitted twice, back to back (flapping switch port / mis-mirrored
    /// segment). TCP and the checksummed control formats must absorb exact
    /// duplicates without mis-verdicting.
    pub fn dup_frames(&mut self, link: LinkId, dir: LinkDir, n: u64) {
        self.note_fault(format!("dup next {n} on link {} {dir}", link.0));
        self.link_mut(link).set_dup_next(dir, n);
    }

    /// Reorders the next `n` frames on one direction of a link: each
    /// budgeted frame is held back and released just behind its successor,
    /// so the pair arrives swapped. A held frame with no successor decays
    /// into a single-frame loss.
    pub fn reorder_frames(&mut self, link: LinkId, dir: LinkDir, n: u64) {
        self.note_fault(format!("reorder next {n} on link {} {dir}", link.0));
        self.link_mut(link).set_reorder_next(dir, n);
    }

    /// Adds a seeded uniform per-frame delivery jitter in `[0, max]` to one
    /// direction of a link (congested segment / queueing wobble). Pass
    /// `SimDuration::ZERO` to clear.
    pub fn set_link_jitter(&mut self, link: LinkId, dir: LinkDir, max: crate::time::SimDuration) {
        self.note_fault(format!(
            "jitter {}us on link {} {dir}",
            max.as_micros(),
            link.0
        ));
        self.link_mut(link).set_jitter(dir, max);
    }

    /// Installs a targeted drop filter on one direction of a link; frames
    /// for which the filter returns `true` are dropped. Pass `None` to
    /// clear. Lets tests lose, say, only TCP data frames while heartbeats
    /// survive.
    pub fn set_link_filter(&mut self, link: LinkId, dir: LinkDir, filter: Option<DropFilter>) {
        self.note_fault(format!("filter on link {} {dir}", link.0));
        self.link_mut(link).set_filter(dir, filter);
    }

    /// Fails a serial channel (null-modem cable unplugged).
    pub fn fail_serial(&mut self, serial: SerialId) {
        self.note_fault(format!("fail serial {}", serial.0));
        self.serial_mut(serial).set_down(true);
    }

    /// Restores a failed serial channel.
    pub fn restore_serial(&mut self, serial: SerialId) {
        self.note_fault(format!("restore serial {}", serial.0));
        self.serial_mut(serial).set_down(false);
    }

    /// Immediately powers a node off (no event-queue round trip). Used by
    /// `crash_node` and directly by tests.
    pub fn force_power_off(&mut self, node: NodeId) {
        self.do_power_off(node);
    }

    /// Immediately powers a node on (cold boot); the node receives
    /// [`crate::node::Node::on_power_on`].
    pub fn force_power_on(&mut self, node: NodeId) {
        self.do_power_on(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{EtherType, EthernetFrame};
    use crate::link::LinkParams;
    use crate::mac::MacAddr;
    use crate::node::{Node, NodeCtx, TimerToken};
    use crate::time::{SimDuration, SimTime};
    use bytes::Bytes;

    /// Sends one frame per millisecond; counts what it receives.
    struct Pulser {
        me: MacAddr,
        peer: MacAddr,
        sent: u32,
        received: u32,
        powered_off_seen: bool,
    }

    impl Pulser {
        fn new(me: MacAddr, peer: MacAddr) -> Pulser {
            Pulser {
                me,
                peer,
                sent: 0,
                received: 0,
                powered_off_seen: false,
            }
        }
    }

    impl Node for Pulser {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: crate::node::NicId, _: EthernetFrame) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: TimerToken) {
            self.sent += 1;
            ctx.send_frame(
                crate::node::NicId(0),
                EthernetFrame::new(self.me, self.peer, EtherType::Ipv4, Bytes::new()),
            );
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_power_off(&mut self) {
            self.powered_off_seen = true;
        }
    }

    fn pulsing_pair() -> (World, NodeId, NodeId, LinkId) {
        let mut w = World::new(7);
        let ma = MacAddr::unicast(1);
        let mb = MacAddr::unicast(2);
        let a = w.add_node("a", Box::new(Pulser::new(ma, mb)));
        let b = w.add_node("b", Box::new(Pulser::new(mb, ma)));
        let na = w.add_nic(a, ma);
        let nb = w.add_nic(b, mb);
        let l = w.connect_nodes((a, na), (b, nb), LinkParams::ideal());
        (w, a, b, l)
    }

    #[test]
    fn crash_stops_a_node_cold() {
        let (mut w, a, b, _) = pulsing_pair();
        w.start();
        w.run_until(SimTime::from_millis(10));
        let before = w.node::<Pulser>(b).unwrap().received;
        assert!(before > 0);
        w.crash_node(a);
        w.run_until(SimTime::from_millis(30));
        let after = w.node::<Pulser>(b).unwrap().received;
        assert_eq!(after, before, "crashed node kept transmitting");
        assert!(w.node::<Pulser>(a).unwrap().powered_off_seen);
        assert!(w.trace().first_containing("inject: crash a").is_some());
    }

    #[test]
    fn restore_node_reboots() {
        let (mut w, a, _b, _) = pulsing_pair();
        w.start();
        w.run_until(SimTime::from_millis(5));
        w.crash_node(a);
        assert!(!w.is_powered(a));
        w.restore_node(a);
        assert!(w.is_powered(a));
        // Double restore is a no-op.
        w.restore_node(a);
        assert!(w.is_powered(a));
    }

    #[test]
    fn nic_failure_blocks_both_directions() {
        let (mut w, a, b, _) = pulsing_pair();
        w.start();
        w.run_until(SimTime::from_millis(10));
        w.fail_nic(a, crate::node::NicId(0));
        let a_rx = w.node::<Pulser>(a).unwrap().received;
        let b_rx = w.node::<Pulser>(b).unwrap().received;
        w.run_until(SimTime::from_millis(30));
        assert_eq!(w.node::<Pulser>(a).unwrap().received, a_rx);
        assert_eq!(w.node::<Pulser>(b).unwrap().received, b_rx);
        // But the node itself keeps running (its timers fire).
        assert!(w.node::<Pulser>(a).unwrap().sent > 10);
        w.restore_nic(a, crate::node::NicId(0));
        w.run_until(SimTime::from_millis(40));
        assert!(w.node::<Pulser>(b).unwrap().received > b_rx);
    }

    #[test]
    fn cut_and_restore_link() {
        let (mut w, _a, b, l) = pulsing_pair();
        w.start();
        w.run_until(SimTime::from_millis(10));
        w.cut_link(l);
        let rx = w.node::<Pulser>(b).unwrap().received;
        w.run_until(SimTime::from_millis(20));
        assert_eq!(w.node::<Pulser>(b).unwrap().received, rx);
        w.restore_link(l);
        w.run_until(SimTime::from_millis(30));
        assert!(w.node::<Pulser>(b).unwrap().received > rx);
    }

    #[test]
    fn drop_window_and_drop_next() {
        let (mut w, _a, b, l) = pulsing_pair();
        w.start();
        // Drop everything a→b for the first 10ms: ~10 frames lost.
        w.drop_window(l, LinkDir::AtoB, SimTime::from_millis(10));
        w.run_until(SimTime::from_millis(20));
        let got = w.node::<Pulser>(b).unwrap().received;
        assert!((8..=12).contains(&got), "got {got}");
        w.drop_next(l, LinkDir::AtoB, 3);
        w.run_until(SimTime::from_millis(26));
        let got2 = w.node::<Pulser>(b).unwrap().received;
        assert!(got2 >= got + 2 && got2 <= got + 4, "got2 {got2}");
    }

    #[test]
    fn scheduled_injection_happens_at_time() {
        let (mut w, a, b, _) = pulsing_pair();
        w.start();
        w.schedule(SimTime::from_millis(15), move |w| w.crash_node(a));
        w.run_until(SimTime::from_millis(40));
        let rx = w.node::<Pulser>(b).unwrap().received;
        assert!((13..=16).contains(&rx), "rx {rx}");
        let rec = w.trace().first_containing("inject: crash").unwrap();
        assert_eq!(rec.time, SimTime::from_millis(15));
    }

    /// Sends one 8-byte payload per millisecond; records every payload it
    /// receives.
    struct PayloadPulser {
        me: MacAddr,
        peer: MacAddr,
        got: Vec<Vec<u8>>,
    }

    impl Node for PayloadPulser {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: crate::node::NicId, f: EthernetFrame) {
            self.got.push(f.payload.to_vec());
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: TimerToken) {
            ctx.send_frame(
                crate::node::NicId(0),
                EthernetFrame::new(
                    self.me,
                    self.peer,
                    EtherType::Ipv4,
                    Bytes::from_static(&[0xAB; 8]),
                ),
            );
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
    }

    #[test]
    fn corrupt_frames_flips_one_bit_then_stops() {
        let mut w = World::new(21);
        let ma = MacAddr::unicast(1);
        let mb = MacAddr::unicast(2);
        let a = w.add_node(
            "a",
            Box::new(PayloadPulser {
                me: ma,
                peer: mb,
                got: Vec::new(),
            }),
        );
        let b = w.add_node(
            "b",
            Box::new(PayloadPulser {
                me: mb,
                peer: ma,
                got: Vec::new(),
            }),
        );
        let na = w.add_nic(a, ma);
        let nb = w.add_nic(b, mb);
        let l = w.connect_nodes((a, na), (b, nb), LinkParams::ideal());
        w.start();
        w.corrupt_frames(l, LinkDir::AtoB, 2);
        w.run_until(SimTime::from_millis(10));
        let got = &w.node::<PayloadPulser>(b).unwrap().got;
        assert!(got.len() >= 5, "got {} frames", got.len());
        let diff_bits = |p: &[u8]| -> u32 {
            p.iter()
                .zip([0xABu8; 8].iter())
                .map(|(x, y)| (x ^ y).count_ones())
                .sum()
        };
        // Exactly the first two frames are corrupted, each by one bit.
        assert_eq!(diff_bits(&got[0]), 1, "frame 0: {:?}", got[0]);
        assert_eq!(diff_bits(&got[1]), 1, "frame 1: {:?}", got[1]);
        for (i, p) in got.iter().enumerate().skip(2) {
            assert_eq!(diff_bits(p), 0, "frame {i} corrupted past budget");
        }
        assert_eq!(w.link(l).stats(LinkDir::AtoB).corrupted, 2);
        assert!(w
            .trace()
            .first_containing("inject: corrupt next 2")
            .is_some());
    }

    /// Sends one frame per millisecond carrying a sequence number;
    /// records the sequence numbers it receives.
    struct SeqPulser {
        me: MacAddr,
        peer: MacAddr,
        next: u8,
        got: Vec<u8>,
    }

    impl Node for SeqPulser {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
        fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: crate::node::NicId, f: EthernetFrame) {
            self.got.push(f.payload[0]);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: TimerToken) {
            ctx.send_frame(
                crate::node::NicId(0),
                EthernetFrame::new(
                    self.me,
                    self.peer,
                    EtherType::Ipv4,
                    Bytes::from(vec![self.next]),
                ),
            );
            self.next = self.next.wrapping_add(1);
            ctx.set_timer(SimDuration::from_millis(1), TimerToken(0));
        }
    }

    fn seq_pair() -> (World, NodeId, NodeId, LinkId) {
        let mut w = World::new(31);
        let ma = MacAddr::unicast(1);
        let mb = MacAddr::unicast(2);
        let a = w.add_node(
            "a",
            Box::new(SeqPulser {
                me: ma,
                peer: mb,
                next: 0,
                got: Vec::new(),
            }),
        );
        let b = w.add_node(
            "b",
            Box::new(SeqPulser {
                me: mb,
                peer: ma,
                next: 0,
                got: Vec::new(),
            }),
        );
        let na = w.add_nic(a, ma);
        let nb = w.add_nic(b, mb);
        let l = w.connect_nodes((a, na), (b, nb), LinkParams::ideal());
        (w, a, b, l)
    }

    #[test]
    fn dup_frames_delivers_exact_duplicates() {
        let (mut w, a, b, l) = seq_pair();
        w.start();
        w.dup_frames(l, LinkDir::AtoB, 2);
        w.run_until(SimTime::from_millis(10));
        let sent = w.node::<SeqPulser>(a).unwrap().next as usize;
        let got = &w.node::<SeqPulser>(b).unwrap().got;
        assert_eq!(got.len(), sent + 2, "got {got:?}");
        // The first two frames each arrive twice, back to back.
        assert_eq!(&got[..4], &[0, 0, 1, 1]);
        assert_eq!(w.link(l).stats(LinkDir::AtoB).duplicated, 2);
        assert!(w.trace().first_containing("inject: dup next 2").is_some());
    }

    #[test]
    fn reorder_frames_swaps_delivery_order() {
        let (mut w, _a, b, l) = seq_pair();
        w.start();
        w.reorder_frames(l, LinkDir::AtoB, 1);
        w.run_until(SimTime::from_millis(10));
        let got = &w.node::<SeqPulser>(b).unwrap().got;
        // Frame 0 was held and released behind frame 1; everything after
        // flows in order.
        assert!(got.len() >= 4, "got {got:?}");
        assert_eq!(&got[..2], &[1, 0], "got {got:?}");
        assert!(got[2..].windows(2).all(|w| w[1] == w[0] + 1));
        assert!(w
            .trace()
            .first_containing("inject: reorder next 1")
            .is_some());
    }

    #[test]
    fn link_jitter_delays_but_loses_nothing() {
        let (mut w, a, b, l) = seq_pair();
        w.start();
        w.set_link_jitter(l, LinkDir::AtoB, SimDuration::from_micros(200));
        w.run_until(SimTime::from_millis(20));
        let sent = w.node::<SeqPulser>(a).unwrap().next as usize;
        let got = &w.node::<SeqPulser>(b).unwrap().got;
        // Jitter (200µs) stays below the 1ms send spacing: every frame
        // arrives, still in order (the final frame may still be in
        // flight past the horizon).
        assert!(got.len() >= sent - 1, "sent {sent}, got {got:?}");
        assert!(got.windows(2).all(|w| w[1] == w[0] + 1));
        // Clearing the fault restores deterministic zero-latency delivery.
        w.set_link_jitter(l, LinkDir::AtoB, SimDuration::ZERO);
        w.run_until(SimTime::from_millis(30));
        assert!(w.trace().first_containing("inject: jitter 200us").is_some());
    }

    #[test]
    fn fault_log_survives_a_capped_trace() {
        let (mut w, a, _b, l) = pulsing_pair();
        w.set_trace_capacity(Some(4));
        w.start();
        w.run_until(SimTime::from_millis(5));
        w.cut_link(l);
        w.run_until(SimTime::from_millis(10));
        w.crash_node(a);
        w.run_until(SimTime::from_millis(20));
        let faults = w.faults();
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].0, SimTime::from_millis(5));
        assert!(faults[0].1.contains("cut link"));
        assert_eq!(faults[1].0, SimTime::from_millis(10));
        assert!(faults[1].1.contains("crash a"));
        assert!(w.trace().capacity() == Some(4) && w.trace().len() <= 4);
    }

    #[test]
    fn filter_injection_targets_specific_frames() {
        let (mut w, _a, b, l) = pulsing_pair();
        w.start();
        w.run_until(SimTime::from_millis(5));
        let rx = w.node::<Pulser>(b).unwrap().received;
        // Drop everything (all frames match).
        w.set_link_filter(l, LinkDir::AtoB, Some(Box::new(|_| true)));
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.node::<Pulser>(b).unwrap().received, rx);
        w.set_link_filter(l, LinkDir::AtoB, None);
        w.run_until(SimTime::from_millis(15));
        assert!(w.node::<Pulser>(b).unwrap().received > rx);
    }
}
