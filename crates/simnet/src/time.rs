//! Virtual time for the discrete-event simulation.
//!
//! All simulation time is expressed in microseconds since the start of the
//! simulation. Using integer microseconds keeps event ordering exact and
//! reproducible (no floating-point drift), while still resolving the
//! sub-millisecond effects that matter here (link latencies, serialization
//! delays, retransmission timers).

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, measured in microseconds since simulation
/// start.
///
/// `SimTime` is a monotonically non-decreasing clock driven by the event
/// loop in [`crate::world::World`]. It is `Copy` and totally ordered.
///
/// # Examples
///
/// ```
/// use simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(200);
/// assert_eq!(t.as_micros(), 200_000);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Examples
///
/// ```
/// use simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 1_500);
/// assert_eq!(d * 2, SimDuration::from_millis(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as an "infinitely far away"
    /// sentinel for deadlines that are not currently armed.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after simulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since `earlier`, saturating to zero if `earlier`
    /// is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    ///
    /// Returns `None` when `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Saturating addition of a duration (never wraps past [`SimTime::MAX`]).
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The length of this duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The length of this duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The length of this duration in seconds as a float (reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<SimDuration> {
        self.0.checked_mul(factor).map(SimDuration)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// The virtual time needed to serialize `bytes` bytes onto a link of
    /// `bits_per_sec` capacity, rounded up to the next microsecond.
    ///
    /// # Examples
    ///
    /// ```
    /// use simnet::time::SimDuration;
    ///
    /// // 1500 bytes at 100 Mbit/s = 120 µs.
    /// let d = SimDuration::transmission(1500, 100_000_000);
    /// assert_eq!(d.as_micros(), 120);
    /// ```
    pub fn transmission(bytes: usize, bits_per_sec: u64) -> SimDuration {
        if bits_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let bits = bytes as u128 * 8;
        let micros = (bits * 1_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(micros.min(u64::MAX as u128) as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_construction_and_accessors() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
    }

    #[test]
    fn duration_construction_and_accessors() {
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
        assert_eq!(SimDuration::from_millis(5).as_millis(), 5);
        assert!(SimDuration::ZERO.is_zero());
        assert!(!SimDuration::from_micros(1).is_zero());
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_millis(100);
        let d = SimDuration::from_millis(50);
        assert_eq!(t + d, SimTime::from_millis(150));
        assert_eq!(t - d, SimTime::from_millis(50));
        assert_eq!(SimTime::from_millis(150) - t, d);

        let mut u = t;
        u += d;
        assert_eq!(u, SimTime::from_millis(150));
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn saturating_operations() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_millis(1));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(late.checked_since(early), Some(SimDuration::from_millis(1)));
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn transmission_delay() {
        // RS-232 at 115.2 kbps: 20 bytes = 160 bits ≈ 1389 µs.
        let d = SimDuration::transmission(20, 115_200);
        assert_eq!(d.as_micros(), 1_389);
        // 100 Mbit Ethernet, 1500-byte frame.
        assert_eq!(
            SimDuration::transmission(1500, 100_000_000).as_micros(),
            120
        );
        // Zero bandwidth means "infinite capacity" (no serialization delay).
        assert_eq!(SimDuration::transmission(1500, 0), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_micros(7).to_string(), "7µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_millis(1_500).to_string(), "1.500s");
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
        assert_eq!(SimTime::default(), SimTime::ZERO);
    }
}
