//! Property-based tests for the simulation substrate: checksum algebra,
//! wire-format round-trips, time arithmetic, and deterministic event
//! ordering.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::Ipv4Addr;

use simnet::frame::{EtherType, EthernetFrame};
use simnet::ip::{internet_checksum, IcmpMessage, IpProto, Ipv4Packet};
use simnet::mac::MacAddr;
use simnet::time::{SimDuration, SimTime};

/// Textbook scalar RFC 1071 checksum: two bytes at a time, fold at the
/// end — the reference the optimized accumulator is pinned against.
fn scalar_checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(*last) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

proptest! {
    // ------------------------------------------------------------------
    // Internet checksum algebra
    // ------------------------------------------------------------------

    #[test]
    fn checksum_verifies_to_zero(data in vec(any::<u8>(), 0..512)) {
        let csum = internet_checksum(&data);
        let mut with = data.clone();
        if with.len() % 2 == 1 {
            with.push(0);
        }
        with.extend_from_slice(&csum.to_be_bytes());
        prop_assert_eq!(internet_checksum(&with), 0);
    }

    #[test]
    fn checksum_detects_single_bit_flips(data in vec(any::<u8>(), 1..256), bit: usize) {
        let original = internet_checksum(&data);
        let mut corrupted = data.clone();
        let i = bit % (data.len() * 8);
        corrupted[i / 8] ^= 1 << (i % 8);
        prop_assert_ne!(internet_checksum(&corrupted), original);
    }

    // Differential pin: the word-at-a-time (8-byte chunked) accumulator
    // must be byte-identical to the textbook scalar RFC 1071 walk for
    // every input length, alignment, and slice split.
    #[test]
    fn checksum_word_at_a_time_matches_scalar_reference(
        data in vec(any::<u8>(), 0..1024),
        split in 0usize..1024,
    ) {
        let reference = scalar_checksum(&data);
        prop_assert_eq!(internet_checksum(&data), reference);
        // Split the input at an arbitrary point (odd splits exercise the
        // byte-parity carry) and accumulate in two pushes.
        let mid = split % (data.len() + 1);
        let mut acc = simnet::ip::ChecksumAccumulator::new();
        acc.push(&data[..mid]);
        acc.push(&data[mid..]);
        prop_assert_eq!(acc.finish(), reference);
    }

    // ------------------------------------------------------------------
    // Wire-format round trips
    // ------------------------------------------------------------------

    #[test]
    fn ethernet_roundtrip(
        src: [u8; 6],
        dst: [u8; 6],
        ethertype: u16,
        payload in vec(any::<u8>(), 0..1600),
    ) {
        let f = EthernetFrame::new(
            MacAddr(src),
            MacAddr(dst),
            EtherType::from_u16(ethertype),
            Bytes::from(payload),
        );
        prop_assert_eq!(EthernetFrame::decode(&f.encode()).unwrap(), f);
    }

    #[test]
    fn ipv4_roundtrip(
        src: [u8; 4],
        dst: [u8; 4],
        proto: u8,
        payload in vec(any::<u8>(), 0..1480),
    ) {
        let p = Ipv4Packet::new(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            IpProto::from_u8(proto),
            Bytes::from(payload),
        );
        prop_assert_eq!(Ipv4Packet::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn ipv4_corruption_rejected_or_changed(
        src: [u8; 4],
        dst: [u8; 4],
        payload in vec(any::<u8>(), 0..128),
        bit: usize,
    ) {
        let p = Ipv4Packet::new(
            Ipv4Addr::from(src),
            Ipv4Addr::from(dst),
            IpProto::Tcp,
            Bytes::from(payload),
        );
        let mut wire = p.encode().to_vec();
        // Corrupt within the header (covered by the checksum).
        let i = bit % (20 * 8);
        wire[i / 8] ^= 1 << (i % 8);
        prop_assert!(Ipv4Packet::decode(&wire).is_err());
    }

    #[test]
    fn icmp_roundtrip(id: u16, seq: u16, reply: bool) {
        let m = if reply {
            IcmpMessage::EchoReply { id, seq }
        } else {
            IcmpMessage::EchoRequest { id, seq }
        };
        prop_assert_eq!(IcmpMessage::decode(&m.encode()).unwrap(), m);
    }

    // ------------------------------------------------------------------
    // Time arithmetic
    // ------------------------------------------------------------------

    #[test]
    fn time_add_sub_roundtrip(base in 0u64..(1u64 << 40), d in 0u64..(1u64 << 30)) {
        let t = SimTime::from_micros(base);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((t + dur) - dur, t);
        prop_assert_eq!((t + dur) - t, dur);
        prop_assert_eq!((t + dur).saturating_since(t), dur);
        prop_assert_eq!(t.saturating_since(t + dur), SimDuration::ZERO);
    }

    #[test]
    fn transmission_time_is_monotone(bytes_a in 0usize..100_000, bytes_b in 0usize..100_000, bps in 1u64..10_000_000_000) {
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(SimDuration::transmission(small, bps) <= SimDuration::transmission(large, bps));
    }
}

// ---------------------------------------------------------------------
// Deterministic world behaviour under random topologies of pulse nodes
// ---------------------------------------------------------------------

mod world_props {
    use super::*;
    use simnet::link::LinkParams;
    use simnet::node::{NicId, Node, NodeCtx, TimerToken};
    use simnet::world::World;

    struct Pulser {
        me: MacAddr,
        peer: MacAddr,
        period_us: u64,
        received: u64,
    }

    impl Node for Pulser {
        fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
            ctx.set_timer(SimDuration::from_micros(self.period_us), TimerToken(0));
        }
        fn on_frame(&mut self, _: &mut NodeCtx<'_>, _: NicId, _: EthernetFrame) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _: TimerToken) {
            let f = EthernetFrame::new(self.me, self.peer, EtherType::Ipv4, Bytes::new());
            ctx.send_frame(NicId(0), f);
            ctx.set_timer(SimDuration::from_micros(self.period_us), TimerToken(0));
        }
    }

    fn build(seed: u64, n: usize, periods: &[u64], loss: f64) -> World {
        let mut w = World::new(seed);
        let switch = w.add_switch(n);
        for i in 0..n {
            let me = MacAddr::unicast(i as u32 + 1);
            let peer = MacAddr::unicast(((i + 1) % n) as u32 + 1);
            let id = w.add_node(
                &format!("n{i}"),
                Box::new(Pulser {
                    me,
                    peer,
                    period_us: periods[i % periods.len()],
                    received: 0,
                }),
            );
            let nic = w.add_nic(id, me);
            let l = w.connect_to_switch(id, nic, switch, i, LinkParams::lan());
            w.link_mut(l).set_loss(simnet::link::LinkDir::AtoB, loss);
        }
        w.start();
        w
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn same_seed_same_world_history(
            seed: u64,
            n in 2usize..6,
            periods in vec(100u64..5_000, 1..4),
            loss in 0.0f64..0.4,
        ) {
            let run = |seed| {
                let mut w = build(seed, n, &periods, loss);
                w.run_until(SimTime::from_millis(50));
                w.events_processed()
            };
            prop_assert_eq!(run(seed), run(seed));
        }

        #[test]
        fn events_never_decrease_clock(
            seed: u64,
            periods in vec(100u64..2_000, 1..3),
        ) {
            let mut w = build(seed, 3, &periods, 0.1);
            let mut last = SimTime::ZERO;
            for _ in 0..500 {
                if !w.step() {
                    break;
                }
                prop_assert!(w.now() >= last);
                last = w.now();
            }
        }
    }
}
