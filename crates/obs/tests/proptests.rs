//! Property tests for the obs metrics primitives.
//!
//! The histogram is the one primitive that takes arbitrary input on the
//! hot path, so it gets the adversarial treatment: any bounds, any
//! values (including 0 and `u64::MAX`) must never panic, must conserve
//! counts, and must merge associatively.

use obs::metrics::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

fn filled(bounds: &[u64], values: &[u64]) -> Histogram {
    let mut h = Histogram::new(bounds.to_vec());
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn observe_never_panics_and_conserves_counts(
        bounds in vec(any::<u64>(), 0..8),
        values in vec(any::<u64>(), 0..200),
    ) {
        let h = filled(&bounds, &values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
        if let (Some(&lo), Some(&hi)) =
            (values.iter().min(), values.iter().max())
        {
            prop_assert_eq!(h.min(), Some(lo));
            prop_assert_eq!(h.max(), Some(hi));
        } else {
            prop_assert_eq!(h.min(), None);
            prop_assert_eq!(h.max(), None);
        }
    }

    #[test]
    fn every_value_lands_in_a_bucket_respecting_its_bound(
        bounds in vec(any::<u64>(), 1..8),
        v in any::<u64>(),
    ) {
        let h = filled(&bounds, &[v]);
        let idx = h.bucket_counts().iter().position(|&c| c == 1).unwrap();
        // The chosen bucket's bound admits the value…
        if let Some(&le) = h.bounds().get(idx) {
            prop_assert!(v <= le);
        }
        // …and the previous bucket's bound rejects it.
        if idx > 0 {
            prop_assert!(v > h.bounds()[idx - 1]);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        bounds in vec(any::<u64>(), 0..6),
        a in vec(any::<u64>(), 0..50),
        b in vec(any::<u64>(), 0..50),
        c in vec(any::<u64>(), 0..50),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = filled(&bounds, &a);
        left.merge(&filled(&bounds, &b));
        left.merge(&filled(&bounds, &c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = filled(&bounds, &b);
        right_tail.merge(&filled(&bounds, &c));
        let mut right = filled(&bounds, &a);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = filled(&bounds, &a);
        ab.merge(&filled(&bounds, &b));
        let mut ba = filled(&bounds, &b);
        ba.merge(&filled(&bounds, &a));
        prop_assert_eq!(&ab, &ba);
        // Merging equals observing the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &filled(&bounds, &all));
    }

    #[test]
    fn quantiles_never_panic_and_stay_in_range(
        bounds in vec(any::<u64>(), 0..8),
        values in vec(any::<u64>(), 0..100),
        q_millis in 0u64..=1_000,
    ) {
        let q = q_millis as f64 / 1_000.0;
        let h = filled(&bounds, &values);
        match h.quantile(q) {
            None => prop_assert!(values.is_empty()),
            Some(est) => {
                prop_assert!(est >= h.min().unwrap());
                prop_assert!(est <= h.max().unwrap());
            }
        }
    }
}
