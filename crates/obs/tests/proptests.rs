//! Property tests for the obs metrics primitives.
//!
//! The histogram is the one primitive that takes arbitrary input on the
//! hot path, so it gets the adversarial treatment: any bounds, any
//! values (including 0 and `u64::MAX`) must never panic, must conserve
//! counts, and must merge associatively. The flight-dump codec gets the
//! same: any well-formed snapshot must survive
//! `to_json → validate → from_json` unchanged.

use obs::metrics::Histogram;
use proptest::collection::vec;
use proptest::prelude::*;

use simnet::flight::{FlightEvent, FlightKind, SpanId};
use simnet::node::NodeId;
use simnet::time::SimTime;

/// Any of the twelve flight-event kinds with arbitrary field values.
fn kind_strategy() -> impl Strategy<Value = FlightKind> {
    prop_oneof![
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(
            |(conn, seq, len, flags)| FlightKind::SegSend {
                conn,
                seq,
                len,
                flags
            }
        ),
        (any::<u32>(), any::<u32>(), any::<u32>(), any::<u8>()).prop_map(
            |(conn, seq, len, flags)| FlightKind::SegDeliver {
                conn,
                seq,
                len,
                flags
            }
        ),
        (any::<u32>(), any::<u32>()).prop_map(|(conn, ack)| FlightKind::SegAck { conn, ack }),
        (any::<u32>(), any::<u8>(), any::<u32>(), any::<u32>()).prop_map(
            |(seqno, link, bytes, conns)| FlightKind::HbEmit {
                seqno,
                link,
                bytes,
                conns
            }
        ),
        (any::<u32>(), any::<u8>()).prop_map(|(seqno, link)| FlightKind::HbRecv { seqno, link }),
        (any::<u64>(), any::<u8>())
            .prop_map(|(epoch, target_rank)| FlightKind::FenceRequest { epoch, target_rank }),
        (any::<u64>(), any::<u8>(), any::<u8>(), any::<bool>()).prop_map(
            |(epoch, target_rank, voter_rank, granted)| FlightKind::FenceAck {
                epoch,
                target_rank,
                voter_rank,
                granted,
            }
        ),
        (any::<u64>(), any::<u8>())
            .prop_map(|(epoch, target_rank)| FlightKind::FenceCommit { epoch, target_rank }),
        any::<u32>().prop_map(|index| FlightKind::Fault { index }),
        any::<u32>().prop_map(|reason| FlightKind::Verdict { reason }),
        any::<u32>().prop_map(|target| FlightKind::Stonith { target }),
        any::<u32>().prop_map(|conns| FlightKind::Takeover { conns }),
    ]
}

fn filled(bounds: &[u64], values: &[u64]) -> Histogram {
    let mut h = Histogram::new(bounds.to_vec());
    for &v in values {
        h.observe(v);
    }
    h
}

proptest! {
    #[test]
    fn observe_never_panics_and_conserves_counts(
        bounds in vec(any::<u64>(), 0..8),
        values in vec(any::<u64>(), 0..200),
    ) {
        let h = filled(&bounds, &values);
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.bucket_counts().iter().sum::<u64>(), values.len() as u64);
        if let (Some(&lo), Some(&hi)) =
            (values.iter().min(), values.iter().max())
        {
            prop_assert_eq!(h.min(), Some(lo));
            prop_assert_eq!(h.max(), Some(hi));
        } else {
            prop_assert_eq!(h.min(), None);
            prop_assert_eq!(h.max(), None);
        }
    }

    #[test]
    fn every_value_lands_in_a_bucket_respecting_its_bound(
        bounds in vec(any::<u64>(), 1..8),
        v in any::<u64>(),
    ) {
        let h = filled(&bounds, &[v]);
        let idx = h.bucket_counts().iter().position(|&c| c == 1).unwrap();
        // The chosen bucket's bound admits the value…
        if let Some(&le) = h.bounds().get(idx) {
            prop_assert!(v <= le);
        }
        // …and the previous bucket's bound rejects it.
        if idx > 0 {
            prop_assert!(v > h.bounds()[idx - 1]);
        }
    }

    #[test]
    fn merge_is_associative_and_commutative(
        bounds in vec(any::<u64>(), 0..6),
        a in vec(any::<u64>(), 0..50),
        b in vec(any::<u64>(), 0..50),
        c in vec(any::<u64>(), 0..50),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = filled(&bounds, &a);
        left.merge(&filled(&bounds, &b));
        left.merge(&filled(&bounds, &c));
        // a ⊕ (b ⊕ c)
        let mut right_tail = filled(&bounds, &b);
        right_tail.merge(&filled(&bounds, &c));
        let mut right = filled(&bounds, &a);
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = filled(&bounds, &a);
        ab.merge(&filled(&bounds, &b));
        let mut ba = filled(&bounds, &b);
        ba.merge(&filled(&bounds, &a));
        prop_assert_eq!(&ab, &ba);
        // Merging equals observing the concatenation.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(&left, &filled(&bounds, &all));
    }

    #[test]
    fn flight_dump_round_trips_any_snapshot(
        raw in vec(
            (
                any::<u64>(),                 // time offset (µs)
                proptest::option::of(0usize..4), // node (4 hosts)
                1u64..=u64::MAX,              // span (0 is reserved for NONE)
                any::<u64>(),                 // parent (0 = no parent is legal)
                kind_strategy(),
            ),
            0..40,
        ),
        window_ms in proptest::option::of(any::<u64>()),
    ) {
        let hosts: Vec<String> =
            (0..4).map(|i| format!("host{i}")).collect();
        let events: Vec<FlightEvent> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (us, node, span, parent, kind))| FlightEvent {
                // The schema requires strictly increasing seqs; times
                // need not be monotone (rings merge by seq, not time).
                seq: i as u64 + 1,
                time: SimTime::from_micros(us),
                node: node.map(NodeId),
                span: SpanId(span),
                parent: SpanId(parent),
                kind,
            })
            .collect();
        let dump = obs::flightdump::to_json(&events, &hosts, window_ms);
        prop_assert!(obs::flightdump::validate(&dump).is_ok(),
            "generated dump fails validation: {:?}",
            obs::flightdump::validate(&dump));
        let (back_events, back_hosts) =
            obs::flightdump::from_json(&dump).expect("from_json");
        prop_assert_eq!(back_events, events);
        prop_assert_eq!(back_hosts, hosts);
        // And the textual form reparses to the same JSON value.
        let reparsed = obs::json::Json::parse(&dump.to_string()).expect("reparse");
        prop_assert_eq!(reparsed, dump);
    }

    #[test]
    fn quantiles_never_panic_and_stay_in_range(
        bounds in vec(any::<u64>(), 0..8),
        values in vec(any::<u64>(), 0..100),
        q_millis in 0u64..=1_000,
    ) {
        let q = q_millis as f64 / 1_000.0;
        let h = filled(&bounds, &values);
        match h.quantile(q) {
            None => prop_assert!(values.is_empty()),
            Some(est) => {
                prop_assert!(est >= h.min().unwrap());
                prop_assert!(est <= h.max().unwrap());
            }
        }
    }
}
