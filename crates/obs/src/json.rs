//! A minimal JSON value builder.
//!
//! The workspace is built offline against vendored shims, so there is no
//! serde; reports are assembled as [`Json`] trees and serialized by
//! hand. Output is deterministic: object keys keep insertion order, and
//! numbers are emitted via Rust's shortest-round-trip formatting.

use core::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object (replacing an existing entry of the same
    /// name, so reports stay free of duplicate keys).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
            f.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }

    /// Looks up `key` on an object (tests and report assertions).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // Keep floats visibly floats for schema stability.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(42).to_string(), "42");
        assert_eq!(Json::I64(-7).to_string(), "-7");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(2.0).to_string(), "2.0");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\u{1}").to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order_and_dedup_keys() {
        let mut o = Json::obj();
        o.set("b", Json::U64(1));
        o.set("a", Json::U64(2));
        o.set("b", Json::U64(3));
        assert_eq!(o.to_string(), "{\"b\":3,\"a\":2}");
        assert_eq!(o.get("a"), Some(&Json::U64(2)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn arrays_nest() {
        let v = Json::Arr(vec![Json::U64(1), Json::Arr(vec![Json::Null])]);
        assert_eq!(v.to_string(), "[1,[null]]");
    }
}
