//! A minimal JSON value builder and parser.
//!
//! The workspace is built offline against vendored shims, so there is no
//! serde; reports are assembled as [`Json`] trees and serialized by
//! hand. Output is deterministic: object keys keep insertion order, and
//! numbers are emitted via Rust's shortest-round-trip formatting.
//! [`Json::parse`] is the inverse — a small recursive-descent reader
//! used to validate and round-trip flight-recorder dumps.

use core::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (non-finite values serialize as `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Sets `key` on an object (replacing an existing entry of the same
    /// name, so reports stay free of duplicate keys).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn set(&mut self, key: &str, value: Json) {
        let Json::Obj(fields) = self else {
            panic!("Json::set on a non-object");
        };
        if let Some(f) = fields.iter_mut().find(|(k, _)| k == key) {
            f.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }

    /// Looks up `key` on an object (tests and report assertions).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one (accepts a
    /// non-negative `I64` too, since a parser cannot tell them apart).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value's array items, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document. Integers parse to [`Json::U64`] (or
    /// [`Json::I64`] when negative) when they fit exactly; everything
    /// else numeric parses to [`Json::F64`].
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input, including
    /// trailing garbage after the document.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(x) => {
                if x.is_finite() {
                    let s = format!("{x}");
                    out.push_str(&s);
                    // Keep floats visibly floats for schema stability.
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| format!("short \\u escape at byte {}", self.pos))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogates are not produced by our writer;
                            // map them to the replacement character.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid utf-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::U64(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::U64(42).to_string(), "42");
        assert_eq!(Json::I64(-7).to_string(), "-7");
        assert_eq!(Json::F64(f64::NAN).to_string(), "null");
        assert_eq!(Json::F64(1.5).to_string(), "1.5");
        assert_eq!(Json::F64(2.0).to_string(), "2.0");
        assert_eq!(Json::from("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn escapes_strings() {
        let s = Json::from("a\"b\\c\nd\u{1}").to_string();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn objects_keep_insertion_order_and_dedup_keys() {
        let mut o = Json::obj();
        o.set("b", Json::U64(1));
        o.set("a", Json::U64(2));
        o.set("b", Json::U64(3));
        assert_eq!(o.to_string(), "{\"b\":3,\"a\":2}");
        assert_eq!(o.get("a"), Some(&Json::U64(2)));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn arrays_nest() {
        let v = Json::Arr(vec![Json::U64(1), Json::Arr(vec![Json::Null])]);
        assert_eq!(v.to_string(), "[1,[null]]");
    }

    #[test]
    fn parse_round_trips_builder_output() {
        let mut o = Json::obj();
        o.set("n", Json::Null);
        o.set("b", Json::Bool(false));
        o.set("u", Json::U64(u64::MAX));
        o.set("i", Json::I64(-42));
        o.set("f", Json::F64(1.25));
        o.set("s", Json::from("he\"llo\n\u{1}✓"));
        o.set("a", Json::Arr(vec![Json::U64(1), Json::Bool(true)]));
        let text = o.to_string();
        let back = Json::parse(&text).unwrap();
        // I64(-42) survives as I64; everything else is structurally
        // identical (the writer/parser pair is exact for our types).
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let v = Json::parse(" { \"a\" : [ 1 , { \"b\" : null } ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::U64(42));
        assert_eq!(Json::parse("-7").unwrap(), Json::I64(-7));
        assert_eq!(Json::parse("1.5").unwrap(), Json::F64(1.5));
        assert_eq!(Json::parse("2e3").unwrap(), Json::F64(2000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::U64(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing data");
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("\"bad \\x escape\"").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\"").unwrap(),
            Json::Str("Aé".to_string())
        );
    }

    #[test]
    fn accessors_narrow_types() {
        assert_eq!(Json::U64(5).as_u64(), Some(5));
        assert_eq!(Json::I64(5).as_u64(), Some(5));
        assert_eq!(Json::I64(-5).as_u64(), None);
        assert_eq!(Json::from("x").as_str(), Some("x"));
        assert_eq!(Json::Null.as_str(), None);
        assert!(Json::Arr(vec![]).as_arr().unwrap().is_empty());
    }
}
