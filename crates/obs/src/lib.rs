//! # obs — metrics, timelines, and JSON reports for the ST-TCP repro
//!
//! The observability substrate shared by every layer of the workspace:
//!
//! * [`metrics`] — [`metrics::Counter`], [`metrics::Gauge`], and
//!   fixed-bucket [`metrics::Histogram`]s with zero allocation on the
//!   hot path; histograms merge across runs and estimate quantiles.
//! * [`timeline`] — a typed [`timeline::Timeline`] that decomposes one
//!   failover into six contiguous phases (fault injected → symptom →
//!   verdict → STONITH → takeover → first client-visible byte) whose
//!   durations partition the client-observed stall by construction.
//! * [`json`] / [`report`] — a dependency-free JSON value builder and
//!   the schema-versioned [`report::MetricsReport`] every demo, chaos
//!   hunt, and soak tier can emit.
//!
//! `obs` deliberately depends only on [`simnet`] (for virtual time), so
//! the TCP stack, the ST-TCP core, and the harnesses can all layer on
//! top of it without cycles. Protocol events are mapped to phase marks
//! by the crates that own them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flightdump;
pub mod json;
pub mod metrics;
pub mod report;
pub mod timeline;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::flightdump::FLIGHT_SCHEMA_VERSION;
    pub use crate::json::Json;
    pub use crate::metrics::{Counter, Gauge, Histogram};
    pub use crate::report::MetricsReport;
    pub use crate::timeline::{Phase, PhaseBreakdown, PhaseMark, Timeline};
}
