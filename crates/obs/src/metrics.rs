//! Metrics primitives: counters, gauges, and fixed-bucket histograms.
//!
//! All three are plain value types with **no allocation on the hot
//! path**: a [`Histogram`] allocates its bucket array once at
//! construction, and `observe` is a binary search plus a handful of
//! integer updates. Values are `u64` — virtual-time durations in
//! microseconds (see [`Histogram::observe_duration`]), byte counts, or
//! anything else that fits.

use core::fmt;

use simnet::time::SimDuration;

use crate::json::Json;

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter {
    n: u64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.n += 1;
    }

    /// Adds `n` (saturating).
    pub fn add(&mut self, n: u64) {
        self.n = self.n.saturating_add(n);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.n
    }
}

/// A sampled quantity that also remembers its high-water mark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    high: u64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records the current value, updating the high-water mark.
    pub fn set(&mut self, v: u64) {
        self.current = v;
        self.high = self.high.max(v);
    }

    /// The last recorded value.
    pub fn get(&self) -> u64 {
        self.current
    }

    /// The largest value ever recorded.
    pub fn high_water(&self) -> u64 {
        self.high
    }

    /// The gauge as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("current", Json::U64(self.current));
        o.set("high_water", Json::U64(self.high));
        o
    }
}

/// A fixed-bucket histogram over `u64` values.
///
/// Buckets are defined by a sorted vector of inclusive upper bounds; an
/// implicit final bucket catches everything above the last bound, so
/// every observation lands somewhere and `observe` can never panic.
/// Two histograms with the same bounds can be [`Histogram::merge`]d;
/// merging is commutative and associative (counts and sums add,
/// min/max combine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Sorted, deduplicated inclusive upper bounds.
    bounds: Vec<u64>,
    /// One count per bound, plus the overflow bucket at the end.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates a histogram with the given inclusive upper bounds (sorted
    /// and deduplicated internally so merge compatibility only depends on
    /// the *set* of bounds).
    pub fn new(mut bounds: Vec<u64>) -> Histogram {
        bounds.sort_unstable();
        bounds.dedup();
        let counts = vec![0; bounds.len() + 1];
        Histogram {
            bounds,
            counts,
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Default bounds for virtual-time latencies in microseconds:
    /// roughly exponential from 100 µs to 60 s.
    pub fn latency_us() -> Histogram {
        Histogram::new(vec![
            100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 200_000, 300_000,
            400_000, 500_000, 700_000, 1_000_000, 1_500_000, 2_000_000, 3_000_000, 5_000_000,
            10_000_000, 30_000_000, 60_000_000,
        ])
    }

    /// Default bounds for byte quantities: powers of four from 256 B to
    /// 16 MiB.
    pub fn bytes() -> Histogram {
        Histogram::new(vec![
            256,
            1 << 10,
            4 << 10,
            16 << 10,
            64 << 10,
            256 << 10,
            1 << 20,
            4 << 20,
            16 << 20,
        ])
    }

    /// Records one observation. Never panics, never allocates.
    pub fn observe(&mut self, v: u64) {
        let i = self.bounds.partition_point(|&b| b < v);
        self.counts[i] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a virtual-time duration, in microseconds.
    pub fn observe_duration(&mut self, d: SimDuration) {
        self.observe(d.as_micros());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observed value, if any.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observed value, if any.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts (one per bound, plus the overflow bucket).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// An upper estimate of the `q`-quantile (0.0 ..= 1.0): the bound of
    /// the bucket containing the rank, clamped to the observed maximum.
    /// `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(self.max);
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Merges another histogram's observations into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms of
    /// different shapes is a logic error.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "histogram bounds mismatch");
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// The histogram as a JSON object: count/sum/min/max, the p50, p90,
    /// and p99 estimates, and the non-empty buckets as `{le, n}` pairs
    /// (the overflow bucket reports `"le": null`).
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.set("count", Json::U64(self.count));
        o.set("sum", Json::U64(self.sum));
        o.set("min", self.min().map_or(Json::Null, Json::U64));
        o.set("max", self.max().map_or(Json::Null, Json::U64));
        o.set("p50", self.quantile(0.50).map_or(Json::Null, Json::U64));
        o.set("p90", self.quantile(0.90).map_or(Json::Null, Json::U64));
        o.set("p99", self.quantile(0.99).map_or(Json::Null, Json::U64));
        let mut buckets = Vec::new();
        for (i, &n) in self.counts.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let mut b = Json::obj();
            b.set(
                "le",
                self.bounds.get(i).copied().map_or(Json::Null, Json::U64),
            );
            b.set("n", Json::U64(n));
            buckets.push(b);
        }
        o.set("buckets", Json::Arr(buckets));
        o
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.min(), self.max()) {
            (Some(lo), Some(hi)) => write!(
                f,
                "n={} min={} p50={} p99={} max={}",
                self.count,
                lo,
                self.quantile(0.5).unwrap(),
                self.quantile(0.99).unwrap(),
                hi
            ),
            _ => write!(f, "n=0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.add(u64::MAX);
        assert_eq!(c.get(), u64::MAX);

        let mut g = Gauge::new();
        g.set(10);
        g.set(3);
        assert_eq!(g.get(), 3);
        assert_eq!(g.high_water(), 10);
    }

    #[test]
    fn histogram_counts_are_conserved() {
        let mut h = Histogram::new(vec![10, 100, 1_000]);
        for v in [0, 10, 11, 100, 101, 1_000, 1_001, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8);
        // Bounds are inclusive: 10 lands in the first bucket.
        assert_eq!(h.bucket_counts(), &[2, 2, 2, 2]);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = Histogram::latency_us();
        assert_eq!(h.quantile(0.5), None);
        for ms in 1..=100u64 {
            h.observe(ms * 1_000);
        }
        let p50 = h.quantile(0.5).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        let max = h.quantile(1.0).unwrap();
        assert!(p50 <= p99 && p99 <= max);
        assert!(max <= 100_000);
        assert!((25_000..=100_000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Histogram::bytes();
        let mut b = Histogram::bytes();
        a.observe(100);
        b.observe(1 << 22);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(100));
        assert_eq!(a.max(), Some(1 << 22));
    }

    #[test]
    #[should_panic(expected = "bounds mismatch")]
    fn merge_rejects_different_shapes() {
        let mut a = Histogram::new(vec![1]);
        a.merge(&Histogram::new(vec![2]));
    }

    #[test]
    fn json_shape() {
        let mut h = Histogram::new(vec![10]);
        h.observe(5);
        let s = h.to_json().to_string();
        assert!(s.contains("\"count\":1"));
        assert!(s.contains("\"buckets\""));
    }

    #[test]
    fn display_summarizes() {
        let mut h = Histogram::new(vec![10]);
        assert_eq!(h.to_string(), "n=0");
        h.observe(3);
        assert!(h.to_string().contains("n=1"));
    }
}
