//! Schema-versioned flight-recorder dumps: JSON and Chrome trace-event.
//!
//! A dump is the snapshot a harness takes from
//! [`simnet::flight::FlightRecorder`] when a run violates an invariant:
//! the last window of causally-linked datapath events across every
//! host. This module renders that snapshot two ways —
//!
//! * [`to_json`]: the canonical schema-versioned dump, parsed back by
//!   [`from_json`] and checked by [`validate`] (CI runs the validator
//!   over every dump an experiment writes);
//! * [`to_chrome_trace`]: a Chrome trace-event file loadable in
//!   `ui.perfetto.dev` or `chrome://tracing`, with one track per host
//!   and flow arrows joining the events of each causal span (and each
//!   child span to its parent).
//!
//! Both renderings are pure functions of the event list, so a dump is
//! byte-identical wherever and however often it is produced.

use simnet::flight::{FlightEvent, FlightKind, FlightSnapshot, SpanId, FLIGHT_KIND_SPECS};
use simnet::node::NodeId;
use simnet::time::SimTime;

use crate::json::Json;

/// Version stamped into every dump; bump when the layout changes.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Renders the canonical schema-versioned JSON dump.
///
/// `hosts[i]` names node `i` (the world's per-node trace names);
/// `window_ms` records the snapshot window the harness used (`None`
/// when the full retained history was dumped).
pub fn to_json(events: &[FlightEvent], hosts: &[String], window_ms: Option<u64>) -> Json {
    let mut root = Json::obj();
    root.set(
        "schema_version",
        Json::U64(u64::from(FLIGHT_SCHEMA_VERSION)),
    );
    root.set("kind", Json::from("flight_recorder"));
    root.set(
        "hosts",
        Json::Arr(hosts.iter().map(|h| Json::from(h.as_str())).collect()),
    );
    root.set(
        "window_ms",
        match window_ms {
            Some(w) => Json::U64(w),
            None => Json::Null,
        },
    );
    root.set(
        "events",
        Json::Arr(
            events
                .iter()
                .map(|e| {
                    let mut o = Json::obj();
                    o.set("seq", Json::U64(e.seq));
                    o.set("t_us", Json::U64(e.time.as_micros()));
                    o.set(
                        "node",
                        match e.node {
                            Some(n) => Json::U64(n.0 as u64),
                            None => Json::Null,
                        },
                    );
                    o.set("span", Json::Str(e.span.to_string()));
                    o.set(
                        "parent",
                        if e.parent.is_none() {
                            Json::Null
                        } else {
                            Json::Str(e.parent.to_string())
                        },
                    );
                    o.set("kind", Json::from(e.kind.name()));
                    let mut args = Json::obj();
                    for (name, value) in e.kind.fields() {
                        args.set(name, Json::U64(value));
                    }
                    o.set("args", args);
                    o
                })
                .collect(),
        ),
    );
    root
}

/// Renders a harness-captured [`FlightSnapshot`] as the canonical dump.
pub fn snapshot_to_json(snap: &FlightSnapshot) -> Json {
    to_json(&snap.events, &snap.hosts, snap.window_ms)
}

/// Renders a harness-captured [`FlightSnapshot`] as a Chrome trace.
pub fn snapshot_to_chrome_trace(snap: &FlightSnapshot) -> Json {
    to_chrome_trace(&snap.events, &snap.hosts)
}

/// Parses a dump produced by [`to_json`] back into events and host
/// names.
///
/// # Errors
///
/// Returns a message naming the first structural problem found.
pub fn from_json(dump: &Json) -> Result<(Vec<FlightEvent>, Vec<String>), String> {
    validate(dump)?;
    let hosts = dump
        .get("hosts")
        .and_then(Json::as_arr)
        .expect("validated")
        .iter()
        .map(|h| h.as_str().expect("validated").to_string())
        .collect();
    let mut events = Vec::new();
    for ev in dump
        .get("events")
        .and_then(Json::as_arr)
        .expect("validated")
    {
        let args = ev.get("args").expect("validated");
        let get = |name: &str| args.get(name).and_then(Json::as_u64);
        let kind_name = ev.get("kind").and_then(Json::as_str).expect("validated");
        let kind = FlightKind::from_fields(kind_name, &get)
            .ok_or_else(|| format!("unreconstructible kind {kind_name:?}"))?;
        let span = ev.get("span").and_then(Json::as_str).expect("validated");
        let parent = match ev.get("parent") {
            Some(Json::Null) | None => SpanId::NONE,
            Some(p) => SpanId::from_hex(p.as_str().expect("validated")).expect("validated"),
        };
        events.push(FlightEvent {
            seq: ev.get("seq").and_then(Json::as_u64).expect("validated"),
            time: SimTime::from_micros(ev.get("t_us").and_then(Json::as_u64).expect("validated")),
            node: match ev.get("node") {
                Some(Json::Null) => None,
                Some(n) => Some(NodeId(n.as_u64().expect("validated") as usize)),
                None => None,
            },
            span: SpanId::from_hex(span).expect("validated"),
            parent,
            kind,
        });
    }
    Ok((events, hosts))
}

/// Checks a dump against the flight-recorder schema: version, required
/// keys and types, known event kinds with exactly the spec'd argument
/// set, parseable span ids, and record-order `seq`.
///
/// # Errors
///
/// Returns a message naming the first violation.
pub fn validate(dump: &Json) -> Result<(), String> {
    let version = dump
        .get("schema_version")
        .and_then(Json::as_u64)
        .ok_or("missing schema_version")?;
    if version != u64::from(FLIGHT_SCHEMA_VERSION) {
        return Err(format!("unsupported schema_version {version}"));
    }
    if dump.get("kind").and_then(Json::as_str) != Some("flight_recorder") {
        return Err("kind is not \"flight_recorder\"".to_string());
    }
    let hosts = dump
        .get("hosts")
        .and_then(Json::as_arr)
        .ok_or("missing hosts array")?;
    for h in hosts {
        h.as_str().ok_or("non-string host name")?;
    }
    match dump.get("window_ms") {
        Some(Json::Null) => {}
        Some(w) => {
            w.as_u64().ok_or("window_ms is not an integer")?;
        }
        None => return Err("missing window_ms".to_string()),
    }
    let events = dump
        .get("events")
        .and_then(Json::as_arr)
        .ok_or("missing events array")?;
    let mut prev_seq: Option<u64> = None;
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("event {i}: {msg}");
        let seq = ev
            .get("seq")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing seq"))?;
        if let Some(p) = prev_seq {
            if seq <= p {
                return Err(at("seq not strictly increasing"));
            }
        }
        prev_seq = Some(seq);
        ev.get("t_us")
            .and_then(Json::as_u64)
            .ok_or_else(|| at("missing t_us"))?;
        match ev.get("node") {
            Some(Json::Null) => {}
            Some(n) => {
                let n = n.as_u64().ok_or_else(|| at("node is not an integer"))?;
                if n as usize >= hosts.len() {
                    return Err(at("node out of range of hosts"));
                }
            }
            None => return Err(at("missing node")),
        }
        let span = ev
            .get("span")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing span"))?;
        let span = SpanId::from_hex(span).ok_or_else(|| at("unparseable span"))?;
        if span.is_none() {
            return Err(at("span is the null span"));
        }
        match ev.get("parent") {
            Some(Json::Null) => {}
            Some(p) => {
                let p = p.as_str().ok_or_else(|| at("parent is not a string"))?;
                SpanId::from_hex(p).ok_or_else(|| at("unparseable parent"))?;
            }
            None => return Err(at("missing parent")),
        }
        let kind = ev
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing kind"))?;
        let (_, spec_fields) = FLIGHT_KIND_SPECS
            .iter()
            .find(|(n, _)| *n == kind)
            .ok_or_else(|| at(&format!("unknown kind {kind:?}")))?;
        let args = ev.get("args").ok_or_else(|| at("missing args"))?;
        let Json::Obj(arg_fields) = args else {
            return Err(at("args is not an object"));
        };
        if arg_fields.len() != spec_fields.len() {
            return Err(at("args do not match the kind's field set"));
        }
        for field in *spec_fields {
            args.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| at(&format!("missing or non-integer arg {field:?}")))?;
        }
    }
    Ok(())
}

/// Renders a Chrome trace-event file (the `{"traceEvents": [...]}` JSON
/// form) loadable in `ui.perfetto.dev`.
///
/// Each host becomes a process (named track); each event a 1 µs slice;
/// each causal span a flow (arrow) threaded through its events, with
/// child spans additionally joined to their parent's flow.
pub fn to_chrome_trace(events: &[FlightEvent], hosts: &[String]) -> Json {
    let pid_of = |node: Option<NodeId>| node.map_or(0u64, |n| n.0 as u64 + 1);
    let mut out: Vec<Json> = Vec::new();

    // Process-name metadata: pid 0 is the world (fault injections).
    let mut names: Vec<(u64, &str)> = vec![(0, "world")];
    for (i, h) in hosts.iter().enumerate() {
        names.push((i as u64 + 1, h.as_str()));
    }
    for (pid, name) in names {
        let mut m = Json::obj();
        m.set("ph", Json::from("M"));
        m.set("name", Json::from("process_name"));
        m.set("pid", Json::U64(pid));
        m.set("tid", Json::U64(0));
        let mut args = Json::obj();
        args.set("name", Json::from(name));
        m.set("args", args);
        out.push(m);
    }

    // Count events per span so flows know where they start and end.
    let span_count = |span: SpanId| events.iter().filter(|e| e.span == span).count();
    let mut span_seen: Vec<(SpanId, usize)> = Vec::new();

    for e in events {
        let pid = pid_of(e.node);
        let ts = e.time.as_micros();

        let mut slice = Json::obj();
        slice.set("ph", Json::from("X"));
        slice.set("name", Json::from(e.kind.name()));
        slice.set("cat", Json::from("flight"));
        slice.set("pid", Json::U64(pid));
        slice.set("tid", Json::U64(0));
        slice.set("ts", Json::U64(ts));
        slice.set("dur", Json::U64(1));
        let mut args = Json::obj();
        args.set("span", Json::Str(e.span.to_string()));
        if !e.parent.is_none() {
            args.set("parent", Json::Str(e.parent.to_string()));
        }
        for (name, value) in e.kind.fields() {
            args.set(name, Json::U64(value));
        }
        slice.set("args", args);
        out.push(slice);

        // Flow through this event's own span (arrows between the
        // send/deliver/ack or emit/recv events of one span).
        let total = span_count(e.span);
        if total > 1 {
            let seen = match span_seen.iter_mut().find(|(s, _)| *s == e.span) {
                Some(entry) => {
                    entry.1 += 1;
                    entry.1
                }
                None => {
                    span_seen.push((e.span, 1));
                    1
                }
            };
            let ph = if seen == 1 {
                "s"
            } else if seen == total {
                "f"
            } else {
                "t"
            };
            let mut flow = Json::obj();
            flow.set("ph", Json::from(ph));
            flow.set("name", Json::from("span"));
            flow.set("cat", Json::from("flow"));
            flow.set("id", Json::Str(e.span.to_string()));
            flow.set("pid", Json::U64(pid));
            flow.set("tid", Json::U64(0));
            flow.set("ts", Json::U64(ts));
            if ph == "f" {
                flow.set("bp", Json::from("e"));
            }
            out.push(flow);
        }

        // Join a child event into its parent span's flow (the causal
        // arrow fault → detection → verdict → takeover).
        if !e.parent.is_none() && span_count(e.parent) > 0 {
            let mut flow = Json::obj();
            flow.set("ph", Json::from("t"));
            flow.set("name", Json::from("span"));
            flow.set("cat", Json::from("flow"));
            flow.set("id", Json::Str(e.parent.to_string()));
            flow.set("pid", Json::U64(pid));
            flow.set("tid", Json::U64(0));
            flow.set("ts", Json::U64(ts));
            out.push(flow);
        }
    }

    let mut root = Json::obj();
    root.set("traceEvents", Json::Arr(out));
    root.set("displayTimeUnit", Json::from("ms"));
    root
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<FlightEvent> {
        let hb = SpanId::heartbeat(1, 0, 5);
        let fault = SpanId::fault(0);
        let verdict = SpanId::verdict(2, 1_500_000);
        vec![
            FlightEvent {
                seq: 0,
                time: SimTime::from_millis(100),
                node: None,
                span: fault,
                parent: SpanId::NONE,
                kind: FlightKind::Fault { index: 0 },
            },
            FlightEvent {
                seq: 1,
                time: SimTime::from_millis(200),
                node: Some(NodeId(1)),
                span: hb,
                parent: SpanId::NONE,
                kind: FlightKind::HbEmit {
                    seqno: 5,
                    link: 0,
                    bytes: 34,
                    conns: 1,
                },
            },
            FlightEvent {
                seq: 2,
                time: SimTime::from_millis(201),
                node: Some(NodeId(2)),
                span: hb,
                parent: SpanId::NONE,
                kind: FlightKind::HbRecv { seqno: 5, link: 0 },
            },
            FlightEvent {
                seq: 3,
                time: SimTime::from_millis(1500),
                node: Some(NodeId(2)),
                span: verdict,
                parent: hb,
                kind: FlightKind::Verdict { reason: 3 },
            },
        ]
    }

    fn hosts() -> Vec<String> {
        vec!["client".into(), "primary".into(), "backup".into()]
    }

    #[test]
    fn dump_validates_and_round_trips() {
        let events = sample_events();
        let dump = to_json(&events, &hosts(), Some(2000));
        validate(&dump).unwrap();
        let (back, h) = from_json(&dump).unwrap();
        assert_eq!(back, events);
        assert_eq!(h, hosts());
        // And the serialized text round-trips through the parser too.
        let reparsed = Json::parse(&dump.to_string()).unwrap();
        assert_eq!(reparsed, dump);
    }

    #[test]
    fn validate_rejects_structural_problems() {
        let events = sample_events();
        let good = to_json(&events, &hosts(), None);
        validate(&good).unwrap();

        let mut bad = good.clone();
        bad.set("schema_version", Json::U64(999));
        assert!(validate(&bad).unwrap_err().contains("schema_version"));

        let mut bad = good.clone();
        bad.set("kind", Json::from("something_else"));
        assert!(validate(&bad).is_err());

        // Unknown event kind.
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            if let Some((_, Json::Arr(evs))) = fields.iter_mut().find(|(k, _)| k == "events") {
                evs[0].set("kind", Json::from("mystery"));
            }
        }
        assert!(validate(&bad).unwrap_err().contains("unknown kind"));

        // Args not matching the kind's field set.
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            if let Some((_, Json::Arr(evs))) = fields.iter_mut().find(|(k, _)| k == "events") {
                let mut args = Json::obj();
                args.set("wrong", Json::U64(1));
                evs[0].set("args", args);
            }
        }
        assert!(validate(&bad).is_err());

        // Node index out of range of the host list.
        let mut bad = good.clone();
        if let Json::Obj(fields) = &mut bad {
            if let Some((_, Json::Arr(evs))) = fields.iter_mut().find(|(k, _)| k == "events") {
                evs[1].set("node", Json::U64(99));
            }
        }
        assert!(validate(&bad).unwrap_err().contains("out of range"));

        // Regressing seq.
        let mut bad = good;
        if let Json::Obj(fields) = &mut bad {
            if let Some((_, Json::Arr(evs))) = fields.iter_mut().find(|(k, _)| k == "events") {
                evs[1].set("seq", Json::U64(0));
            }
        }
        assert!(validate(&bad).unwrap_err().contains("seq"));
    }

    #[test]
    fn chrome_trace_has_tracks_slices_and_flows() {
        let events = sample_events();
        let trace = to_chrome_trace(&events, &hosts());
        let evs = trace.get("traceEvents").and_then(Json::as_arr).unwrap();
        let ph = |e: &Json| e.get("ph").and_then(Json::as_str).unwrap().to_string();
        // 4 process-name metadata records (world + 3 hosts).
        assert_eq!(evs.iter().filter(|e| ph(e) == "M").count(), 4);
        // One slice per event.
        assert_eq!(evs.iter().filter(|e| ph(e) == "X").count(), events.len());
        // The heartbeat span has 2 events -> a flow start and finish;
        // the verdict joins its parent's flow with a step.
        assert_eq!(evs.iter().filter(|e| ph(e) == "s").count(), 1);
        assert_eq!(evs.iter().filter(|e| ph(e) == "f").count(), 1);
        assert!(evs.iter().any(|e| ph(e) == "t"));
        // Every slice has the mandatory Chrome fields.
        for e in evs.iter().filter(|e| ph(e) == "X") {
            for key in ["name", "pid", "tid", "ts", "dur", "args"] {
                assert!(e.get(key).is_some(), "slice missing {key}");
            }
        }
        // The whole trace parses back (it is what we write to disk).
        assert_eq!(Json::parse(&trace.to_string()).unwrap(), trace);
    }
}
