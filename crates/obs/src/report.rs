//! The versioned JSON metrics report.
//!
//! Every run — demos, `chaos_hunt`, soak tiers — can emit one
//! [`MetricsReport`]: a schema-versioned JSON document with one section
//! per instrumented layer (`simnet`, `tcp`, `core`, `client`, …). The
//! report is assembled from [`crate::json::Json`] values (histograms and
//! gauges serialize themselves) and written with no external
//! dependencies.

use std::io;
use std::path::Path;

use crate::json::Json;

/// A schema-versioned metrics report.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    root: Json,
}

impl Default for MetricsReport {
    fn default() -> MetricsReport {
        MetricsReport::new("unnamed")
    }
}

impl MetricsReport {
    /// The report schema version. Bump when renaming or removing fields;
    /// adding fields is compatible.
    pub const SCHEMA_VERSION: u64 = 1;

    /// Creates an empty report for a run kind (`"demo1_failover"`,
    /// `"chaos_hunt"`, …).
    pub fn new(kind: &str) -> MetricsReport {
        let mut root = Json::obj();
        root.set("schema_version", Json::U64(Self::SCHEMA_VERSION));
        root.set("kind", Json::from(kind));
        MetricsReport { root }
    }

    /// Sets (or replaces) a top-level section.
    pub fn set(&mut self, name: &str, value: Json) {
        self.root.set(name, value);
    }

    /// Reads a top-level section back (assertions and tests).
    pub fn get(&self, name: &str) -> Option<&Json> {
        self.root.get(name)
    }

    /// Serializes the report to a JSON string.
    pub fn to_json(&self) -> String {
        self.root.to_string()
    }

    /// Writes the report to a file, with a trailing newline.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        let mut s = self.to_json();
        s.push('\n');
        std::fs::write(path, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_carries_version_and_kind() {
        let r = MetricsReport::new("test_run");
        let s = r.to_json();
        assert!(s.starts_with("{\"schema_version\":1,\"kind\":\"test_run\""));
    }

    #[test]
    fn sections_are_settable_and_readable() {
        let mut r = MetricsReport::new("x");
        let mut s = Json::obj();
        s.set("frames", Json::U64(7));
        r.set("simnet", s);
        assert_eq!(
            r.get("simnet").and_then(|j| j.get("frames")),
            Some(&Json::U64(7))
        );
        assert!(r.to_json().contains("\"simnet\":{\"frames\":7}"));
    }

    #[test]
    fn write_to_roundtrips_bytes() {
        let dir = std::env::temp_dir().join("obs_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.json");
        let r = MetricsReport::new("disk");
        r.write_to(&path).unwrap();
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.to_json() + "\n");
        let _ = std::fs::remove_file(&path);
    }
}
