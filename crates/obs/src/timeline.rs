//! The failover-phase timeline.
//!
//! A [`Timeline`] stitches the marks of one failover — fault injected,
//! first symptom, verdict, STONITH, takeover, re-integration (when a
//! rebooted peer rejoined), first client-visible byte after the stall —
//! into a [`PhaseBreakdown`]: seven contiguous phases that *partition*
//! the client-observed stall window. Boundaries are
//! clamped monotonically into the window, so the phase durations sum to
//! the total stall **by construction** (the acceptance check of the
//! paper's "at worst a short stall" claim becomes an identity, and any
//! disagreement with the client transcript is a bug in the marks, not in
//! the arithmetic).
//!
//! `obs` sits below the ST-TCP core, so the marks are protocol-neutral;
//! the mapping from `StTcpEvent`s to marks lives with the harnesses that
//! own the event logs.

use core::fmt;

use simnet::time::{SimDuration, SimTime};

use crate::json::Json;

/// A timestamped milestone inside one failover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseMark {
    /// The fault was injected (known to the harness, not the protocol).
    FaultInjected,
    /// The surviving server first observed a symptom (e.g. a heartbeat
    /// link going down).
    SymptomObserved,
    /// The surviving server declared its peer failed.
    Verdict,
    /// STONITH was issued to the failed peer.
    Stonith,
    /// The takeover completed (egress unsuppressed).
    Takeover,
    /// A rebooted peer completed re-integration (redundancy restored).
    Reintegrated,
}

impl PhaseMark {
    const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            PhaseMark::FaultInjected => 0,
            PhaseMark::SymptomObserved => 1,
            PhaseMark::Verdict => 2,
            PhaseMark::Stonith => 3,
            PhaseMark::Takeover => 4,
            PhaseMark::Reintegrated => 5,
        }
    }
}

/// One of the seven contiguous phases of a failover stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Stall-window start → fault injection (the client had already
    /// paused between progress samples when the fault hit).
    PreFault,
    /// Fault injection → first observed symptom.
    Symptom,
    /// First symptom → failure verdict.
    Diagnosis,
    /// Verdict → STONITH issued.
    Fencing,
    /// STONITH → takeover complete.
    Takeover,
    /// Takeover → re-integration complete (zero-length in runs where no
    /// rebooted peer rejoined, or when the join finished outside the
    /// stall window).
    Reintegration,
    /// Re-integration (or takeover) → first client-visible byte after
    /// the stall.
    Restart,
}

impl Phase {
    /// All seven phases, in timeline order.
    pub const ALL: [Phase; 7] = [
        Phase::PreFault,
        Phase::Symptom,
        Phase::Diagnosis,
        Phase::Fencing,
        Phase::Takeover,
        Phase::Reintegration,
        Phase::Restart,
    ];

    /// A short stable name (report keys and table rows).
    pub fn name(self) -> &'static str {
        match self {
            Phase::PreFault => "pre_fault",
            Phase::Symptom => "symptom",
            Phase::Diagnosis => "diagnosis",
            Phase::Fencing => "fencing",
            Phase::Takeover => "takeover",
            Phase::Reintegration => "reintegration",
            Phase::Restart => "restart",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builder for one failover's phase breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    start: SimTime,
    marks: [Option<SimTime>; PhaseMark::COUNT],
    end: Option<SimTime>,
}

impl Timeline {
    /// Starts a timeline at the beginning of the client-observed stall
    /// window (the last progress sample before the stall).
    pub fn new(stall_start: SimTime) -> Timeline {
        Timeline {
            start: stall_start,
            marks: [None; PhaseMark::COUNT],
            end: None,
        }
    }

    /// Records a mark. The first time wins — a retried verdict or a
    /// second STONITH does not move the boundary.
    pub fn mark(&mut self, m: PhaseMark, at: SimTime) {
        let slot = &mut self.marks[m.index()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Closes the window at the first client-visible byte after the
    /// stall.
    pub fn finish(&mut self, first_byte_at: SimTime) {
        self.end = Some(first_byte_at.max(self.start));
    }

    /// The stall-window start.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// When a mark was recorded, if it was.
    pub fn mark_at(&self, m: PhaseMark) -> Option<SimTime> {
        self.marks[m.index()]
    }

    /// Computes the phase breakdown; `None` until [`Timeline::finish`]
    /// was called.
    ///
    /// A missing mark collapses its phase to zero length at the previous
    /// boundary; a mark outside the window (or out of order) is clamped,
    /// so the seven durations always partition `[start, end]` exactly.
    pub fn breakdown(&self) -> Option<PhaseBreakdown> {
        let end = self.end?;
        let mut durations = [SimDuration::ZERO; 7];
        let mut prev = self.start;
        for (i, mark) in self.marks.iter().enumerate() {
            let b = mark.unwrap_or(prev).max(prev).min(end);
            durations[i] = b.saturating_since(prev);
            prev = b;
        }
        durations[6] = end.saturating_since(prev);
        Some(PhaseBreakdown {
            durations,
            total: end.saturating_since(self.start),
        })
    }
}

/// Seven phase durations that partition one failover stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Durations indexed like [`Phase::ALL`].
    pub durations: [SimDuration; 7],
    /// The whole stall window (equals the sum of `durations`).
    pub total: SimDuration,
}

impl PhaseBreakdown {
    /// The duration of one phase.
    pub fn get(&self, p: Phase) -> SimDuration {
        self.durations[Phase::ALL.iter().position(|&q| q == p).unwrap()]
    }

    /// Fault injection → verdict: the detection latency that Table 1's
    /// timeout bounds constrain (symptom + diagnosis).
    pub fn detection(&self) -> SimDuration {
        self.get(Phase::Symptom) + self.get(Phase::Diagnosis)
    }

    /// The breakdown as a JSON object of microsecond durations.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        for (p, d) in Phase::ALL.iter().zip(self.durations.iter()) {
            o.set(p.name(), Json::U64(d.as_micros()));
        }
        o.set("detection", Json::U64(self.detection().as_micros()));
        o.set("total", Json::U64(self.total.as_micros()));
        o
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn phases_partition_the_stall_window() {
        let mut tl = Timeline::new(t(995));
        tl.mark(PhaseMark::FaultInjected, t(1_000));
        tl.mark(PhaseMark::SymptomObserved, t(1_200));
        tl.mark(PhaseMark::Verdict, t(1_600));
        tl.mark(PhaseMark::Stonith, t(1_600));
        tl.mark(PhaseMark::Takeover, t(1_620));
        tl.finish(t(1_700));
        let b = tl.breakdown().unwrap();
        assert_eq!(b.total, SimDuration::from_millis(705));
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        assert_eq!(sum, b.total);
        assert_eq!(b.get(Phase::PreFault), SimDuration::from_millis(5));
        assert_eq!(b.get(Phase::Symptom), SimDuration::from_millis(200));
        assert_eq!(b.get(Phase::Diagnosis), SimDuration::from_millis(400));
        assert_eq!(b.get(Phase::Fencing), SimDuration::ZERO);
        assert_eq!(b.get(Phase::Takeover), SimDuration::from_millis(20));
        assert_eq!(b.get(Phase::Restart), SimDuration::from_millis(80));
        assert_eq!(b.detection(), SimDuration::from_millis(600));
    }

    #[test]
    fn missing_marks_collapse_to_zero() {
        let mut tl = Timeline::new(t(0));
        tl.mark(PhaseMark::Verdict, t(500));
        tl.finish(t(600));
        let b = tl.breakdown().unwrap();
        assert_eq!(b.get(Phase::PreFault), SimDuration::ZERO);
        // Without a fault mark, the symptom phase absorbs start→symptom;
        // here no symptom either, so diagnosis runs start→verdict.
        assert_eq!(b.get(Phase::Diagnosis), SimDuration::from_millis(500));
        assert_eq!(b.get(Phase::Restart), SimDuration::from_millis(100));
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        assert_eq!(sum, b.total);
    }

    #[test]
    fn out_of_window_marks_are_clamped() {
        let mut tl = Timeline::new(t(100));
        tl.mark(PhaseMark::FaultInjected, t(50)); // before the window
        tl.mark(PhaseMark::SymptomObserved, t(150));
        tl.mark(PhaseMark::Verdict, t(120)); // out of order
        tl.mark(PhaseMark::Takeover, t(900)); // after the window
        tl.finish(t(200));
        let b = tl.breakdown().unwrap();
        let sum: SimDuration = b.durations.iter().fold(SimDuration::ZERO, |a, &d| a + d);
        assert_eq!(sum, b.total);
        assert_eq!(b.total, SimDuration::from_millis(100));
    }

    #[test]
    fn unfinished_timeline_has_no_breakdown() {
        let tl = Timeline::new(t(0));
        assert_eq!(tl.breakdown(), None);
        assert_eq!(tl.mark_at(PhaseMark::Verdict), None);
        assert_eq!(tl.start(), t(0));
    }

    #[test]
    fn first_mark_wins() {
        let mut tl = Timeline::new(t(0));
        tl.mark(PhaseMark::Stonith, t(10));
        tl.mark(PhaseMark::Stonith, t(20));
        assert_eq!(tl.mark_at(PhaseMark::Stonith), Some(t(10)));
    }

    #[test]
    fn breakdown_json_lists_every_phase() {
        let mut tl = Timeline::new(t(0));
        tl.finish(t(10));
        let j = tl.breakdown().unwrap().to_json().to_string();
        for p in Phase::ALL {
            assert!(j.contains(p.name()), "{j} missing {p}");
        }
        assert!(j.contains("\"total\":10000"));
    }
}
