//! The TCP receive buffer, with out-of-order reassembly and the ST-TCP
//! *receive hold* extension.
//!
//! Plain TCP may discard a byte as soon as the application has read it.
//! ST-TCP's primary may not: it must keep every in-order byte until the
//! backup confirms receipt (via the heartbeat's `LastByteReceived`), so it
//! can re-supply bytes the backup missed (paper §4.3, Table 1 row 5). The
//! buffer therefore tracks two consumption cursors — the application's
//! `read_pos` and ST-TCP's `release_pos` — and only discards below both.
//! When the hold region exceeds its capacity, ST-TCP is informed (the
//! paper's "additional receive buffer space fills up ⇒ backup considered
//! failed"); flow control toward the client is *not* affected, matching
//! the paper's use of extra buffer space rather than window shrinkage.

use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};

/// Outcome of offering segment payload to the receive buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReceiveOutcome {
    /// Bytes newly added in-order (advanced `nxt` by this much).
    pub newly_in_order: u64,
    /// True if any part of the payload was stored (in-order or not); false
    /// means the segment was entirely duplicate or outside the window.
    pub accepted: bool,
}

/// A reassembling receive buffer with an optional hold region.
#[derive(Debug, Clone)]
pub struct RecvBuffer {
    /// Contiguous received bytes covering stream offsets `[low, nxt)`.
    store: VecDeque<u8>,
    /// Lowest retained offset: `min(read_pos, release_pos)`.
    low: u64,
    /// Application read cursor.
    read_pos: u64,
    /// ST-TCP hold-release cursor (`== nxt` when the hold is disabled).
    release_pos: u64,
    /// Next expected in-order offset (receive-next).
    nxt: u64,
    /// Out-of-order segments keyed by their start offset.
    ooo: BTreeMap<u64, Bytes>,
    /// Application receive-buffer capacity (drives the advertised window).
    app_capacity: usize,
    /// Hold capacity; `None` disables the hold (plain TCP).
    hold_capacity: Option<usize>,
    /// Stream offset of the peer's FIN, once seen.
    fin_offset: Option<u64>,
}

impl RecvBuffer {
    /// Creates a buffer with the given application capacity and optional
    /// ST-TCP hold capacity.
    pub fn new(app_capacity: usize, hold_capacity: Option<usize>) -> RecvBuffer {
        RecvBuffer {
            store: VecDeque::new(),
            low: 0,
            read_pos: 0,
            release_pos: 0,
            nxt: 0,
            ooo: BTreeMap::new(),
            app_capacity,
            hold_capacity,
            fin_offset: None,
        }
    }

    /// Reconstructs an empty buffer positioned mid-stream from a
    /// re-integration snapshot: every cursor starts at `start` (bytes
    /// below it live on in the transferred application state), and the
    /// peer's FIN position is carried over if it was already known.
    pub fn resume(
        app_capacity: usize,
        hold_capacity: Option<usize>,
        start: u64,
        fin_offset: Option<u64>,
    ) -> RecvBuffer {
        RecvBuffer {
            store: VecDeque::new(),
            low: start,
            read_pos: start,
            release_pos: start,
            nxt: start,
            ooo: BTreeMap::new(),
            app_capacity,
            hold_capacity,
            fin_offset,
        }
    }

    /// Turns the hold region on (or re-arms it) from the current
    /// receive-next position: everything already contiguous is considered
    /// released, and every byte from here on is retained until
    /// [`RecvBuffer::release_until`] confirms it. The ST-TCP active
    /// server calls this when a replacement backup starts re-integrating.
    pub fn enable_hold(&mut self, capacity: usize) {
        self.hold_capacity = Some(capacity);
        self.release_pos = self.nxt;
        self.compact();
    }

    /// Next expected in-order stream offset. This is the paper's
    /// `LastByteReceived` heartbeat field (as a count of contiguous bytes).
    pub fn nxt(&self) -> u64 {
        self.nxt
    }

    /// The application's read cursor — the paper's `LastAppByteRead`.
    pub fn read_pos(&self) -> u64 {
        self.read_pos
    }

    /// The hold-release cursor.
    pub fn release_pos(&self) -> u64 {
        self.release_pos
    }

    /// Bytes ready for the application to read.
    pub fn readable(&self) -> usize {
        (self.nxt - self.read_pos) as usize
    }

    /// The advertised receive window: application capacity minus unread
    /// in-order bytes. The hold region does not shrink the window.
    pub fn window(&self) -> usize {
        self.app_capacity.saturating_sub(self.readable())
    }

    /// Bytes currently held for the backup (acked to the peer but not yet
    /// released by ST-TCP). Zero when the hold is disabled.
    pub fn hold_used(&self) -> usize {
        (self.nxt - self.release_pos) as usize
    }

    /// True when the hold region has exceeded its capacity — the signal
    /// that makes the primary declare the backup failed.
    pub fn hold_overflow(&self) -> bool {
        match self.hold_capacity {
            Some(cap) => self.hold_used() > cap,
            None => false,
        }
    }

    /// Bytes currently parked out-of-order (data beyond a receive hole).
    /// Overlapping segments may be double-counted; callers use this as a
    /// boolean-ish "is there data stranded behind a hole" signal.
    pub fn ooo_bytes(&self) -> usize {
        self.ooo.values().map(|b| b.len()).sum()
    }

    /// The stream offset of the peer's FIN, if one has been received.
    pub fn fin_offset(&self) -> Option<u64> {
        self.fin_offset
    }

    /// True once all data up to the peer's FIN has been received in order.
    pub fn fin_reached(&self) -> bool {
        self.fin_offset == Some(self.nxt)
    }

    /// Offers segment payload starting at signed stream offset `off`
    /// (negative offsets arise from old retransmissions reaching back
    /// before the current window; the overlap is trimmed). `fin` marks a
    /// FIN occupying the offset just past the payload.
    ///
    /// Takes the payload as [`Bytes`] so an out-of-order segment can be
    /// parked as a zero-copy slice of the original buffer instead of a
    /// fresh allocation.
    pub fn receive(&mut self, off: i64, data: &Bytes, fin: bool) -> ReceiveOutcome {
        let mut outcome = ReceiveOutcome::default();

        // The FIN occupies the offset just past the payload as originally
        // sent, independent of any trimming below.
        if fin {
            let fin_pos = (off + data.len() as i64).max(0) as u64;
            match self.fin_offset {
                None => self.fin_offset = Some(fin_pos),
                Some(existing) => debug_assert_eq!(existing, fin_pos, "peer moved its FIN"),
            }
        }

        // Trim the part that precedes data we already have.
        let (start, lo) = if off < self.nxt as i64 {
            let skip = ((self.nxt as i64 - off) as usize).min(data.len());
            (self.nxt, skip)
        } else {
            (off as u64, 0)
        };

        // Enforce the receive window: never buffer beyond what we
        // advertised (in-order capacity above read_pos).
        let window_end = self.read_pos + self.app_capacity as u64;
        let hi = if start >= window_end {
            lo
        } else {
            let room = (window_end - start) as usize;
            lo + (data.len() - lo).min(room)
        };

        if lo < hi {
            if start == self.nxt {
                self.store.extend(&data[lo..hi]);
                self.nxt += (hi - lo) as u64;
                outcome.newly_in_order += (hi - lo) as u64;
                outcome.accepted = true;
                self.drain_ooo(&mut outcome);
            } else {
                // Out of order: keep it (possibly overlapping; trimmed when
                // drained) as a shared slice of the incoming buffer.
                outcome.accepted = true;
                self.ooo.entry(start).or_insert_with(|| data.slice(lo..hi));
            }
        }

        if self.hold_capacity.is_none() {
            self.release_pos = self.nxt;
        }
        self.compact();
        outcome
    }

    fn drain_ooo(&mut self, outcome: &mut ReceiveOutcome) {
        while let Some((&start, _)) = self.ooo.range(..=self.nxt).next() {
            let seg = self.ooo.remove(&start).expect("key just observed");
            let end = start + seg.len() as u64;
            if end > self.nxt {
                let skip = (self.nxt - start) as usize;
                let tail = &seg[skip..];
                self.store.extend(tail);
                self.nxt += tail.len() as u64;
                outcome.newly_in_order += tail.len() as u64;
            }
            // Fully-duplicate entries are simply dropped.
        }
    }

    /// Copies `store[start..start + len]` out via the deque's two
    /// contiguous slices (no per-byte indexing).
    fn copy_range(&self, start: usize, len: usize) -> Vec<u8> {
        let mut v = Vec::with_capacity(len);
        let (a, b) = self.store.as_slices();
        if start < a.len() {
            let take = (a.len() - start).min(len);
            v.extend_from_slice(&a[start..start + take]);
            if take < len {
                v.extend_from_slice(&b[..len - take]);
            }
        } else {
            let s = start - a.len();
            v.extend_from_slice(&b[s..s + len]);
        }
        v
    }

    /// Reads up to `max` bytes for the application.
    pub fn read(&mut self, max: usize) -> Bytes {
        let n = self.readable().min(max);
        let start = (self.read_pos - self.low) as usize;
        let v = self.copy_range(start, n);
        self.read_pos += n as u64;
        self.compact();
        Bytes::from(v)
    }

    /// Releases held bytes below `upto` (the backup has confirmed them).
    /// Clamped to `[release_pos, nxt]`. No-op when the hold is disabled.
    pub fn release_until(&mut self, upto: u64) {
        if self.hold_capacity.is_none() {
            return;
        }
        let upto = upto.clamp(self.release_pos, self.nxt);
        self.release_pos = upto;
        self.compact();
    }

    /// Copies up to `max` held/stored bytes starting at offset `off`, for
    /// re-supplying a backup that missed them.
    ///
    /// Returns `None` if `off` is below the retained range (already
    /// discarded — the paper's unrecoverable case) or beyond `nxt`.
    pub fn fetch(&self, off: u64, max: usize) -> Option<Bytes> {
        if off < self.low || off >= self.nxt {
            return None;
        }
        let start = (off - self.low) as usize;
        let len = ((self.nxt - off) as usize).min(max);
        Some(Bytes::from(self.copy_range(start, len)))
    }

    fn compact(&mut self) {
        let new_low = self.read_pos.min(self.release_pos);
        let drop = (new_low - self.low) as usize;
        if drop > 0 {
            self.store.drain(..drop);
            self.low = new_low;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain() -> RecvBuffer {
        RecvBuffer::new(1024, None)
    }

    fn holding(cap: usize) -> RecvBuffer {
        RecvBuffer::new(1024, Some(cap))
    }

    fn bs(data: &'static [u8]) -> Bytes {
        Bytes::from_static(data)
    }

    #[test]
    fn in_order_delivery() {
        let mut b = plain();
        let o = b.receive(0, &bs(b"hello"), false);
        assert_eq!(o.newly_in_order, 5);
        assert!(o.accepted);
        assert_eq!(b.nxt(), 5);
        assert_eq!(b.read(100).as_ref(), b"hello");
        assert_eq!(b.readable(), 0);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut b = plain();
        let o = b.receive(5, &bs(b"world"), false);
        assert_eq!(o.newly_in_order, 0);
        assert!(o.accepted);
        assert_eq!(b.nxt(), 0);
        let o = b.receive(0, &bs(b"hello"), false);
        assert_eq!(o.newly_in_order, 10);
        assert_eq!(b.read(100).as_ref(), b"helloworld");
    }

    #[test]
    fn overlapping_retransmission_trimmed() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abcde"), false);
        // Retransmission covering [2, 8).
        let o = b.receive(2, &bs(b"cdefgh"), false);
        assert_eq!(o.newly_in_order, 3);
        assert_eq!(b.read(100).as_ref(), b"abcdefgh");
    }

    #[test]
    fn fully_duplicate_segment_rejected() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abcde"), false);
        let o = b.receive(0, &bs(b"abc"), false);
        assert_eq!(o.newly_in_order, 0);
        assert!(!o.accepted);
    }

    #[test]
    fn negative_offset_old_data() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abcde"), false);
        let _ = b.read(100);
        // A very old retransmission stretching before offset 0 cannot
        // happen in real TCP, but the API must be robust to off < nxt.
        let o = b.receive(3, &bs(b"defgh"), false);
        assert_eq!(o.newly_in_order, 3);
        assert_eq!(b.read(100).as_ref(), b"fgh");
    }

    #[test]
    fn window_shrinks_with_unread_data() {
        let mut b = RecvBuffer::new(10, None);
        assert_eq!(b.window(), 10);
        let _ = b.receive(0, &bs(b"abcdef"), false);
        assert_eq!(b.window(), 4);
        let _ = b.read(3);
        assert_eq!(b.window(), 7);
    }

    #[test]
    fn data_beyond_window_is_clamped() {
        let mut b = RecvBuffer::new(4, None);
        let o = b.receive(0, &bs(b"abcdefgh"), false);
        assert_eq!(o.newly_in_order, 4);
        assert_eq!(b.nxt(), 4);
        // Entirely outside the window: nothing stored.
        let o = b.receive(100, &bs(b"zz"), false);
        assert!(!o.accepted);
    }

    #[test]
    fn fin_position_tracked_and_reached() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abc"), true);
        assert_eq!(b.fin_offset(), Some(3));
        assert!(b.fin_reached());
    }

    #[test]
    fn fin_with_missing_data_not_reached() {
        let mut b = plain();
        let _ = b.receive(3, &bs(b"def"), true);
        assert_eq!(b.fin_offset(), Some(6));
        assert!(!b.fin_reached());
        let _ = b.receive(0, &bs(b"abc"), false);
        assert!(b.fin_reached());
    }

    #[test]
    fn bare_fin_after_data() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abc"), false);
        let _ = b.receive(3, &bs(b""), true);
        assert_eq!(b.fin_offset(), Some(3));
        assert!(b.fin_reached());
    }

    #[test]
    fn hold_retains_read_bytes() {
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"abcdefgh"), false);
        let _ = b.read(8);
        // App has read everything, but the hold still has it.
        assert_eq!(b.hold_used(), 8);
        assert_eq!(b.fetch(0, 100).unwrap().as_ref(), b"abcdefgh");
        assert_eq!(b.fetch(4, 2).unwrap().as_ref(), b"ef");
        b.release_until(5);
        assert_eq!(b.hold_used(), 3);
        assert!(b.fetch(0, 10).is_none(), "released bytes are gone");
        assert_eq!(b.fetch(5, 10).unwrap().as_ref(), b"fgh");
    }

    #[test]
    fn plain_buffer_has_no_hold() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abcdefgh"), false);
        let _ = b.read(8);
        assert_eq!(b.hold_used(), 0);
        assert!(!b.hold_overflow());
        assert!(b.fetch(0, 8).is_none(), "bytes discarded after read");
    }

    #[test]
    fn hold_overflow_signals() {
        let mut b = holding(4);
        let _ = b.receive(0, &bs(b"abcdefgh"), false);
        assert_eq!(b.hold_used(), 8);
        assert!(b.hold_overflow());
        b.release_until(6);
        assert!(!b.hold_overflow());
    }

    #[test]
    fn hold_does_not_shrink_window() {
        let mut b = RecvBuffer::new(10, Some(100));
        let _ = b.receive(0, &bs(b"abcdef"), false);
        let _ = b.read(6);
        // 6 bytes held, but the app buffer is empty ⇒ full window.
        assert_eq!(b.hold_used(), 6);
        assert_eq!(b.window(), 10);
    }

    #[test]
    fn release_clamps() {
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"abcd"), false);
        b.release_until(100);
        assert_eq!(b.release_pos(), 4);
        b.release_until(2); // going backwards is ignored
        assert_eq!(b.release_pos(), 4);
    }

    #[test]
    fn fetch_bounds() {
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"abcd"), false);
        assert!(b.fetch(4, 1).is_none(), "at nxt");
        assert!(b.fetch(100, 1).is_none(), "beyond nxt");
        assert_eq!(b.fetch(3, 100).unwrap().as_ref(), b"d");
    }

    #[test]
    fn unread_bytes_survive_release() {
        // Bytes released by ST-TCP but not yet read by the app must stay.
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"abcdefgh"), false);
        b.release_until(8);
        assert_eq!(b.read(100).as_ref(), b"abcdefgh");
    }

    #[test]
    fn resume_mid_stream_receives_from_start() {
        let mut b = RecvBuffer::resume(1024, None, 500, None);
        assert_eq!(b.nxt(), 500);
        assert_eq!(b.read_pos(), 500);
        let o = b.receive(500, &bs(b"abc"), false);
        assert_eq!(o.newly_in_order, 3);
        assert_eq!(b.read(100).as_ref(), b"abc");
        // Data from before the resume point is entirely stale.
        let o = b.receive(100, &bs(b"old"), false);
        assert_eq!(o.newly_in_order, 0);
    }

    #[test]
    fn resume_carries_fin_position() {
        let mut b = RecvBuffer::resume(1024, None, 4, Some(7));
        assert!(!b.fin_reached());
        let _ = b.receive(4, &bs(b"xyz"), false);
        assert!(b.fin_reached());
    }

    #[test]
    fn enable_hold_retains_only_new_bytes() {
        let mut b = plain();
        let _ = b.receive(0, &bs(b"abcd"), false);
        let _ = b.read(4);
        assert!(b.fetch(0, 4).is_none(), "plain buffer discards read bytes");
        b.enable_hold(100);
        assert_eq!(b.hold_used(), 0);
        let _ = b.receive(4, &bs(b"efgh"), false);
        let _ = b.read(4);
        assert_eq!(b.hold_used(), 4);
        assert_eq!(b.fetch(4, 100).unwrap().as_ref(), b"efgh");
        b.release_until(8);
        assert_eq!(b.hold_used(), 0);
    }

    #[test]
    fn enable_hold_rearms_and_discards_stale_hold() {
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"abcdefgh"), false);
        let _ = b.read(8);
        assert_eq!(b.hold_used(), 8);
        // Re-arming treats everything contiguous as already released.
        b.enable_hold(100);
        assert_eq!(b.hold_used(), 0);
        assert!(b.fetch(0, 8).is_none());
    }

    #[test]
    fn interleaved_read_release_discard() {
        let mut b = holding(100);
        let _ = b.receive(0, &bs(b"0123456789"), false);
        let _ = b.read(4); // read_pos = 4
        b.release_until(7); // release_pos = 7, low = 4
        assert_eq!(b.fetch(7, 100).unwrap().as_ref(), b"789");
        assert_eq!(b.read(100).as_ref(), b"456789"); // read_pos = 10
        b.release_until(10);
        assert_eq!(b.hold_used(), 0);
        assert!(b.fetch(9, 1).is_none());
    }
}
