//! Socket-level types shared between connections and the endpoint.

use core::fmt;
use std::net::Ipv4Addr;

/// The four-tuple identifying a TCP connection, from the local endpoint's
/// point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FourTuple {
    /// Local (address, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (address, port).
    pub remote: (Ipv4Addr, u16),
}

impl FourTuple {
    /// The same connection as seen from the other end.
    pub fn flipped(self) -> FourTuple {
        FourTuple {
            local: self.remote,
            remote: self.local,
        }
    }
}

impl fmt::Display for FourTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}<->{}:{}",
            self.local.0, self.local.1, self.remote.0, self.remote.1
        )
    }
}

/// Identifies a socket within one [`crate::endpoint::TcpEndpoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u64);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Events delivered to the application by the endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SocketEvent {
    /// A listener accepted a new connection (the event's socket id is the
    /// new connection's).
    Accepted,
    /// The handshake completed on a socket this endpoint opened.
    Connected,
    /// New in-order data is available to read.
    DataReadable,
    /// The peer closed its sending side.
    PeerFin,
    /// The connection was reset.
    Reset,
    /// The connection is fully closed.
    Closed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_roundtrips() {
        let t = FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 1234),
            remote: (Ipv4Addr::new(10, 0, 0, 2), 80),
        };
        assert_eq!(t.flipped().flipped(), t);
        assert_eq!(t.flipped().local, t.remote);
    }

    #[test]
    fn tuple_is_ordered_for_deterministic_maps() {
        let a = FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 1),
            remote: (Ipv4Addr::new(10, 0, 0, 2), 80),
        };
        let b = FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 2),
            remote: (Ipv4Addr::new(10, 0, 0, 2), 80),
        };
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        let t = FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 1234),
            remote: (Ipv4Addr::new(10, 0, 0, 2), 80),
        };
        assert_eq!(t.to_string(), "10.0.0.1:1234<->10.0.0.2:80");
        assert_eq!(SocketId(3).to_string(), "s3");
    }
}
