//! A hierarchical timing wheel for per-connection retransmit deadlines.
//!
//! [`TcpEndpoint`](crate::endpoint::TcpEndpoint) used to answer "which
//! connections have a deadline ≤ now?" and "what is the earliest
//! deadline?" by scanning every socket — O(n) per timer round, which
//! dominates once an endpoint carries tens of thousands of mostly-idle
//! connections. This wheel makes both queries O(active): connections
//! register their next deadline once when it changes, idle connections
//! are never visited.
//!
//! The structure is the same 6-level × 64-slot hashed wheel as the
//! simulator's event queue (`simnet::event`), with the same exact-order
//! contract: entries pop in `(time, insertion sequence)` order, the
//! highest differing 6-bit group of `time ^ cursor` picks the level, a
//! per-level occupancy bitmap finds the next slot, and two escape
//! hatches (an *overdue* heap for entries pushed behind the cursor, an
//! *overflow* heap for entries beyond the 2^36 µs span) keep ordering
//! exact rather than approximate. See the `simnet::event` module docs
//! for the full invariant walk-through; the differential proptest at
//! the bottom of this file pins this copy to a `BinaryHeap` oracle the
//! same way.
//!
//! Entries are *lazy*: the wheel never removes a rescheduled or
//! cancelled deadline. The endpoint stores the deadline it last
//! registered per socket and discards popped entries that no longer
//! match ([`crate::endpoint::TcpEndpoint::on_time`]), so a connection
//! whose timer moved simply leaves a stale tombstone behind. Stale
//! entries cost O(log n) heap work at most once each.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::socket::SocketId;
use simnet::time::SimTime;

/// One registered deadline.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at: SimTime,
    seq: u64,
    sock: SocketId,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Bits per wheel level (64 slots).
const BITS: usize = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Wheel levels.
const LEVELS: usize = 6;
/// The wheel's span in µs: times at or beyond `elapsed ^ SPAN` overflow.
const SPAN: u64 = 1 << (BITS * LEVELS);

/// A min-queue of `(deadline, socket)` pairs ordered by
/// `(time, insertion order)`.
#[derive(Debug)]
pub(crate) struct DeadlineWheel {
    /// The wheel cursor (µs): every wheel/pending/overflow entry is at
    /// `>= elapsed`, every overdue entry is at `< elapsed`. Never
    /// decreases.
    elapsed: u64,
    slots: Vec<Vec<Vec<Entry>>>,
    /// Per-level bitmap of non-empty slots.
    occupied: [u64; LEVELS],
    /// Entries at exactly `elapsed`, in seq order.
    pending: VecDeque<Entry>,
    /// Entries pushed behind the cursor.
    overdue: BinaryHeap<Entry>,
    /// Entries beyond the wheel's span.
    overflow: BinaryHeap<Entry>,
    seq: u64,
    len: usize,
}

impl DeadlineWheel {
    pub(crate) fn new() -> DeadlineWheel {
        DeadlineWheel {
            elapsed: 0,
            slots: vec![vec![Vec::new(); SLOTS]; LEVELS],
            occupied: [0; LEVELS],
            pending: VecDeque::new(),
            overdue: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    pub(crate) fn push(&mut self, at: SimTime, sock: SocketId) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.route(Entry { at, seq, sock });
    }

    /// Files one entry into the container the cursor says it belongs in.
    fn route(&mut self, e: Entry) {
        let at = e.at.as_micros();
        if at < self.elapsed {
            self.overdue.push(e);
        } else if at == self.elapsed {
            self.pending.push_back(e);
        } else {
            let x = at ^ self.elapsed;
            if x >= SPAN {
                self.overflow.push(e);
            } else {
                // x > 0 and below SPAN: the highest set bit picks the level.
                let level = (63 - x.leading_zeros() as usize) / BITS;
                let slot = ((at >> (BITS * level)) & (SLOTS as u64 - 1)) as usize;
                self.slots[level][slot].push(e);
                self.occupied[level] |= 1 << slot;
            }
        }
    }

    /// Advances the cursor until the earliest entry sits in `overdue`
    /// or `pending` (or the wheel is empty): cascades higher-level
    /// slots downward and migrates an overflow block into the wheel
    /// when it drains.
    fn settle(&mut self) {
        loop {
            if !self.overdue.is_empty() || !self.pending.is_empty() {
                return;
            }
            let Some(level) = (0..LEVELS).find(|&l| self.occupied[l] != 0) else {
                // Wheel empty: migrate the overflow's next 2^36 µs block.
                let Some(top) = self.overflow.peek() else {
                    return;
                };
                let base = top.at.as_micros() & !(SPAN - 1);
                debug_assert!(base >= self.elapsed, "overflow block behind cursor");
                self.elapsed = base;
                while let Some(top) = self.overflow.peek() {
                    if top.at.as_micros() ^ self.elapsed >= SPAN {
                        break;
                    }
                    // Heap pop order is (time, seq), so same-µs entries
                    // append to their slot in seq order.
                    let e = self.overflow.pop().expect("peeked");
                    self.route(e);
                }
                continue;
            };
            // Occupied slots are strictly after the cursor's slot, so the
            // lowest set bit is the next slot in time.
            let slot = self.occupied[level].trailing_zeros() as usize;
            self.occupied[level] &= !(1 << slot);
            let mut items = std::mem::take(&mut self.slots[level][slot]);
            if level == 0 {
                // One exact µs tick, already in (time, seq) order.
                self.elapsed = items[0].at.as_micros();
                debug_assert!(items.iter().all(|e| e.at.as_micros() == self.elapsed));
                self.pending.extend(items.drain(..));
            } else {
                // Advance to the slot's base and spread its entries over
                // the lower levels (in stored order, which re-appends
                // same-time entries without reordering them).
                let width = BITS * level;
                let block = 1u64 << (width + BITS);
                let base = (self.elapsed & !(block - 1)) | ((slot as u64) << width);
                debug_assert!(base > self.elapsed, "cascade must advance the cursor");
                self.elapsed = base;
                for e in items.drain(..) {
                    self.route(e);
                }
            }
            // Hand the (now empty) slot vector its capacity back.
            self.slots[level][slot] = items;
        }
    }

    pub(crate) fn pop(&mut self) -> Option<(SimTime, SocketId)> {
        self.settle();
        // Overdue entries are strictly behind the cursor, pending entries
        // exactly at it — overdue first, in heap (time, seq) order.
        let e = match self.overdue.pop() {
            Some(e) => e,
            None => self.pending.pop_front()?,
        };
        self.len -= 1;
        Some((e.at, e.sock))
    }

    /// The earliest registered deadline. Exact (not a lower bound);
    /// computing it may cascade wheel slots, hence `&mut`.
    pub(crate) fn peek(&mut self) -> Option<(SimTime, SocketId)> {
        self.settle();
        match self.overdue.peek() {
            Some(e) => Some((e.at, e.sock)),
            None => self.pending.front().map(|e| (e.at, e.sock)),
        }
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The trivially-correct oracle: a plain `(time, seq)` min-heap.
    struct HeapOracle {
        heap: BinaryHeap<Entry>,
        seq: u64,
    }

    impl HeapOracle {
        fn new() -> HeapOracle {
            HeapOracle {
                heap: BinaryHeap::new(),
                seq: 0,
            }
        }

        fn push(&mut self, at: SimTime, sock: SocketId) {
            let seq = self.seq;
            self.seq += 1;
            self.heap.push(Entry { at, seq, sock });
        }

        fn pop(&mut self) -> Option<(SimTime, SocketId)> {
            self.heap.pop().map(|e| (e.at, e.sock))
        }

        fn peek(&self) -> Option<(SimTime, SocketId)> {
            self.heap.peek().map(|e| (e.at, e.sock))
        }
    }

    #[test]
    fn pops_in_time_order_with_seq_tiebreak() {
        let mut w = DeadlineWheel::new();
        w.push(SimTime::from_millis(3), SocketId(3));
        w.push(SimTime::from_millis(1), SocketId(1));
        w.push(SimTime::from_millis(1), SocketId(9));
        w.push(SimTime::from_millis(2), SocketId(2));
        let order: Vec<(u64, SocketId)> = std::iter::from_fn(|| w.pop())
            .map(|(t, s)| (t.as_millis(), s))
            .collect();
        assert_eq!(
            order,
            vec![
                (1, SocketId(1)),
                (1, SocketId(9)),
                (2, SocketId(2)),
                (3, SocketId(3)),
            ]
        );
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn far_future_and_behind_cursor_entries_keep_exact_order() {
        let mut w = DeadlineWheel::new();
        w.push(SimTime::from_micros(2 * SPAN + 9), SocketId(4));
        w.push(SimTime::from_micros(10_000), SocketId(1));
        // Peeking advances the cursor to 10 000 µs...
        assert_eq!(w.peek(), Some((SimTime::from_micros(10_000), SocketId(1))));
        // ...and pushes behind it must still pop first, in (time, seq) order.
        w.push(SimTime::from_micros(500), SocketId(2));
        w.push(SimTime::from_micros(200), SocketId(3));
        let order: Vec<(u64, SocketId)> = std::iter::from_fn(|| w.pop())
            .map(|(t, s)| (t.as_micros(), s))
            .collect();
        assert_eq!(
            order,
            vec![
                (200, SocketId(3)),
                (500, SocketId(2)),
                (10_000, SocketId(1)),
                (2 * SPAN + 9, SocketId(4)),
            ]
        );
    }

    /// Deterministic heavy churn across every wheel level plus the
    /// overflow heap, diffed against the heap oracle pop for pop.
    #[test]
    fn storm_matches_heap_oracle() {
        let mut wheel = DeadlineWheel::new();
        let mut oracle = HeapOracle::new();
        let mut lcg: u64 = 0x2545_F491_4F6C_DD1D;
        let mut rand = || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            lcg >> 11
        };
        let mut floor = 0u64;
        let mut tag = 0u64;
        for round in 0..50_000u64 {
            let r = rand();
            if r % 3 != 0 {
                let at = match r % 7 {
                    0 => floor,
                    1 => floor + r % 64,
                    2 => floor + r % 4_096,
                    3 => floor + r % 1_000_000,
                    4 => floor + r % (SPAN / 2),
                    _ => floor + r % (3 * SPAN),
                };
                let t = SimTime::from_micros(at);
                wheel.push(t, SocketId(tag));
                oracle.push(t, SocketId(tag));
                tag += 1;
            } else {
                let got = wheel.pop();
                let want = oracle.pop();
                assert_eq!(got, want, "divergence at round {round}");
                if let Some((t, _)) = got {
                    floor = t.as_micros();
                }
            }
        }
        loop {
            let got = wheel.pop();
            let want = oracle.pop();
            assert_eq!(got, want, "divergence during drain");
            if got.is_none() {
                break;
            }
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Push(u64),
        Pop,
        Peek,
    }

    /// Half the draws are pushes (spread over same-tick, per-level, and
    /// overflow time scales), a third pops, the rest peeks.
    fn op_strategy() -> impl Strategy<Value = Op> {
        (0u8..9, 0u64..u64::MAX).prop_map(|(kind, raw)| match kind {
            0 => Op::Push(raw % 64),
            1 => Op::Push(raw % 4_096),
            2 => Op::Push(raw % 1_000_000),
            3 => Op::Push(raw % SPAN),
            4 => Op::Push(raw % (4 * SPAN)),
            5..=7 => Op::Pop,
            _ => Op::Peek,
        })
    }

    proptest! {
        /// Differential test: the wheel and the heap oracle agree on
        /// every peek and every pop — time *and* insertion order — for
        /// arbitrary interleaved workloads, including pushes at
        /// arbitrary (past) times that drive the overdue path hard.
        #[test]
        fn wheel_matches_heap_oracle(ops in proptest::collection::vec(op_strategy(), 0..400)) {
            let mut wheel = DeadlineWheel::new();
            let mut oracle = HeapOracle::new();
            let mut tag = 0u64;
            for op in ops {
                match op {
                    Op::Push(at) => {
                        let t = SimTime::from_micros(at);
                        wheel.push(t, SocketId(tag));
                        oracle.push(t, SocketId(tag));
                        tag += 1;
                    }
                    Op::Pop => {
                        prop_assert_eq!(wheel.pop(), oracle.pop());
                    }
                    Op::Peek => {
                        prop_assert_eq!(wheel.peek(), oracle.peek());
                    }
                }
            }
            loop {
                let got = wheel.pop();
                let want = oracle.pop();
                prop_assert_eq!(&got, &want);
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
