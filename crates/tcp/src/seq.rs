//! TCP sequence-number arithmetic (RFC 793 modulo-2³² comparisons).
//!
//! ST-TCP leans on sequence numbers harder than ordinary TCP: the backup
//! must mirror the primary's numbering exactly so it can take over the
//! connection mid-stream. All comparisons here are the standard wrapping
//! ones; [`SeqTracker`] additionally unwraps 32-bit wire numbers into
//! monotone 64-bit stream offsets, which the buffer layers use internally
//! so that multi-gigabyte transfers cannot be bitten by wraparound.

use core::fmt;
use core::ops::{Add, Sub};

/// A TCP sequence number: a position on the modulo-2³² sequence circle.
///
/// # Examples
///
/// ```
/// use simtcp::seq::SeqNum;
///
/// let a = SeqNum(0xffff_fff0);
/// let b = a + 0x20; // wraps
/// assert!(a.lt(b));
/// assert_eq!(b - a, 0x20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SeqNum(pub u32);

impl SeqNum {
    /// The signed circular distance from `other` to `self`.
    ///
    /// Positive when `self` is ahead of `other` on the circle (within the
    /// 2³¹ window the comparison is meaningful for).
    pub fn diff(self, other: SeqNum) -> i32 {
        self.0.wrapping_sub(other.0) as i32
    }

    /// Circular `self < other`.
    pub fn lt(self, other: SeqNum) -> bool {
        self.diff(other) < 0
    }

    /// Circular `self <= other`.
    pub fn le(self, other: SeqNum) -> bool {
        self.diff(other) <= 0
    }

    /// Circular `self > other`.
    pub fn gt(self, other: SeqNum) -> bool {
        self.diff(other) > 0
    }

    /// Circular `self >= other`.
    pub fn ge(self, other: SeqNum) -> bool {
        self.diff(other) >= 0
    }

    /// True if `self` lies in the half-open window `[start, start + len)`.
    pub fn in_window(self, start: SeqNum, len: u32) -> bool {
        let off = self.0.wrapping_sub(start.0);
        off < len
    }

    /// The larger of two sequence numbers under circular comparison.
    pub fn max_seq(self, other: SeqNum) -> SeqNum {
        if self.ge(other) {
            self
        } else {
            other
        }
    }
}

impl Add<u32> for SeqNum {
    type Output = SeqNum;
    fn add(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_add(rhs))
    }
}

impl Sub<u32> for SeqNum {
    type Output = SeqNum;
    fn sub(self, rhs: u32) -> SeqNum {
        SeqNum(self.0.wrapping_sub(rhs))
    }
}

impl Sub<SeqNum> for SeqNum {
    type Output = u32;
    /// The forward distance from `rhs` to `self` on the circle.
    fn sub(self, rhs: SeqNum) -> u32 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl fmt::Display for SeqNum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Maps 32-bit wire sequence numbers to monotone 64-bit stream offsets.
///
/// Anchored at an initial sequence number that corresponds to stream
/// offset 0 (i.e. ISN+1 maps to offset 0: the SYN consumes one sequence
/// number but carries no stream byte). Unwrapping is relative to a
/// caller-maintained "expected" offset, and is exact as long as the wire
/// number lies within ±2³¹ of the expectation — true for any real TCP
/// window.
///
/// # Examples
///
/// ```
/// use simtcp::seq::{SeqNum, SeqTracker};
///
/// let t = SeqTracker::new(SeqNum(0xffff_fff0));
/// // First data byte is ISN+1.
/// assert_eq!(t.to_offset(SeqNum(0xffff_fff1), 0), 0);
/// // 0x20 bytes later we've wrapped past zero.
/// assert_eq!(t.to_offset(SeqNum(0x11), 0), 0x20);
/// assert_eq!(t.to_seq(0x20), SeqNum(0x11));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqTracker {
    isn: SeqNum,
}

impl SeqTracker {
    /// Creates a tracker anchored at `isn` (the SYN's sequence number).
    pub fn new(isn: SeqNum) -> SeqTracker {
        SeqTracker { isn }
    }

    /// The initial sequence number this tracker is anchored at.
    pub fn isn(&self) -> SeqNum {
        self.isn
    }

    /// The wire sequence number of stream offset `off`.
    pub fn to_seq(&self, off: u64) -> SeqNum {
        self.isn + 1 + (off as u32)
    }

    /// The stream offset of wire number `seq`, unwrapped near
    /// `expected_off`.
    pub fn to_offset(&self, seq: SeqNum, expected_off: u64) -> i64 {
        let expected_seq = self.to_seq(expected_off);
        let delta = seq.diff(expected_seq) as i64;
        expected_off as i64 + delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_comparisons() {
        let a = SeqNum(100);
        let b = SeqNum(200);
        assert!(a.lt(b));
        assert!(a.le(b));
        assert!(b.gt(a));
        assert!(b.ge(a));
        assert!(a.le(a));
        assert!(a.ge(a));
        assert!(!a.lt(a));
    }

    #[test]
    fn comparisons_across_wrap() {
        let a = SeqNum(0xffff_ff00);
        let b = SeqNum(0x0000_0100);
        assert!(a.lt(b), "b is 512 ahead of a across the wrap");
        assert!(b.gt(a));
        assert_eq!(b - a, 512);
        assert_eq!(a + 512, b);
        assert_eq!(b - 512, a);
    }

    #[test]
    fn diff_signs() {
        assert_eq!(SeqNum(10).diff(SeqNum(4)), 6);
        assert_eq!(SeqNum(4).diff(SeqNum(10)), -6);
        assert_eq!(SeqNum(0).diff(SeqNum(0xffff_ffff)), 1);
    }

    #[test]
    fn window_membership() {
        let start = SeqNum(0xffff_fffe);
        assert!(start.in_window(start, 1));
        assert!((start + 3).in_window(start, 10), "wrapping window");
        assert!(!(start + 10).in_window(start, 10), "end exclusive");
        assert!(!(start - 1).in_window(start, 10), "before start");
        assert!(!start.in_window(start, 0), "empty window");
    }

    #[test]
    fn max_seq_circular() {
        let a = SeqNum(0xffff_fff0);
        let b = SeqNum(0x10);
        assert_eq!(a.max_seq(b), b);
        assert_eq!(b.max_seq(a), b);
        assert_eq!(a.max_seq(a), a);
    }

    #[test]
    fn tracker_roundtrip() {
        let t = SeqTracker::new(SeqNum(1000));
        for off in [0u64, 1, 100, 0xffff_ffff, 0x1_0000_0000, 0x2_5000_0123] {
            let seq = t.to_seq(off);
            // Unwrap near the true offset.
            assert_eq!(t.to_offset(seq, off), off as i64);
            // And near slightly-off expectations.
            assert_eq!(t.to_offset(seq, off + 1000), off as i64);
            assert_eq!(t.to_offset(seq, off.saturating_sub(1000)), off as i64);
        }
    }

    #[test]
    fn tracker_negative_offsets_for_old_segments() {
        let t = SeqTracker::new(SeqNum(1000));
        // A retransmission of already-consumed data: seq below expectation.
        let old_seq = t.to_seq(50);
        assert_eq!(t.to_offset(old_seq, 500), 50);
        // Data from "before the beginning" (the SYN itself).
        assert_eq!(t.to_offset(SeqNum(1000), 0), -1);
    }

    #[test]
    fn display() {
        assert_eq!(SeqNum(42).to_string(), "42");
    }
}
