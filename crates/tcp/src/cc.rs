//! Reno-style congestion control.
//!
//! Slow start, congestion avoidance, fast retransmit on three duplicate
//! ACKs, and multiplicative decrease on timeout. Deliberately plain Reno
//! (no SACK, no NewReno partial-ack logic): the paper predates all of
//! that, and what the experiments need is the qualitative behaviour —
//! ramp-up on a clean LAN and window collapse after the retransmission
//! timeouts that surround a failover.

use core::fmt;

/// Congestion-control state for one connection.
#[derive(Debug, Clone)]
pub struct CongestionControl {
    mss: u32,
    cwnd: u64,
    ssthresh: u64,
    /// Bytes acked since the last cwnd increment during congestion
    /// avoidance.
    avoid_acc: u64,
}

impl CongestionControl {
    /// Creates Reno state for a connection with the given MSS.
    ///
    /// Initial window is 4 MSS (RFC 3390 flavour), initial ssthresh is
    /// effectively unbounded.
    pub fn new(mss: u32) -> CongestionControl {
        CongestionControl {
            mss,
            cwnd: 4 * mss as u64,
            ssthresh: u64::MAX / 2,
            avoid_acc: 0,
        }
    }

    /// The current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// The current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh
    }

    /// True while in slow start.
    pub fn in_slow_start(&self) -> bool {
        self.cwnd < self.ssthresh
    }

    /// How many more bytes may be in flight given `flight` bytes already
    /// outstanding.
    pub fn send_allowance(&self, flight: u64) -> u64 {
        self.cwnd.saturating_sub(flight)
    }

    /// Called when an ACK advances `snd.una` by `acked` bytes.
    pub fn on_ack(&mut self, acked: u64) {
        if acked == 0 {
            return;
        }
        if self.in_slow_start() {
            self.cwnd += acked.min(self.mss as u64);
        } else {
            // Congestion avoidance: +1 MSS per cwnd of acked data.
            self.avoid_acc += acked;
            if self.avoid_acc >= self.cwnd {
                self.avoid_acc -= self.cwnd;
                self.cwnd += self.mss as u64;
            }
        }
    }

    /// Called when a retransmission timeout fires with `flight` bytes
    /// outstanding: ssthresh halves, cwnd collapses to one MSS.
    pub fn on_timeout(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss as u64);
        self.cwnd = self.mss as u64;
        self.avoid_acc = 0;
    }

    /// Called on the third duplicate ACK (fast retransmit): halve.
    pub fn on_fast_retransmit(&mut self, flight: u64) {
        self.ssthresh = (flight / 2).max(2 * self.mss as u64);
        self.cwnd = self.ssthresh;
        self.avoid_acc = 0;
    }
}

impl fmt::Display for CongestionControl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cwnd={} ssthresh={} ({})",
            self.cwnd,
            self.ssthresh,
            if self.in_slow_start() {
                "slow-start"
            } else {
                "avoidance"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSS: u32 = 1460;

    #[test]
    fn initial_window_is_4_mss() {
        let cc = CongestionControl::new(MSS);
        assert_eq!(cc.cwnd(), 4 * MSS as u64);
        assert!(cc.in_slow_start());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut cc = CongestionControl::new(MSS);
        let start = cc.cwnd();
        // Ack a full window's worth in MSS chunks: cwnd should double.
        let mut acked = 0;
        while acked < start {
            cc.on_ack(MSS as u64);
            acked += MSS as u64;
        }
        assert_eq!(cc.cwnd(), 2 * start);
    }

    #[test]
    fn avoidance_grows_linearly() {
        let mut cc = CongestionControl::new(MSS);
        // Force into avoidance with a known cwnd.
        cc.on_timeout(100 * MSS as u64); // ssthresh = 50 MSS, cwnd = 1 MSS
        while cc.in_slow_start() {
            cc.on_ack(MSS as u64);
        }
        let cwnd = cc.cwnd();
        // One cwnd of acks ⇒ exactly one MSS of growth.
        let mut acked = 0;
        while acked < cwnd {
            cc.on_ack(MSS as u64);
            acked += MSS as u64;
        }
        assert!(
            cc.cwnd() >= cwnd + MSS as u64 && cc.cwnd() <= cwnd + 2 * MSS as u64,
            "cwnd grew from {cwnd} to {}",
            cc.cwnd()
        );
    }

    #[test]
    fn timeout_collapses_window() {
        let mut cc = CongestionControl::new(MSS);
        for _ in 0..100 {
            cc.on_ack(MSS as u64);
        }
        let flight = cc.cwnd();
        cc.on_timeout(flight);
        assert_eq!(cc.cwnd(), MSS as u64);
        assert_eq!(cc.ssthresh(), (flight / 2).max(2 * MSS as u64));
    }

    #[test]
    fn fast_retransmit_halves() {
        let mut cc = CongestionControl::new(MSS);
        for _ in 0..100 {
            cc.on_ack(MSS as u64);
        }
        let flight = cc.cwnd();
        cc.on_fast_retransmit(flight);
        assert_eq!(cc.cwnd(), (flight / 2).max(2 * MSS as u64));
        assert!(!cc.in_slow_start() || cc.cwnd() == cc.ssthresh());
    }

    #[test]
    fn ssthresh_floor_is_2_mss() {
        let mut cc = CongestionControl::new(MSS);
        cc.on_timeout(0);
        assert_eq!(cc.ssthresh(), 2 * MSS as u64);
    }

    #[test]
    fn allowance_subtracts_flight() {
        let cc = CongestionControl::new(MSS);
        assert_eq!(cc.send_allowance(0), 4 * MSS as u64);
        assert_eq!(cc.send_allowance(3 * MSS as u64), MSS as u64);
        assert_eq!(cc.send_allowance(10 * MSS as u64), 0);
    }

    #[test]
    fn zero_ack_is_ignored() {
        let mut cc = CongestionControl::new(MSS);
        let w = cc.cwnd();
        cc.on_ack(0);
        assert_eq!(cc.cwnd(), w);
    }

    #[test]
    fn display_names_phase() {
        let mut cc = CongestionControl::new(MSS);
        assert!(cc.to_string().contains("slow-start"));
        cc.on_timeout(100 * MSS as u64);
        while cc.in_slow_start() {
            cc.on_ack(MSS as u64);
        }
        assert!(cc.to_string().contains("avoidance"));
    }
}
