//! The per-host TCP endpoint: demultiplexing, listeners, timers, and the
//! ST-TCP egress shim.
//!
//! A [`TcpEndpoint`] owns every connection on a host and converts between
//! IP packets and per-connection segments. It is where ST-TCP's hooks
//! live:
//!
//! * **ISN policy** — the backup must produce the *same* initial sequence
//!   number as the primary for each connection, so both servers run the
//!   [`IsnPolicy::Deterministic`] policy (a keyed hash of the four-tuple),
//!   realizing the paper's "the backup changes its initial sequence number
//!   to match that of the primary" without extra messaging.
//! * **Egress suppression** — the backup generates every segment a normal
//!   server would, but its endpoint drops them at the shim
//!   ([`EgressMode::Suppress`]); on takeover the mode flips to
//!   [`EgressMode::Normal`] and the connection picks up mid-stream.
//! * **FIN gate** — for the paper's `MaxDelayFIN` arbitration, a
//!   connection's FIN segments can be held at the shim
//!   ([`FinGate::Hold`]) while data continues to flow, then released or
//!   left to die with the server.

use bytes::Bytes;
use std::collections::{BTreeMap, VecDeque};
use std::net::Ipv4Addr;

use simnet::ip::{IpProto, Ipv4Packet};
use simnet::rng::SimRng;
use simnet::time::SimTime;

use crate::conn::{ConnEvent, TcpConfig, TcpConn, TcpState};
use crate::segment::{TcpFlags, TcpSegment};
use crate::seq::SeqNum;
use crate::socket::{FourTuple, SocketEvent, SocketId};
use crate::wheel::DeadlineWheel;

/// How initial sequence numbers are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsnPolicy {
    /// Seeded-random ISNs (ordinary hosts).
    Random,
    /// A keyed hash of the connection four-tuple: two endpoints configured
    /// with the same salt derive the same ISN for the same connection —
    /// the ST-TCP primary/backup configuration.
    Deterministic {
        /// Shared key; both servers must agree on it.
        salt: u64,
    },
    /// A fixed ISN (tests only).
    Fixed(SeqNum),
}

/// What to do with segments addressed to no known connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RstPolicy {
    /// Answer with an RST (ordinary hosts).
    Send,
    /// Stay silent (the ST-TCP backup must never betray its presence).
    Silent,
}

/// Per-connection egress behaviour at the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EgressMode {
    /// Segments leave the host normally.
    Normal,
    /// Segments are generated, counted, and dropped (the ST-TCP backup).
    Suppress,
}

/// Per-connection FIN/RST handling at the shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinGate {
    /// FIN/RST segments pass through.
    Open,
    /// FIN- or RST-flagged segments are held (dropped and counted); data
    /// segments still pass. Used by the `MaxDelayFIN` protocol, which the
    /// paper applies to both close (FIN) and abort (RST) events.
    Hold,
}

/// Endpoint-level configuration.
#[derive(Debug, Clone)]
pub struct EndpointConfig {
    /// Per-connection TCP tuning for actively opened sockets.
    pub tcp: TcpConfig,
    /// ISN selection policy.
    pub isn: IsnPolicy,
    /// Behaviour toward unknown segments.
    pub rst_policy: RstPolicy,
    /// Seed for the endpoint's private RNG (random ISNs, ephemeral ports).
    pub seed: u64,
}

impl Default for EndpointConfig {
    fn default() -> Self {
        EndpointConfig {
            tcp: TcpConfig::default(),
            isn: IsnPolicy::Random,
            rst_policy: RstPolicy::Send,
            seed: 0,
        }
    }
}

/// Configuration applied to connections accepted by a listener.
#[derive(Debug, Clone)]
pub struct ListenConfig {
    /// TCP tuning for accepted connections (e.g. the primary enables the
    /// hold buffer here).
    pub tcp: TcpConfig,
    /// Egress mode for accepted connections.
    pub egress: EgressMode,
}

impl Default for ListenConfig {
    fn default() -> Self {
        ListenConfig {
            tcp: TcpConfig::default(),
            egress: EgressMode::Normal,
        }
    }
}

/// Shim counters for one connection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShimStats {
    /// Segments dropped by [`EgressMode::Suppress`].
    pub suppressed: u64,
    /// FIN segments held by [`FinGate::Hold`].
    pub fins_held: u64,
}

#[derive(Debug)]
struct ConnEntry {
    conn: TcpConn,
    egress: EgressMode,
    fin_gate: FinGate,
    shim: ShimStats,
    /// In `touched_list` (activity since the last `drain_touched`).
    touched: bool,
    /// In `poll_list` (may have segments pending since the last poll).
    pollable: bool,
    /// In `deadline_dirty` (the timer registration may be stale).
    dirty_deadline: bool,
    /// The deadline this socket last registered in the timer wheel
    /// (`None` = no live registration). A wheel entry is valid only
    /// while it matches; rescheduling just strands the old entry as a
    /// tombstone the pop path discards.
    wheel_at: Option<SimTime>,
}

/// A host's TCP stack. See the [module docs](self).
#[derive(Debug)]
pub struct TcpEndpoint {
    cfg: EndpointConfig,
    rng: SimRng,
    listeners: BTreeMap<u16, ListenConfig>,
    socks: BTreeMap<SocketId, ConnEntry>,
    by_tuple: BTreeMap<FourTuple, SocketId>,
    next_id: u64,
    events: VecDeque<(SocketId, SocketEvent)>,
    raw_out: VecDeque<(FourTuple, TcpSegment)>,
    /// Sockets with activity since the last [`TcpEndpoint::drain_touched`]
    /// — the intrusive dirty list behind ST-TCP's delta heartbeats: idle
    /// connections are never visited when building a heartbeat.
    touched_list: Vec<SocketId>,
    /// Sockets that may have outbound segments pending. Every path that
    /// can make a connection emit a segment marks it, so
    /// [`TcpEndpoint::poll_packets`] visits only active connections.
    poll_list: Vec<SocketId>,
    /// Sockets whose wheel registration may no longer match their
    /// connection's `next_deadline` (touched, or polled — emitting a
    /// segment can arm the retransmit/persist timers). Reconciled
    /// lazily by [`TcpEndpoint::sync_deadlines`] before any timer query.
    deadline_dirty: Vec<SocketId>,
    /// Per-connection timer deadlines, ordered. Replaces the flat
    /// every-socket deadline scan: timer queries cost O(active), so
    /// idle connections cost zero CPU per tick. The scan it replaced
    /// survives as the differential oracle (`scan_due`,
    /// `scan_next_deadline`) asserted against on every debug-build
    /// query and driven hard by the proptest at the bottom of this
    /// file.
    wheel: DeadlineWheel,
}

impl TcpEndpoint {
    /// Creates an endpoint.
    pub fn new(cfg: EndpointConfig) -> TcpEndpoint {
        let rng = SimRng::seed_from(cfg.seed);
        TcpEndpoint {
            cfg,
            rng,
            listeners: BTreeMap::new(),
            socks: BTreeMap::new(),
            by_tuple: BTreeMap::new(),
            next_id: 0,
            events: VecDeque::new(),
            raw_out: VecDeque::new(),
            touched_list: Vec::new(),
            poll_list: Vec::new(),
            deadline_dirty: Vec::new(),
            wheel: DeadlineWheel::new(),
        }
    }

    /// Marks a socket active: it joins the touched set (drained by the
    /// ST-TCP server's delta-heartbeat builder) and the poll set.
    fn touch(&mut self, id: SocketId) {
        if let Some(e) = self.socks.get_mut(&id) {
            if !e.touched {
                e.touched = true;
                self.touched_list.push(id);
            }
            if !e.pollable {
                e.pollable = true;
                self.poll_list.push(id);
            }
            if !e.dirty_deadline {
                e.dirty_deadline = true;
                self.deadline_dirty.push(id);
            }
        }
    }

    /// Reconciles the timer wheel with every dirty socket's current
    /// deadline. Lazy on purpose: `conn_mut` touches *before* handing
    /// out `&mut`, so the registration must be refreshed after the
    /// mutation — at the next timer query — not at touch time.
    fn sync_deadlines(&mut self) {
        for id in std::mem::take(&mut self.deadline_dirty) {
            let Some(e) = self.socks.get_mut(&id) else {
                continue;
            };
            e.dirty_deadline = false;
            let d = e.conn.next_deadline();
            if e.wheel_at != d {
                e.wheel_at = d;
                if let Some(t) = d {
                    self.wheel.push(t, id);
                }
            }
        }
    }

    /// Drains the set of sockets with any activity (segments, timers,
    /// application I/O, control-plane mutation) since the last drain.
    /// Order is first-touch order; each socket appears at most once.
    pub fn drain_touched(&mut self) -> Vec<SocketId> {
        for id in &self.touched_list {
            if let Some(e) = self.socks.get_mut(id) {
                e.touched = false;
            }
        }
        std::mem::take(&mut self.touched_list)
    }

    // ----- listeners and opens ------------------------------------------

    /// Starts listening on `port` with the given accept-time config.
    pub fn listen(&mut self, port: u16, config: ListenConfig) {
        self.listeners.insert(port, config);
    }

    /// Stops listening on `port` (existing connections unaffected).
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// Actively opens a connection. Returns the new socket id.
    pub fn connect(
        &mut self,
        now: SimTime,
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
    ) -> SocketId {
        let tuple = FourTuple { local, remote };
        let iss = self.pick_isn(tuple);
        let conn = TcpConn::client(self.cfg.tcp.clone(), tuple, iss, now);
        self.install(conn, EgressMode::Normal)
    }

    fn pick_isn(&mut self, tuple: FourTuple) -> SeqNum {
        match self.cfg.isn {
            IsnPolicy::Random => SeqNum(self.rng.next_u32()),
            IsnPolicy::Fixed(isn) => isn,
            IsnPolicy::Deterministic { salt } => SeqNum(deterministic_isn(tuple, salt)),
        }
    }

    fn install(&mut self, conn: TcpConn, egress: EgressMode) -> SocketId {
        let id = SocketId(self.next_id);
        self.next_id += 1;
        self.by_tuple.insert(conn.tuple(), id);
        self.socks.insert(
            id,
            ConnEntry {
                conn,
                egress,
                fin_gate: FinGate::Open,
                shim: ShimStats::default(),
                touched: false,
                pollable: false,
                dirty_deadline: false,
                wheel_at: None,
            },
        );
        self.touch(id);
        id
    }

    // ----- packet path ------------------------------------------------

    /// Processes an inbound IP packet carrying TCP. Non-TCP packets and
    /// undecodable segments are ignored (the caller routes ICMP etc.).
    pub fn on_packet(&mut self, now: SimTime, pkt: &Ipv4Packet) {
        if pkt.proto != IpProto::Tcp {
            return;
        }
        let Ok(seg) = TcpSegment::decode(&pkt.payload, pkt.src, pkt.dst) else {
            return;
        };
        let tuple = FourTuple {
            local: (pkt.dst, seg.dst_port),
            remote: (pkt.src, seg.src_port),
        };
        if let Some(&id) = self.by_tuple.get(&tuple) {
            if let Some(entry) = self.socks.get_mut(&id) {
                entry.conn.on_segment(now, &seg);
                self.collect_events(id);
                self.touch(id);
                return;
            }
        }
        // No connection: maybe a listener?
        if seg.flags.syn && !seg.flags.ack {
            if let Some(lc) = self.listeners.get(&seg.dst_port).cloned() {
                let iss = self.pick_isn(tuple);
                let conn = TcpConn::server_from_syn(lc.tcp.clone(), tuple, iss, &seg, now);
                let id = self.install(conn, lc.egress);
                self.events.push_back((id, SocketEvent::Accepted));
                return;
            }
        }
        // Unknown segment: RST policy.
        if self.cfg.rst_policy == RstPolicy::Send && !seg.flags.rst {
            let rst = make_rst_for(&seg);
            self.raw_out.push_back((tuple, rst));
        }
    }

    /// Fires all timers due at `now`.
    ///
    /// O(due), not O(connections): the wheel yields exactly the sockets
    /// whose registered deadline is `<= now`. Firing order is ascending
    /// `SocketId` — the order the replaced `BTreeMap` scan produced —
    /// so simulation runs are bit-identical to the scan implementation
    /// (the debug assertion and the differential proptest below pin
    /// this).
    pub fn on_time(&mut self, now: SimTime) {
        self.sync_deadlines();
        let mut due: Vec<SocketId> = Vec::new();
        while let Some((t, id)) = self.wheel.peek() {
            if t > now {
                break;
            }
            let _ = self.wheel.pop();
            // Valid only if this entry is the socket's live registration;
            // rescheduled/cancelled deadlines left tombstones behind.
            if let Some(e) = self.socks.get_mut(&id) {
                if e.wheel_at == Some(t) {
                    e.wheel_at = None;
                    due.push(id);
                }
            }
        }
        due.sort_unstable();
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            due,
            self.scan_due(now),
            "wheel due-set diverged from the scan oracle"
        );
        for id in due {
            if let Some(entry) = self.socks.get_mut(&id) {
                entry.conn.on_timer(now);
            }
            self.collect_events(id);
            self.touch(id);
        }
    }

    /// The earliest timer deadline across all connections.
    ///
    /// O(active): answered from the wheel (which may cascade slots,
    /// hence `&mut`), discarding stale tombstones on the way.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.sync_deadlines();
        let next = loop {
            match self.wheel.peek() {
                None => break None,
                Some((t, id)) => {
                    if self.socks.get(&id).is_some_and(|e| e.wheel_at == Some(t)) {
                        break Some(t);
                    }
                    let _ = self.wheel.pop();
                }
            }
        };
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            next,
            self.scan_next_deadline(),
            "wheel next_deadline diverged from the scan oracle"
        );
        next
    }

    /// The replaced O(n) due-set scan, kept as the differential oracle:
    /// trivially correct by inspection, asserted bit-identical to the
    /// wheel on every debug-build `on_time`.
    #[cfg(any(test, debug_assertions))]
    fn scan_due(&self, now: SimTime) -> Vec<SocketId> {
        self.socks
            .iter()
            .filter(|(_, e)| e.conn.next_deadline().is_some_and(|d| d <= now))
            .map(|(&id, _)| id)
            .collect()
    }

    /// The replaced O(n) min-deadline scan, kept as the differential
    /// oracle for [`TcpEndpoint::next_deadline`].
    #[cfg(any(test, debug_assertions))]
    fn scan_next_deadline(&self) -> Option<SimTime> {
        self.socks
            .values()
            .filter_map(|e| e.conn.next_deadline())
            .min()
    }

    /// Drains all pending outbound segments as IP packets, applying the
    /// egress shim (suppression, FIN gating).
    pub fn poll_packets(&mut self, _now: SimTime) -> Vec<Ipv4Packet> {
        let mut out = Vec::new();
        while let Some((tuple, seg)) = self.raw_out.pop_front() {
            out.push(wrap(tuple, &seg));
        }
        // Only sockets with activity since the last poll can have pending
        // segments; idle connections are not visited (O(active), not
        // O(connections) — the scale bench depends on this).
        let pollable = std::mem::take(&mut self.poll_list);
        for id in pollable {
            let Some(entry) = self.socks.get_mut(&id) else {
                continue;
            };
            entry.pollable = false;
            while let Some(seg) = entry.conn.poll_segment() {
                match entry.egress {
                    EgressMode::Suppress => {
                        entry.shim.suppressed += 1;
                        continue;
                    }
                    EgressMode::Normal => {}
                }
                if entry.fin_gate == FinGate::Hold && (seg.flags.fin || seg.flags.rst) {
                    entry.shim.fins_held += 1;
                    continue;
                }
                out.push(wrap(entry.conn.tuple(), &seg));
            }
            // Emitting segments can arm the retransmit/persist/TIME-WAIT
            // timers; refresh this socket's wheel registration lazily.
            if !entry.dirty_deadline {
                entry.dirty_deadline = true;
                self.deadline_dirty.push(id);
            }
        }
        out
    }

    /// Drains the next application event.
    pub fn poll_event(&mut self) -> Option<(SocketId, SocketEvent)> {
        self.events.pop_front()
    }

    fn collect_events(&mut self, id: SocketId) {
        let Some(entry) = self.socks.get_mut(&id) else {
            return;
        };
        while let Some(ev) = entry.conn.poll_event() {
            let sev = match ev {
                ConnEvent::Connected => SocketEvent::Connected,
                ConnEvent::DataReadable => SocketEvent::DataReadable,
                ConnEvent::PeerFin => SocketEvent::PeerFin,
                ConnEvent::Reset => SocketEvent::Reset,
                ConnEvent::Closed => SocketEvent::Closed,
            };
            self.events.push_back((id, sev));
        }
        // Fully closed connections release their tuple so a new connection
        // with the same endpoints can be accepted later — unless the FIN
        // gate is holding: a connection whose FIN/RST is being withheld
        // must keep absorbing the peer's segments silently (answering them
        // with fresh RSTs would leak the very event the gate suppresses).
        if entry.conn.state() == TcpState::Closed && entry.fin_gate == FinGate::Open {
            let tuple = entry.conn.tuple();
            if self.by_tuple.get(&tuple) == Some(&id) {
                self.by_tuple.remove(&tuple);
            }
        }
    }

    // ----- application API ------------------------------------------------

    /// Writes data on a socket; returns bytes accepted.
    pub fn send(&mut self, now: SimTime, id: SocketId, data: &[u8]) -> usize {
        let n = match self.socks.get_mut(&id) {
            Some(e) => e.conn.send(now, data),
            None => 0,
        };
        self.collect_events(id);
        self.touch(id);
        n
    }

    /// Reads up to `max` in-order bytes from a socket.
    pub fn recv(&mut self, id: SocketId, max: usize) -> Bytes {
        let data = match self.socks.get_mut(&id) {
            Some(e) => e.conn.recv(max),
            None => Bytes::new(),
        };
        if !data.is_empty() {
            self.touch(id);
        }
        data
    }

    /// Closes the sending side of a socket.
    pub fn close(&mut self, now: SimTime, id: SocketId) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.conn.close(now);
        }
        self.collect_events(id);
        self.touch(id);
    }

    /// Aborts a socket with an RST.
    pub fn abort(&mut self, now: SimTime, id: SocketId) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.conn.abort(now);
        }
        self.collect_events(id);
        self.touch(id);
    }

    /// Installs a connection rebuilt from a re-integration snapshot
    /// ([`TcpConn::resume`]) under this endpoint's demultiplexer, with the
    /// given egress mode (the joining backup installs with
    /// [`EgressMode::Suppress`]). Returns `None` — installing nothing —
    /// if the four-tuple is already taken, which means the endpoint
    /// accepted the connection itself (a tapped SYN) and the snapshot is
    /// redundant.
    pub fn install_resumed(&mut self, conn: TcpConn, egress: EgressMode) -> Option<SocketId> {
        if self.by_tuple.contains_key(&conn.tuple()) {
            return None;
        }
        let id = self.install(conn, egress);
        self.collect_events(id);
        Some(id)
    }

    // ----- introspection and ST-TCP control --------------------------------

    /// Immutable access to a socket's connection state machine.
    pub fn conn(&self, id: SocketId) -> Option<&TcpConn> {
        self.socks.get(&id).map(|e| &e.conn)
    }

    /// Mutable access to a socket's connection (ST-TCP hold/injection
    /// control). Marks the socket touched: the caller may mutate state
    /// that feeds heartbeats or produces segments.
    pub fn conn_mut(&mut self, id: SocketId) -> Option<&mut TcpConn> {
        self.touch(id);
        self.socks.get_mut(&id).map(|e| &mut e.conn)
    }

    /// Looks up the socket for a four-tuple.
    pub fn socket_by_tuple(&self, tuple: FourTuple) -> Option<SocketId> {
        self.by_tuple.get(&tuple).copied()
    }

    /// All live socket ids, in creation order.
    pub fn sockets(&self) -> Vec<SocketId> {
        self.socks.keys().copied().collect()
    }

    /// Sets the egress mode of a socket (takeover flips the backup's
    /// client connections from `Suppress` to `Normal`).
    pub fn set_egress(&mut self, id: SocketId, mode: EgressMode) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.egress = mode;
        }
    }

    /// The egress mode of a socket.
    pub fn egress(&self, id: SocketId) -> Option<EgressMode> {
        self.socks.get(&id).map(|e| e.egress)
    }

    /// Sets the FIN gate of a socket.
    pub fn set_fin_gate(&mut self, id: SocketId, gate: FinGate) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.fin_gate = gate;
        }
    }

    /// Opens a held FIN gate and forces an immediate retransmission so the
    /// FIN actually goes out now rather than at the next backed-off RTO.
    /// A held RST is re-issued explicitly: the original was a one-shot
    /// segment the gate swallowed, and nothing retransmits it.
    pub fn release_fin(&mut self, now: SimTime, id: SocketId) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.fin_gate = FinGate::Open;
            if e.conn.rst_generated() {
                // Mutation seam: `inject_held_rst` re-introduces the PR-1
                // held-RST bug (gate swallows the one-shot RST and release
                // forgets to re-send it — the client hangs forever). Built
                // only so the bounded-exhaustive explorer can prove it
                // re-discovers and shrinks the bug; never enable it in a
                // real build.
                #[cfg(not(feature = "inject_held_rst"))]
                e.conn.reissue_rst(now);
                #[cfg(feature = "inject_held_rst")]
                let _ = now;
            } else if e.conn.fin_generated() {
                e.conn.force_retransmit(now);
            }
        }
        self.collect_events(id);
        self.touch(id);
    }

    /// Shim counters for a socket.
    pub fn shim_stats(&self, id: SocketId) -> Option<ShimStats> {
        self.socks.get(&id).map(|e| e.shim)
    }

    /// Changes the policy toward segments addressed to no known
    /// connection. The ST-TCP backup runs `Silent` while shadowing and
    /// flips to `Send` at takeover, when it must behave like an ordinary
    /// host (including resetting orphaned connections).
    pub fn set_rst_policy(&mut self, policy: RstPolicy) {
        self.cfg.rst_policy = policy;
    }

    /// Injects in-order bytes into a socket's receive path (ST-TCP
    /// missed-byte recovery), delivering any resulting events.
    pub fn inject_in_order(&mut self, id: SocketId, off: u64, data: &Bytes) {
        if let Some(e) = self.socks.get_mut(&id) {
            e.conn.inject_in_order(off, data);
        }
        self.collect_events(id);
        self.touch(id);
    }
}

fn wrap(tuple: FourTuple, seg: &TcpSegment) -> Ipv4Packet {
    Ipv4Packet::new(
        tuple.local.0,
        tuple.remote.0,
        IpProto::Tcp,
        seg.encode(tuple.local.0, tuple.remote.0),
    )
}

/// Builds the RST answering an unexpected segment (RFC 793 reset
/// generation, simplified).
fn make_rst_for(seg: &TcpSegment) -> TcpSegment {
    let (seq, ack, ack_flag) = if seg.flags.ack {
        (seg.ack, SeqNum(0), false)
    } else {
        (SeqNum(0), seg.seq + seg.seq_len(), true)
    };
    TcpSegment {
        src_port: seg.dst_port,
        dst_port: seg.src_port,
        seq,
        ack,
        flags: TcpFlags {
            rst: true,
            ack: ack_flag,
            ..Default::default()
        },
        window: 0,
        payload: Bytes::new(),
    }
}

/// FNV-1a over the four-tuple and salt: a keyed, deterministic ISN that
/// both ST-TCP servers derive identically.
fn deterministic_isn(tuple: FourTuple, salt: u64) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in salt.to_be_bytes() {
        eat(b);
    }
    for b in tuple.local.0.octets() {
        eat(b);
    }
    for b in tuple.local.1.to_be_bytes() {
        eat(b);
    }
    for b in tuple.remote.0.octets() {
        eat(b);
    }
    for b in tuple.remote.1.to_be_bytes() {
        eat(b);
    }
    (h ^ (h >> 32)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::TcpState;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    /// Two endpoints wired back-to-back through a lossless instant pipe.
    struct Net {
        a: TcpEndpoint,
        b: TcpEndpoint,
        now: SimTime,
    }

    impl Net {
        fn new() -> Net {
            Net {
                a: TcpEndpoint::new(EndpointConfig {
                    seed: 1,
                    ..Default::default()
                }),
                b: TcpEndpoint::new(EndpointConfig {
                    seed: 2,
                    ..Default::default()
                }),
                now: SimTime::ZERO,
            }
        }

        fn pump(&mut self) {
            loop {
                let pa = self.a.poll_packets(self.now);
                let pb = self.b.poll_packets(self.now);
                if pa.is_empty() && pb.is_empty() {
                    break;
                }
                for p in pa {
                    self.b.on_packet(self.now, &p);
                }
                for p in pb {
                    self.a.on_packet(self.now, &p);
                }
            }
        }

        fn advance(&mut self, to: SimTime) {
            self.now = to;
            self.a.on_time(to);
            self.b.on_time(to);
            self.pump();
        }
    }

    fn connected_pair() -> (Net, SocketId, SocketId) {
        let mut n = Net::new();
        n.b.listen(80, ListenConfig::default());
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        let mut server_sock = None;
        while let Some((id, ev)) = n.b.poll_event() {
            if ev == SocketEvent::Accepted {
                server_sock = Some(id);
            }
        }
        let sb = server_sock.expect("accept event");
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::Established);
        assert_eq!(n.b.conn(sb).unwrap().state(), TcpState::Established);
        (n, ca, sb)
    }

    #[test]
    fn connect_accept_and_transfer() {
        let (mut n, ca, sb) = connected_pair();
        assert_eq!(n.a.send(n.now, ca, b"ping"), 4);
        n.pump();
        assert_eq!(n.b.recv(sb, 100).as_ref(), b"ping");
        assert_eq!(n.b.send(n.now, sb, b"pong!"), 5);
        n.pump();
        assert_eq!(n.a.recv(ca, 100).as_ref(), b"pong!");
    }

    #[test]
    fn events_flow_through_endpoint() {
        let (mut n, ca, sb) = connected_pair();
        let _ = n.a.send(n.now, ca, b"x");
        n.pump();
        let evs: Vec<SocketEvent> = std::iter::from_fn(|| n.b.poll_event())
            .map(|(id, ev)| {
                assert_eq!(id, sb);
                ev
            })
            .collect();
        assert!(evs.contains(&SocketEvent::DataReadable));
    }

    #[test]
    fn unknown_segment_gets_rst_when_policy_send() {
        let mut n = Net::new();
        // No listener on b.
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::Closed);
        let evs: Vec<SocketEvent> = std::iter::from_fn(|| n.a.poll_event())
            .map(|(_, e)| e)
            .collect();
        assert!(evs.contains(&SocketEvent::Reset));
    }

    #[test]
    fn silent_policy_sends_nothing() {
        let mut n = Net::new();
        n.b = TcpEndpoint::new(EndpointConfig {
            rst_policy: RstPolicy::Silent,
            seed: 2,
            ..Default::default()
        });
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        // The SYN goes unanswered: client still in SYN-SENT.
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::SynSent);
    }

    #[test]
    fn deterministic_isn_matches_across_endpoints() {
        let tuple = FourTuple {
            local: (ip(100), 80),
            remote: (ip(1), 40_000),
        };
        assert_eq!(deterministic_isn(tuple, 7), deterministic_isn(tuple, 7));
        assert_ne!(deterministic_isn(tuple, 7), deterministic_isn(tuple, 8));
        let other = FourTuple {
            local: (ip(100), 80),
            remote: (ip(1), 40_001),
        };
        assert_ne!(deterministic_isn(tuple, 7), deterministic_isn(other, 7));
    }

    #[test]
    fn two_listeners_with_deterministic_isn_accept_identically() {
        // The ST-TCP property: primary and backup accept the same SYN and
        // produce the same ISS.
        let mk = || {
            let mut e = TcpEndpoint::new(EndpointConfig {
                isn: IsnPolicy::Deterministic { salt: 99 },
                rst_policy: RstPolicy::Silent,
                seed: 5,
                ..Default::default()
            });
            e.listen(80, ListenConfig::default());
            e
        };
        let mut primary = mk();
        let mut backup = mk();
        let mut client = TcpEndpoint::new(EndpointConfig {
            seed: 9,
            ..Default::default()
        });
        let _ = client.connect(SimTime::ZERO, (ip(1), 40_000), (ip(100), 80));
        let syn_pkt = &client.poll_packets(SimTime::ZERO)[0];
        primary.on_packet(SimTime::ZERO, syn_pkt);
        backup.on_packet(SimTime::ZERO, syn_pkt);
        let ps = primary.sockets()[0];
        let bs = backup.sockets()[0];
        assert_eq!(
            primary.conn(ps).unwrap().isn(),
            backup.conn(bs).unwrap().isn()
        );
    }

    #[test]
    fn suppressed_egress_emits_nothing_but_counts() {
        let mut n = Net::new();
        n.b.listen(
            80,
            ListenConfig {
                egress: EgressMode::Suppress,
                ..Default::default()
            },
        );
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        // The SYN-ACK was suppressed: the client is still in SYN-SENT.
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::SynSent);
        let sb = n.b.sockets()[0];
        assert!(n.b.shim_stats(sb).unwrap().suppressed >= 1);
    }

    #[test]
    fn unsuppressing_lets_connection_complete() {
        let mut n = Net::new();
        n.b.listen(
            80,
            ListenConfig {
                egress: EgressMode::Suppress,
                ..Default::default()
            },
        );
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        let sb = n.b.sockets()[0];
        assert_eq!(n.b.egress(sb), Some(EgressMode::Suppress));
        n.b.set_egress(sb, EgressMode::Normal);
        // Client retransmits its SYN; this time the SYN-ACK flows.
        let d = n.a.next_deadline().unwrap();
        n.advance(d);
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::Established);
    }

    #[test]
    fn fin_gate_holds_fin_but_passes_data() {
        let (mut n, ca, sb) = connected_pair();
        n.a.set_fin_gate(ca, FinGate::Hold);
        let _ = n.a.send(n.now, ca, b"last data");
        n.a.close(n.now, ca);
        n.pump();
        // Data arrived…
        assert_eq!(n.b.recv(sb, 100).as_ref(), b"last data");
        // …but no FIN was seen by the server.
        assert!(!n.b.conn(sb).unwrap().peer_fin_received());
        assert!(n.a.shim_stats(ca).unwrap().fins_held >= 1);
        // Releasing the gate delivers the FIN promptly.
        n.a.release_fin(n.now, ca);
        n.pump();
        assert!(n.b.conn(sb).unwrap().peer_fin_received());
    }

    #[test]
    fn timers_drive_retransmission_through_endpoint() {
        let (mut n, ca, sb) = connected_pair();
        let _ = n.a.send(n.now, ca, b"will be lost");
        // Drop the data packet on the floor.
        let _ = n.a.poll_packets(n.now);
        assert_eq!(n.b.recv(sb, 100).len(), 0);
        let d = n.a.next_deadline().unwrap();
        n.advance(d);
        assert_eq!(n.b.recv(sb, 100).as_ref(), b"will be lost");
    }

    #[test]
    fn closed_connection_frees_tuple_for_reuse() {
        let (mut n, ca, _sb) = connected_pair();
        n.a.abort(n.now, ca);
        n.pump();
        assert_eq!(
            n.a.socket_by_tuple(FourTuple {
                local: (ip(1), 40_000),
                remote: (ip(2), 80),
            }),
            None
        );
    }

    #[test]
    fn many_concurrent_connections_demux_correctly() {
        let mut n = Net::new();
        n.b.listen(80, ListenConfig::default());
        let mut socks = Vec::new();
        for i in 0..8u16 {
            socks.push(n.a.connect(n.now, (ip(1), 41_000 + i), (ip(2), 80)));
        }
        n.pump();
        // Each client socket established; each gets its own echo lane.
        for (i, &sock) in socks.iter().enumerate() {
            assert_eq!(n.a.conn(sock).unwrap().state(), TcpState::Established);
            let msg = format!("hello-{i}");
            let _ = n.a.send(n.now, sock, msg.as_bytes());
        }
        n.pump();
        // Server got 8 distinct connections with the right bytes.
        let server_socks = n.b.sockets();
        assert_eq!(server_socks.len(), 8);
        let mut seen: Vec<String> = server_socks
            .iter()
            .map(|&s| String::from_utf8_lossy(&n.b.recv(s, 100)).into_owned())
            .collect();
        seen.sort();
        let mut expected: Vec<String> = (0..8).map(|i| format!("hello-{i}")).collect();
        expected.sort();
        assert_eq!(seen, expected);
    }

    #[test]
    fn unlisten_stops_new_accepts_keeps_existing() {
        let (mut n, ca, sb) = connected_pair();
        n.b.unlisten(80);
        // Existing connection still works.
        let _ = n.a.send(n.now, ca, b"still alive");
        n.pump();
        assert_eq!(n.b.recv(sb, 100).as_ref(), b"still alive");
        // New connection attempts are refused.
        let c2 = n.a.connect(n.now, (ip(1), 40_001), (ip(2), 80));
        n.pump();
        assert_eq!(n.a.conn(c2).unwrap().state(), TcpState::Closed);
    }

    #[test]
    fn deadline_aggregation_takes_minimum() {
        let (mut n, ca, _sb) = connected_pair();
        // One connection with an armed retransmission timer.
        let _ = n.a.send(n.now, ca, b"x");
        let d1 = n.a.next_deadline().expect("rtx armed");
        // A second connection arms a SYN timer (never answered).
        let _ = n.a.connect(n.now, (ip(1), 40_007), (ip(9), 80));
        let d2 = n.a.next_deadline().expect("two timers now");
        assert!(d2 <= d1);
    }

    #[test]
    fn set_rst_policy_flips_behaviour() {
        let mut n = Net::new();
        n.b = TcpEndpoint::new(EndpointConfig {
            rst_policy: RstPolicy::Silent,
            seed: 2,
            ..Default::default()
        });
        let ca = n.a.connect(n.now, (ip(1), 40_000), (ip(2), 80));
        n.pump();
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::SynSent);
        // Flip to Send: the next retransmitted SYN gets refused.
        n.b.set_rst_policy(RstPolicy::Send);
        let d = n.a.next_deadline().unwrap();
        n.advance(d);
        assert_eq!(n.a.conn(ca).unwrap().state(), TcpState::Closed);
    }

    #[test]
    fn drain_touched_tracks_activity_and_resets() {
        let (mut n, ca, sb) = connected_pair();
        // The handshake touched both sockets; drain to a clean slate.
        assert!(n.a.drain_touched().contains(&ca));
        assert!(n.b.drain_touched().contains(&sb));
        assert!(n.a.drain_touched().is_empty());
        assert!(n.b.drain_touched().is_empty());
        // Idle sockets stay untouched; data flow touches both ends.
        let _ = n.a.send(n.now, ca, b"ping");
        n.pump();
        assert_eq!(n.a.drain_touched(), vec![ca]);
        assert_eq!(n.b.drain_touched(), vec![sb]);
        // Each socket appears at most once per drain even when touched
        // repeatedly.
        let _ = n.a.send(n.now, ca, b"a");
        let _ = n.a.send(n.now, ca, b"b");
        assert_eq!(n.a.drain_touched(), vec![ca]);
    }

    #[test]
    fn idle_connections_are_not_polled() {
        let (mut n, ca, sb) = connected_pair();
        n.pump();
        // Steady state: nothing pending, polling returns nothing and the
        // poll list stays empty until new activity arrives.
        assert!(n.a.poll_packets(n.now).is_empty());
        let _ = n.a.send(n.now, ca, b"x");
        let pkts = n.a.poll_packets(n.now);
        assert!(!pkts.is_empty());
        for p in pkts {
            n.b.on_packet(n.now, &p);
        }
        n.pump();
        assert_eq!(n.b.recv(sb, 10).as_ref(), b"x");
    }

    use proptest::prelude::*;

    #[derive(Debug, Clone, Copy)]
    enum EpOp {
        /// Accept a fresh connection (arms SYN/handshake timers).
        Open,
        /// Write bytes on a random socket (arms the retransmit timer).
        Send(u8, u8),
        /// Close a random socket (FIN + TIME-WAIT timers).
        Close(u8),
        /// Jump both endpoints to the earliest deadline and fire it.
        AdvanceNext,
        /// Jump forward an arbitrary amount (fires batches of timers).
        AdvanceBy(u32),
        /// Shuttle packets (polling arms timers outside `touch` paths).
        Pump,
    }

    fn ep_op_strategy() -> impl Strategy<Value = EpOp> {
        prop_oneof![
            Just(EpOp::Open),
            (any::<u8>(), 1u8..=250).prop_map(|(s, len)| EpOp::Send(s, len)),
            any::<u8>().prop_map(EpOp::Close),
            Just(EpOp::AdvanceNext),
            (1u32..2_000_000).prop_map(EpOp::AdvanceBy),
            Just(EpOp::Pump),
        ]
    }

    proptest! {
        /// Differential test: the wheel-scheduled timer path produces
        /// exactly the due-sets and min-deadlines of the O(n) scan it
        /// replaced, under arbitrary interleavings of connection
        /// activity. `on_time` additionally asserts the due-set (in
        /// firing order) against the scan oracle internally, so every
        /// `advance` here also diffs the firing path.
        #[test]
        fn wheel_scheduling_matches_scan_oracle(
            ops in proptest::collection::vec(ep_op_strategy(), 0..80),
        ) {
            let mut n = Net::new();
            n.b.listen(80, ListenConfig::default());
            let mut socks: Vec<SocketId> = Vec::new();
            let mut next_port = 40_000u16;
            for op in ops {
                match op {
                    EpOp::Open => {
                        socks.push(n.a.connect(n.now, (ip(1), next_port), (ip(2), 80)));
                        next_port += 1;
                    }
                    EpOp::Send(which, len) => {
                        if !socks.is_empty() {
                            let s = socks[which as usize % socks.len()];
                            let data = vec![0x5a; len as usize];
                            let _ = n.a.send(n.now, s, &data);
                        }
                    }
                    EpOp::Close(which) => {
                        if !socks.is_empty() {
                            let s = socks[which as usize % socks.len()];
                            n.a.close(n.now, s);
                        }
                    }
                    EpOp::AdvanceNext => {
                        let da = n.a.next_deadline();
                        let db = n.b.next_deadline();
                        if let Some(d) = [da, db].into_iter().flatten().min() {
                            let to = d.max(n.now);
                            n.advance(to);
                        }
                    }
                    EpOp::AdvanceBy(us) => {
                        let to = n.now + simnet::time::SimDuration::from_micros(us as u64);
                        n.advance(to);
                    }
                    EpOp::Pump => n.pump(),
                }
                // Explicit diff (the internal debug assertions cover
                // debug builds; this also pins `--release` test runs).
                prop_assert_eq!(n.a.next_deadline(), n.a.scan_next_deadline());
                prop_assert_eq!(n.b.next_deadline(), n.b.scan_next_deadline());
            }
        }
    }

    #[test]
    fn rst_for_ackless_segment_acks_it() {
        let seg = TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: SeqNum(100),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 0,
            payload: Bytes::new(),
        };
        let rst = make_rst_for(&seg);
        assert!(rst.flags.rst && rst.flags.ack);
        assert_eq!(rst.ack, SeqNum(101));
        let seg2 = TcpSegment {
            flags: TcpFlags::ACK,
            ack: SeqNum(555),
            ..seg
        };
        let rst2 = make_rst_for(&seg2);
        assert!(rst2.flags.rst && !rst2.flags.ack);
        assert_eq!(rst2.seq, SeqNum(555));
    }
}
