//! Retransmission timeout estimation and exponential backoff (RFC 6298).
//!
//! The RTO schedule matters directly to the paper's Demo 2: after the
//! primary crashes, both the client and the (not-yet-active) backup keep
//! retransmitting with exponentially growing intervals, and the post-
//! detection component of the failover time is "the delay until the next
//! client or backup retransmission" — i.e. a function of how far the
//! backoff has progressed during failure detection.

use simnet::time::SimDuration;

/// Smoothed RTT estimation and retransmission-timeout computation.
///
/// Implements the RFC 6298 estimator: `SRTT`/`RTTVAR` with the standard
/// gains, Karn's rule enforced by the caller (no samples from
/// retransmitted data), and binary exponential backoff bounded by
/// [`RtoConfig::max_rto`].
#[derive(Debug, Clone)]
pub struct RtoEstimator {
    cfg: RtoConfig,
    /// Smoothed RTT in microseconds; `None` until the first sample.
    srtt: Option<f64>,
    rttvar: f64,
    /// Base RTO (before backoff) in microseconds.
    rto: f64,
    /// Current backoff exponent (0 = no backoff).
    backoff: u32,
}

/// Tunables for [`RtoEstimator`].
#[derive(Debug, Clone, Copy)]
pub struct RtoConfig {
    /// RTO used before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Lower clamp for the computed RTO.
    pub min_rto: SimDuration,
    /// Upper clamp for the backed-off RTO.
    pub max_rto: SimDuration,
}

impl Default for RtoConfig {
    fn default() -> Self {
        // Linux-flavored defaults scaled for a LAN: a 200 ms floor keeps
        // retransmission behaviour visible at simulation time scales while
        // preserving the standard doubling schedule.
        RtoConfig {
            initial_rto: SimDuration::from_millis(1_000),
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
        }
    }
}

impl RtoEstimator {
    /// Creates an estimator with the given configuration.
    pub fn new(cfg: RtoConfig) -> RtoEstimator {
        RtoEstimator {
            cfg,
            srtt: None,
            rttvar: 0.0,
            rto: cfg.initial_rto.as_micros() as f64,
            backoff: 0,
        }
    }

    /// Records an RTT sample from a non-retransmitted segment (Karn's
    /// rule is the caller's responsibility) and recomputes the RTO.
    pub fn on_sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_micros() as f64;
        match self.srtt {
            None => {
                self.srtt = Some(r);
                self.rttvar = r / 2.0;
            }
            Some(srtt) => {
                // RFC 6298: alpha = 1/8, beta = 1/4.
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - r).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * r);
            }
        }
        let srtt = self.srtt.unwrap();
        self.rto = srtt + (4.0 * self.rttvar).max(1.0);
        // A successful sample also clears backoff.
        self.backoff = 0;
    }

    /// Doubles the backoff after a retransmission timeout fires.
    pub fn on_timeout(&mut self) {
        self.backoff = (self.backoff + 1).min(16);
    }

    /// Clears backoff (e.g. when new data is acked).
    pub fn reset_backoff(&mut self) {
        self.backoff = 0;
    }

    /// The current retransmission timeout, with backoff and clamps
    /// applied.
    pub fn current_rto(&self) -> SimDuration {
        let base = self
            .rto
            .max(self.cfg.min_rto.as_micros() as f64)
            .min(self.cfg.max_rto.as_micros() as f64);
        let factor = 1u64 << self.backoff.min(32);
        let backed = SimDuration::from_micros(base as u64).saturating_mul(factor);
        backed.min(self.cfg.max_rto)
    }

    /// The smoothed RTT, if at least one sample has been taken.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt.map(|s| SimDuration::from_micros(s as u64))
    }

    /// The current backoff exponent.
    pub fn backoff(&self) -> u32 {
        self.backoff
    }
}

impl Default for RtoEstimator {
    fn default() -> Self {
        RtoEstimator::new(RtoConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_rto_before_samples() {
        let e = RtoEstimator::default();
        assert_eq!(e.current_rto(), SimDuration::from_millis(1_000));
        assert_eq!(e.srtt(), None);
    }

    #[test]
    fn first_sample_sets_srtt() {
        let mut e = RtoEstimator::default();
        e.on_sample(SimDuration::from_millis(10));
        assert_eq!(e.srtt(), Some(SimDuration::from_millis(10)));
        // RTO = srtt + 4*rttvar = 10 + 20 = 30ms, clamped up to min 200ms.
        assert_eq!(e.current_rto(), SimDuration::from_millis(200));
    }

    #[test]
    fn smoothing_converges() {
        let mut e = RtoEstimator::default();
        for _ in 0..100 {
            e.on_sample(SimDuration::from_millis(50));
        }
        let srtt = e.srtt().unwrap();
        assert!(
            srtt >= SimDuration::from_millis(49) && srtt <= SimDuration::from_millis(51),
            "srtt = {srtt}"
        );
    }

    #[test]
    fn backoff_doubles_and_clamps() {
        let mut e = RtoEstimator::default();
        e.on_sample(SimDuration::from_millis(10)); // rto floor 200ms
        let base = e.current_rto();
        e.on_timeout();
        assert_eq!(e.current_rto(), base * 2);
        e.on_timeout();
        assert_eq!(e.current_rto(), base * 4);
        for _ in 0..20 {
            e.on_timeout();
        }
        assert_eq!(e.current_rto(), SimDuration::from_secs(60), "max clamp");
    }

    #[test]
    fn sample_resets_backoff() {
        let mut e = RtoEstimator::default();
        e.on_sample(SimDuration::from_millis(10));
        e.on_timeout();
        e.on_timeout();
        assert_eq!(e.backoff(), 2);
        e.on_sample(SimDuration::from_millis(10));
        assert_eq!(e.backoff(), 0);
        let mut e2 = RtoEstimator::default();
        e2.on_sample(SimDuration::from_millis(10));
        assert_eq!(e.current_rto(), e2.current_rto());
    }

    #[test]
    fn reset_backoff_explicit() {
        let mut e = RtoEstimator::default();
        e.on_timeout();
        assert_eq!(e.backoff(), 1);
        e.reset_backoff();
        assert_eq!(e.backoff(), 0);
    }

    #[test]
    fn large_rtt_raises_rto_above_floor() {
        let mut e = RtoEstimator::default();
        e.on_sample(SimDuration::from_millis(500));
        // srtt 500ms + 4*250ms = 1.5s > floor.
        assert!(e.current_rto() >= SimDuration::from_millis(1_400));
    }

    #[test]
    fn custom_config_respected() {
        let cfg = RtoConfig {
            initial_rto: SimDuration::from_millis(100),
            min_rto: SimDuration::from_millis(50),
            max_rto: SimDuration::from_secs(2),
        };
        let mut e = RtoEstimator::new(cfg);
        assert_eq!(e.current_rto(), SimDuration::from_millis(100));
        e.on_sample(SimDuration::from_micros(100));
        assert_eq!(e.current_rto(), SimDuration::from_millis(50));
        for _ in 0..10 {
            e.on_timeout();
        }
        assert_eq!(e.current_rto(), SimDuration::from_secs(2));
    }
}
