//! The TCP connection state machine.
//!
//! A [`TcpConn`] is one endpoint of one connection: handshake, sliding
//! window with flow and congestion control, retransmission with
//! exponential backoff, graceful close, and reset handling. It is a pure
//! state machine — segments in, segments out, explicit virtual-time
//! timers — which is what lets the ST-TCP layer wrap it, tap it, and
//! suppress its output without forking the protocol logic.
//!
//! Internally all positions are 64-bit stream offsets (offset 0 = first
//! payload byte); [`crate::seq::SeqTracker`] converts to wire sequence
//! numbers at the edges.
//!
//! Omissions relative to a kernel TCP, none of which the ST-TCP
//! experiments depend on: urgent data, TCP options beyond a fixed MSS,
//! window scaling, SACK, PAWS/timestamps, delayed ACK, Nagle.

use bytes::Bytes;
use std::collections::VecDeque;

use simnet::time::{SimDuration, SimTime};

use crate::cc::CongestionControl;
use crate::recvbuf::RecvBuffer;
use crate::rto::{RtoConfig, RtoEstimator};
use crate::segment::{TcpFlags, TcpSegment};
use crate::sendbuf::SendBuffer;
use crate::seq::{SeqNum, SeqTracker};
use crate::socket::FourTuple;

/// Connection-level configuration.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum segment size (payload bytes per segment).
    pub mss: u32,
    /// Send buffer capacity in bytes.
    pub send_buf: usize,
    /// Application receive buffer capacity (bounds the advertised window).
    pub recv_buf: usize,
    /// ST-TCP extended receive buffer ("hold") capacity; `None` for plain
    /// TCP.
    pub hold_buf: Option<usize>,
    /// Retransmission-timeout tuning.
    pub rto: RtoConfig,
    /// TIME-WAIT linger duration.
    pub time_wait: SimDuration,
    /// Consecutive retransmissions of the same data before the connection
    /// is declared dead.
    pub max_retries: u32,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 1460,
            send_buf: 256 * 1024,
            recv_buf: 64 * 1024,
            hold_buf: None,
            rto: RtoConfig::default(),
            time_wait: SimDuration::from_secs(1),
            max_retries: 15,
        }
    }
}

/// TCP connection states (RFC 793 names; LISTEN lives in the endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// Active open sent, awaiting SYN-ACK.
    SynSent,
    /// Passive open replied, awaiting the handshake ACK.
    SynRcvd,
    /// Data transfer.
    Established,
    /// We closed first; FIN sent, not yet acked.
    FinWait1,
    /// Our FIN acked; awaiting the peer's FIN.
    FinWait2,
    /// Peer closed first; we may still send.
    CloseWait,
    /// Simultaneous close: FIN sent and peer FIN received, ours unacked.
    Closing,
    /// Peer closed, then we closed; awaiting the final ACK.
    LastAck,
    /// Both sides done; lingering to absorb stray segments.
    TimeWait,
    /// Fully closed (or aborted).
    Closed,
}

impl std::fmt::Display for TcpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TcpState::SynSent => "SYN-SENT",
            TcpState::SynRcvd => "SYN-RCVD",
            TcpState::Established => "ESTABLISHED",
            TcpState::FinWait1 => "FIN-WAIT-1",
            TcpState::FinWait2 => "FIN-WAIT-2",
            TcpState::CloseWait => "CLOSE-WAIT",
            TcpState::Closing => "CLOSING",
            TcpState::LastAck => "LAST-ACK",
            TcpState::TimeWait => "TIME-WAIT",
            TcpState::Closed => "CLOSED",
        };
        write!(f, "{s}")
    }
}

/// Application-visible connection events, drained via
/// [`TcpConn::poll_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnEvent {
    /// The handshake completed.
    Connected,
    /// New in-order data is readable.
    DataReadable,
    /// The peer closed its sending side (its FIN was consumed in order).
    PeerFin,
    /// The connection was reset (by the peer, or by retry exhaustion).
    Reset,
    /// The connection is fully closed.
    Closed,
}

/// Per-connection transfer counters (for overhead measurements and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnStats {
    /// Segments emitted (including retransmissions and pure ACKs).
    pub segs_out: u64,
    /// Segments processed.
    pub segs_in: u64,
    /// Payload bytes emitted for the first time.
    pub bytes_sent: u64,
    /// Payload bytes retransmitted.
    pub bytes_retransmitted: u64,
    /// Retransmission-timeout firings.
    pub rto_fires: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
}

/// The portable protocol state of one live connection, as captured for
/// ST-TCP re-integration: enough to rebuild a tapping replica mid-stream
/// on a freshly booted backup.
///
/// Bytes below `snd_una` were acknowledged by the client and bytes below
/// `rcv_start` were consumed by the application before the capture — both
/// are summarized by the transferred application state, not carried here.
#[derive(Debug, Clone)]
pub struct TcpSnapshot {
    /// The connection four-tuple (server side local).
    pub tuple: FourTuple,
    /// Our initial sequence number (identical on both servers by the
    /// deterministic-ISN policy, but carried for verification).
    pub iss: SeqNum,
    /// The client's initial sequence number.
    pub peer_isn: SeqNum,
    /// Lowest unacknowledged send-stream offset.
    pub snd_una: u64,
    /// Send bytes covering `[snd_una, snd_una + unacked.len())`.
    pub unacked: Bytes,
    /// The application had closed its sending side (FIN queued).
    pub local_fin: bool,
    /// The application's receive read cursor at capture.
    pub rcv_start: u64,
    /// Receive bytes the application had not yet read:
    /// `[rcv_start, rcv_start + pending.len())`.
    pub pending: Bytes,
    /// The client's FIN stream offset, if one was ever seen.
    pub fin_offset: Option<u64>,
    /// The client's FIN had been consumed in order (the application was
    /// already told — the replica must not re-announce it).
    pub peer_fin_consumed: bool,
}

/// One endpoint of a TCP connection. See the [module docs](self).
#[derive(Debug)]
pub struct TcpConn {
    cfg: TcpConfig,
    tuple: FourTuple,
    state: TcpState,

    // Send side.
    snd_tracker: SeqTracker,
    sendbuf: SendBuffer,
    /// Next stream offset to transmit for the first time.
    snd_cursor: u64,
    /// Peer-advertised receive window.
    snd_wnd: u32,
    syn_acked: bool,
    /// Our FIN has been handed to the output at least once.
    fin_sent: bool,
    /// Our FIN has been acknowledged.
    fin_acked: bool,

    // Receive side.
    rcv_tracker: Option<SeqTracker>,
    recvbuf: RecvBuffer,
    /// We have consumed the peer's FIN (it is reflected in our ACKs).
    peer_fin_consumed: bool,

    // Control.
    cc: CongestionControl,
    rto: RtoEstimator,
    rtx_deadline: Option<SimTime>,
    persist_deadline: Option<SimTime>,
    persist_backoff: u32,
    timewait_deadline: Option<SimTime>,
    /// RTT probe: (stream offset whose ack completes the sample, send time).
    rtt_probe: Option<(u64, SimTime)>,
    dup_acks: u32,
    retries: u32,
    ack_pending: bool,
    /// We emitted an RST (app abort) — ST-TCP's FIN/RST arbitration reads
    /// this.
    rst_generated: bool,

    out: VecDeque<TcpSegment>,
    events: VecDeque<ConnEvent>,
    stats: ConnStats,
}

impl TcpConn {
    /// Creates an actively opening connection and queues the SYN.
    pub fn client(cfg: TcpConfig, tuple: FourTuple, iss: SeqNum, now: SimTime) -> TcpConn {
        let mut c = TcpConn::raw(cfg, tuple, iss);
        c.state = TcpState::SynSent;
        let seg = c.make_segment(TcpFlags::SYN, iss, Bytes::new());
        c.push_out(seg, 0);
        c.arm_rtx(now);
        c
    }

    /// Creates a passively opened connection from a received SYN and
    /// queues the SYN-ACK.
    pub fn server_from_syn(
        cfg: TcpConfig,
        tuple: FourTuple,
        iss: SeqNum,
        syn: &TcpSegment,
        now: SimTime,
    ) -> TcpConn {
        debug_assert!(syn.flags.syn && !syn.flags.ack);
        let mut c = TcpConn::raw(cfg, tuple, iss);
        c.state = TcpState::SynRcvd;
        c.rcv_tracker = Some(SeqTracker::new(syn.seq));
        c.snd_wnd = syn.window as u32;
        let mut seg = c.make_segment(TcpFlags::SYN_ACK, iss, Bytes::new());
        seg.ack = c.rcv_ack_seq();
        c.push_out(seg, 0);
        c.arm_rtx(now);
        c
    }

    fn raw(cfg: TcpConfig, tuple: FourTuple, iss: SeqNum) -> TcpConn {
        let sendbuf = SendBuffer::new(cfg.send_buf);
        let recvbuf = RecvBuffer::new(cfg.recv_buf, cfg.hold_buf);
        let cc = CongestionControl::new(cfg.mss);
        let rto = RtoEstimator::new(cfg.rto);
        TcpConn {
            cfg,
            tuple,
            state: TcpState::Closed,
            snd_tracker: SeqTracker::new(iss),
            sendbuf,
            snd_cursor: 0,
            snd_wnd: 0,
            syn_acked: false,
            fin_sent: false,
            fin_acked: false,
            rcv_tracker: None,
            recvbuf,
            peer_fin_consumed: false,
            cc,
            rto,
            rtx_deadline: None,
            persist_deadline: None,
            persist_backoff: 0,
            timewait_deadline: None,
            rtt_probe: None,
            dup_acks: 0,
            retries: 0,
            ack_pending: false,
            rst_generated: false,
            out: VecDeque::new(),
            events: VecDeque::new(),
            stats: ConnStats::default(),
        }
    }

    /// Captures the portable state of a live connection for ST-TCP
    /// re-integration. Returns `None` for connections that are not worth
    /// transferring: closed, lingering in TIME-WAIT, aborted, or still
    /// mid-handshake (no receive anchor yet).
    pub fn snapshot(&self) -> Option<TcpSnapshot> {
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) || self.rst_generated {
            return None;
        }
        let peer_isn = self.rcv_tracker?.isn();
        let una = self.sendbuf.una();
        let unacked = self
            .sendbuf
            .slice(una, (self.sendbuf.written() - una) as usize);
        let read_pos = self.recvbuf.read_pos();
        let pending_len = (self.recvbuf.nxt() - read_pos) as usize;
        let pending = if pending_len == 0 {
            Bytes::new()
        } else {
            self.recvbuf
                .fetch(read_pos, pending_len)
                .expect("unread in-order bytes are always retained")
        };
        Some(TcpSnapshot {
            tuple: self.tuple,
            iss: self.isn(),
            peer_isn,
            snd_una: una,
            unacked,
            local_fin: self.sendbuf.fin_queued(),
            rcv_start: read_pos,
            pending,
            fin_offset: self.recvbuf.fin_offset(),
            peer_fin_consumed: self.peer_fin_consumed,
        })
    }

    /// Rebuilds one endpoint of a live connection from a re-integration
    /// snapshot — the ST-TCP replacement backup installing a
    /// tapping-but-suppressed replica mid-stream.
    ///
    /// The resumed connection behaves as if it had shadowed the stream
    /// from the start: the send side re-offers everything unacknowledged
    /// (the egress shim suppresses it), the receive side continues from
    /// the snapshot's read cursor with the unread bytes pre-injected, and
    /// an already-consumed client FIN is *not* re-announced.
    pub fn resume(cfg: TcpConfig, snap: &TcpSnapshot) -> TcpConn {
        let mut c = TcpConn::raw(cfg, snap.tuple, snap.iss);
        c.sendbuf = SendBuffer::resume(c.cfg.send_buf, snap.snd_una, &snap.unacked, snap.local_fin);
        c.snd_cursor = snap.snd_una;
        c.snd_wnd = u16::MAX as u32;
        c.syn_acked = true;
        c.rcv_tracker = Some(SeqTracker::new(snap.peer_isn));
        c.recvbuf = RecvBuffer::resume(
            c.cfg.recv_buf,
            c.cfg.hold_buf,
            snap.rcv_start,
            snap.fin_offset,
        );
        c.peer_fin_consumed = snap.peer_fin_consumed;
        c.state = match (snap.local_fin, snap.peer_fin_consumed) {
            (false, false) => TcpState::Established,
            (false, true) => TcpState::CloseWait,
            (true, false) => TcpState::FinWait1,
            (true, true) => TcpState::LastAck,
        };
        if !snap.pending.is_empty() {
            let outcome = c
                .recvbuf
                .receive(snap.rcv_start as i64, &snap.pending, false);
            debug_assert_eq!(outcome.newly_in_order, snap.pending.len() as u64);
            // The replica application has not read these bytes yet.
            c.events.push_back(ConnEvent::DataReadable);
        }
        c.maybe_consume_peer_fin();
        c
    }

    /// Turns the extended receive buffer on (or re-arms it) from the
    /// current receive position — the active server's half of
    /// re-integration, so a joining backup can fetch anything it misses
    /// from here on.
    pub fn enable_hold(&mut self, capacity: usize) {
        self.recvbuf.enable_hold(capacity);
    }

    // ----- introspection ---------------------------------------------------

    /// The connection's four-tuple.
    pub fn tuple(&self) -> FourTuple {
        self.tuple
    }

    /// Current protocol state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Our initial sequence number.
    pub fn isn(&self) -> SeqNum {
        self.snd_tracker.isn()
    }

    /// The peer's initial sequence number, once known.
    pub fn peer_isn(&self) -> Option<SeqNum> {
        self.rcv_tracker.map(|t| t.isn())
    }

    /// Contiguous bytes received from the peer — the paper's
    /// `LastByteReceived`.
    pub fn bytes_received(&self) -> u64 {
        self.recvbuf.nxt()
    }

    /// Highest cumulative byte the peer has acknowledged — the paper's
    /// `LastAckReceived`.
    pub fn last_ack_received(&self) -> u64 {
        self.sendbuf.una()
    }

    /// Bytes the application has written — the paper's
    /// `LastAppByteWritten`.
    pub fn app_bytes_written(&self) -> u64 {
        self.sendbuf.written()
    }

    /// Bytes the application has read — the paper's `LastAppByteRead`.
    pub fn app_bytes_read(&self) -> u64 {
        self.recvbuf.read_pos()
    }

    /// Bytes ready for the application to read.
    pub fn readable(&self) -> usize {
        self.recvbuf.readable()
    }

    /// Free space in the send buffer.
    pub fn send_capacity(&self) -> usize {
        self.sendbuf.free_space()
    }

    /// True once this side has generated a FIN (application close), sent
    /// or not — input to ST-TCP's FIN arbitration.
    pub fn fin_generated(&self) -> bool {
        self.sendbuf.fin_queued()
    }

    /// True once this side has generated an RST (application abort).
    pub fn rst_generated(&self) -> bool {
        self.rst_generated
    }

    /// True once the peer's FIN has been consumed in order.
    pub fn peer_fin_received(&self) -> bool {
        self.peer_fin_consumed
    }

    /// Transfer counters.
    pub fn stats(&self) -> ConnStats {
        self.stats
    }

    /// The current retransmission timeout (after backoff).
    pub fn current_rto(&self) -> SimDuration {
        self.rto.current_rto()
    }

    /// Bytes held for the backup (ST-TCP extended receive buffer usage).
    pub fn hold_used(&self) -> usize {
        self.recvbuf.hold_used()
    }

    /// Bytes parked out-of-order behind a receive hole.
    pub fn ooo_bytes(&self) -> usize {
        self.recvbuf.ooo_bytes()
    }

    /// True when the hold has exceeded its capacity.
    pub fn hold_overflow(&self) -> bool {
        self.recvbuf.hold_overflow()
    }

    /// The current congestion window, in bytes (metrics sampling).
    pub fn cwnd(&self) -> u64 {
        self.cc.cwnd()
    }

    /// Unacknowledged bytes occupying the send buffer.
    pub fn send_occupancy(&self) -> usize {
        self.sendbuf.buffered()
    }

    /// Bytes occupying the receive side: readable in-order data plus
    /// out-of-order segments parked behind a hole.
    pub fn recv_occupancy(&self) -> usize {
        self.recvbuf.readable() + self.recvbuf.ooo_bytes()
    }

    // ----- application API ---------------------------------------------------

    /// Writes application data; returns bytes accepted (bounded by buffer
    /// space). Data is transmitted as windows allow.
    pub fn send(&mut self, now: SimTime, data: &[u8]) -> usize {
        if !matches!(
            self.state,
            TcpState::SynSent | TcpState::SynRcvd | TcpState::Established | TcpState::CloseWait
        ) {
            return 0;
        }
        let n = self.sendbuf.write(data);
        self.fill_output(now);
        n
    }

    /// Reads up to `max` bytes of in-order data.
    pub fn recv(&mut self, max: usize) -> Bytes {
        let had = self.recvbuf.readable();
        let data = self.recvbuf.read(max);
        // Reading frees window space; let the peer know if we'd been tight.
        if had > 0 && self.recvbuf.window() > 0 {
            self.ack_pending = true;
        }
        data
    }

    /// Closes the sending side (queues a FIN after all written data).
    pub fn close(&mut self, now: SimTime) {
        match self.state {
            TcpState::Established | TcpState::SynRcvd | TcpState::SynSent => {
                self.sendbuf.queue_fin();
                self.state = TcpState::FinWait1;
            }
            TcpState::CloseWait => {
                self.sendbuf.queue_fin();
                self.state = TcpState::LastAck;
            }
            _ => return,
        }
        self.fill_output(now);
    }

    /// Aborts the connection: emits an RST and closes immediately.
    pub fn abort(&mut self, _now: SimTime) {
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            self.state = TcpState::Closed;
            return;
        }
        let seq = self.snd_tracker.to_seq(self.snd_cursor);
        let mut seg = self.make_segment(TcpFlags::RST, seq, Bytes::new());
        if self.rcv_tracker.is_some() {
            seg.flags.ack = true;
            seg.ack = self.rcv_ack_seq();
        }
        self.push_out(seg, 0);
        self.rst_generated = true;
        self.enter_closed(false);
    }

    /// Re-emits the RST of an aborted connection. An RST is a one-shot
    /// segment: unlike a FIN it is never regenerated by retransmission, so
    /// if the ST-TCP shim swallowed the original while the FIN/RST gate
    /// was holding, releasing the gate must re-issue it or the peer is
    /// left retransmitting into silence forever.
    pub fn reissue_rst(&mut self, _now: SimTime) {
        if !self.rst_generated {
            return;
        }
        let seq = self.snd_tracker.to_seq(self.snd_cursor);
        let mut seg = self.make_segment(TcpFlags::RST, seq, Bytes::new());
        if self.rcv_tracker.is_some() {
            seg.flags.ack = true;
            seg.ack = self.rcv_ack_seq();
        }
        self.push_out(seg, 0);
    }

    // ----- ST-TCP hooks ---------------------------------------------------

    /// Releases held receive bytes below stream offset `upto` (backup has
    /// confirmed them).
    pub fn release_hold_until(&mut self, upto: u64) {
        self.recvbuf.release_until(upto);
    }

    /// Copies up to `max` held bytes from offset `off` to re-supply a
    /// lagging backup. `None` if the range is no longer retained.
    pub fn fetch_held(&self, off: u64, max: usize) -> Option<Bytes> {
        self.recvbuf.fetch(off, max)
    }

    /// Injects bytes into the receive path as if they had arrived from the
    /// peer (missed-byte recovery on the backup). FIN-free by definition.
    pub fn inject_in_order(&mut self, off: u64, data: &Bytes) {
        let outcome = self.recvbuf.receive(off as i64, data, false);
        if outcome.newly_in_order > 0 {
            self.events.push_back(ConnEvent::DataReadable);
            self.maybe_consume_peer_fin();
        }
    }

    /// Rewinds the transmission cursor to the lowest unacknowledged
    /// offset and (re)streams from there, resetting backoff.
    ///
    /// This is the ST-TCP takeover primitive for a formerly *suppressed*
    /// connection: every segment between `snd.una` and the cursor was
    /// generated but dropped at the egress shim, so it was never on the
    /// wire and must be offered again — as ordinary ack-clocked
    /// transmissions, not one-MSS-per-RTO retransmissions. Bytes the old
    /// primary did deliver are acked away by the client's cumulative ACKs
    /// as they arrive.
    pub fn rewind_unacked(&mut self, now: SimTime) {
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            return;
        }
        self.snd_cursor = self.sendbuf.una();
        if self.fin_sent && !self.fin_acked {
            // The FIN is re-offered by the regular output path when the
            // cursor reaches the end of the stream again.
            self.fin_sent = false;
        }
        self.rto.reset_backoff();
        self.retries = 0;
        self.rtt_probe = None;
        self.ack_pending = true;
        self.fill_output(now);
        if self.has_unacked() {
            self.arm_rtx(now);
        }
    }

    /// Forces an immediate retransmission from the lowest unacked offset
    /// and resets backoff — used at ST-TCP takeover so the new primary
    /// re-offers data/FIN to the client without waiting out the current
    /// (possibly heavily backed-off) RTO.
    pub fn force_retransmit(&mut self, now: SimTime) {
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            return;
        }
        self.rto.reset_backoff();
        self.retransmit_head();
        // Also re-assert our ACK state toward the peer.
        self.ack_pending = true;
        self.fill_output(now);
        self.arm_rtx(now);
    }

    // ----- timer handling ---------------------------------------------------

    /// The earliest pending timer deadline, if any.
    pub fn next_deadline(&self) -> Option<SimTime> {
        [
            self.rtx_deadline,
            self.persist_deadline,
            self.timewait_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Fires any timers that are due at `now`.
    pub fn on_timer(&mut self, now: SimTime) {
        if let Some(t) = self.timewait_deadline {
            if now >= t {
                self.timewait_deadline = None;
                if self.state == TcpState::TimeWait {
                    self.enter_closed(true);
                }
            }
        }
        if let Some(t) = self.rtx_deadline {
            if now >= t {
                self.rtx_deadline = None;
                self.on_rtx_timeout(now);
            }
        }
        if let Some(t) = self.persist_deadline {
            if now >= t {
                self.persist_deadline = None;
                self.on_persist_timeout(now);
            }
        }
    }

    fn on_rtx_timeout(&mut self, now: SimTime) {
        if !self.has_unacked() {
            return; // everything got acked in the meantime
        }
        self.retries += 1;
        self.stats.rto_fires += 1;
        if self.retries > self.cfg.max_retries {
            self.events.push_back(ConnEvent::Reset);
            self.enter_closed(false);
            return;
        }
        let flight = self.flight();
        self.cc.on_timeout(flight);
        self.rto.on_timeout();
        self.rtt_probe = None; // Karn: no samples across retransmission
        self.retransmit_head();
        self.arm_rtx(now);
    }

    fn on_persist_timeout(&mut self, now: SimTime) {
        if self.snd_wnd > 0 || self.sendbuf.available_from(self.snd_cursor) == 0 {
            self.persist_backoff = 0;
            self.fill_output(now);
            return;
        }
        // Send a 1-byte window probe (does not advance the cursor).
        let payload = self.sendbuf.slice(self.snd_cursor, 1);
        if !payload.is_empty() {
            let seq = self.snd_tracker.to_seq(self.snd_cursor);
            let mut seg = self.make_segment(TcpFlags::ACK, seq, payload);
            seg.ack = self.rcv_ack_seq();
            self.push_out(seg, 0);
        }
        self.persist_backoff = (self.persist_backoff + 1).min(10);
        let interval = self
            .rto
            .current_rto()
            .saturating_mul(1u64 << self.persist_backoff.min(10))
            .min(SimDuration::from_secs(60));
        self.persist_deadline = Some(now + interval);
    }

    // ----- segment input ---------------------------------------------------

    /// Processes an inbound segment.
    pub fn on_segment(&mut self, now: SimTime, seg: &TcpSegment) {
        self.stats.segs_in += 1;
        if self.state == TcpState::Closed {
            return;
        }

        if seg.flags.rst {
            self.on_rst(seg);
            return;
        }

        match self.state {
            TcpState::SynSent => self.on_segment_syn_sent(now, seg),
            TcpState::TimeWait => {
                // Ack retransmitted FINs.
                if seg.flags.fin {
                    self.ack_pending = true;
                    self.emit_pure_ack();
                }
            }
            _ => self.on_segment_active(now, seg),
        }
    }

    fn on_rst(&mut self, seg: &TcpSegment) {
        // Accept the RST if it is plausibly in-window (or we have no
        // receive anchor yet).
        let acceptable = match self.rcv_tracker {
            None => true,
            Some(t) => {
                let off = t.to_offset(seg.seq, self.recvbuf.nxt());
                let nxt = self.recvbuf.nxt() as i64;
                let win = self.recvbuf.window() as i64;
                off >= nxt - 1 && off <= nxt + win
            }
        };
        if acceptable {
            self.events.push_back(ConnEvent::Reset);
            self.enter_closed(false);
        }
    }

    fn on_segment_syn_sent(&mut self, now: SimTime, seg: &TcpSegment) {
        if !(seg.flags.syn && seg.flags.ack) {
            return; // simultaneous open unsupported; ignore
        }
        // The SYN-ACK must ack our ISN+1.
        if seg.ack != self.isn() + 1 {
            return;
        }
        self.rcv_tracker = Some(SeqTracker::new(seg.seq));
        self.syn_acked = true;
        self.snd_wnd = seg.window as u32;
        self.retries = 0;
        self.rto.reset_backoff();
        self.disarm_rtx_if_idle();
        self.state = TcpState::Established;
        self.events.push_back(ConnEvent::Connected);
        self.ack_pending = true;
        // Handshake payload (rare) plus our ACK.
        if !seg.payload.is_empty() || seg.flags.fin {
            self.process_payload(seg);
        }
        self.fill_output(now);
    }

    fn on_segment_active(&mut self, now: SimTime, seg: &TcpSegment) {
        // A retransmitted SYN in SYN-RCVD: re-send the SYN-ACK.
        if self.state == TcpState::SynRcvd && seg.flags.syn && !seg.flags.ack {
            let iss = self.isn();
            let mut s = self.make_segment(TcpFlags::SYN_ACK, iss, Bytes::new());
            s.ack = self.rcv_ack_seq();
            self.push_out(s, 0);
            return;
        }

        if seg.flags.ack {
            self.process_ack(now, seg);
        }
        if !seg.payload.is_empty() || seg.flags.fin {
            self.process_payload(seg);
        }
        self.fill_output(now);
    }

    fn process_ack(&mut self, now: SimTime, seg: &TcpSegment) {
        let una = self.sendbuf.una();
        let ack_off = self.snd_tracker.to_offset(seg.ack, una);
        self.snd_wnd = seg.window as u32;

        if ack_off < 0 {
            return; // acks from before our ISN: garbage
        }
        let ack_off = ack_off as u64;

        // Upper bound: nothing beyond our FIN (+1) can be acked.
        let limit = match self.sendbuf.fin_offset() {
            Some(f) if self.fin_sent => f + 1,
            _ => self.sendbuf.written(),
        };
        if ack_off > limit {
            return; // acking data we never sent
        }

        if self.state == TcpState::SynRcvd {
            self.syn_acked = true;
            self.retries = 0;
            self.state = TcpState::Established;
            self.events.push_back(ConnEvent::Connected);
        }

        let fin_newly_acked = self.fin_sent
            && !self.fin_acked
            && self.sendbuf.fin_offset().is_some_and(|f| ack_off == f + 1);

        let data_ack_to = ack_off.min(self.sendbuf.written());
        let newly_acked = self.sendbuf.ack_to(data_ack_to);

        if newly_acked > 0 || fin_newly_acked {
            self.retries = 0;
            self.dup_acks = 0;
            self.cc.on_ack(newly_acked);
            // RTT sample (Karn-safe: probe cleared on retransmission).
            if let Some((probe_off, sent_at)) = self.rtt_probe {
                if self.sendbuf.una() >= probe_off {
                    self.rto.on_sample(now.saturating_since(sent_at));
                    self.rtt_probe = None;
                }
            }
            self.rto.reset_backoff();
            // Cursor can never trail una (window probes may be acked).
            if self.snd_cursor < self.sendbuf.una() {
                self.snd_cursor = self.sendbuf.una();
            }
            if self.has_unacked() {
                self.arm_rtx(now);
            } else {
                self.rtx_deadline = None;
            }
        } else if seg.payload.is_empty()
            && !seg.flags.syn
            && !seg.flags.fin
            && ack_off == una
            && self.flight() > 0
        {
            self.dup_acks += 1;
            if self.dup_acks == 3 {
                self.stats.fast_retransmits += 1;
                self.cc.on_fast_retransmit(self.flight());
                self.rtt_probe = None;
                self.retransmit_head();
                self.arm_rtx(now);
            }
        }

        if fin_newly_acked {
            self.fin_acked = true;
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => self.enter_time_wait(now),
                TcpState::LastAck => self.enter_closed(true),
                _ => {}
            }
        }

        // Window reopened: cancel persist probing.
        if self.snd_wnd > 0 {
            self.persist_deadline = None;
            self.persist_backoff = 0;
        }
    }

    fn process_payload(&mut self, seg: &TcpSegment) {
        let Some(tracker) = self.rcv_tracker else {
            return;
        };
        let off = tracker.to_offset(seg.seq, self.recvbuf.nxt());
        let before_nxt = self.recvbuf.nxt();
        let outcome = self.recvbuf.receive(off, &seg.payload, seg.flags.fin);
        if outcome.newly_in_order > 0 {
            self.events.push_back(ConnEvent::DataReadable);
        }
        // Any data-bearing or FIN segment deserves an ACK — including
        // duplicates (the peer is clearly missing our previous ACK).
        if !seg.payload.is_empty() || seg.flags.fin {
            self.ack_pending = true;
        }
        let _ = before_nxt;
        self.maybe_consume_peer_fin();
    }

    fn maybe_consume_peer_fin(&mut self) {
        if self.peer_fin_consumed || !self.recvbuf.fin_reached() {
            return;
        }
        self.peer_fin_consumed = true;
        self.ack_pending = true;
        self.events.push_back(ConnEvent::PeerFin);
        match self.state {
            TcpState::SynRcvd | TcpState::Established => self.state = TcpState::CloseWait,
            TcpState::FinWait1 => {
                if self.fin_acked {
                    self.enter_time_wait_deferred();
                } else {
                    self.state = TcpState::Closing;
                }
            }
            TcpState::FinWait2 => self.enter_time_wait_deferred(),
            _ => {}
        }
    }

    // TIME-WAIT entry where `now` is unavailable: the deadline is armed on
    // the next fill_output/on_timer interaction via `timewait_pending`.
    // To keep things simple we instead record entry and let the endpoint's
    // next `on_timer`/`poll` call arm it; practically we arm with the next
    // fill_output call, which always happens in the same dispatch.
    fn enter_time_wait_deferred(&mut self) {
        self.state = TcpState::TimeWait;
    }

    fn enter_time_wait(&mut self, now: SimTime) {
        self.state = TcpState::TimeWait;
        self.timewait_deadline = Some(now + self.cfg.time_wait);
        self.rtx_deadline = None;
        self.persist_deadline = None;
    }

    fn enter_closed(&mut self, graceful: bool) {
        self.state = TcpState::Closed;
        self.rtx_deadline = None;
        self.persist_deadline = None;
        self.timewait_deadline = None;
        if graceful {
            self.events.push_back(ConnEvent::Closed);
        }
    }

    // ----- output ---------------------------------------------------

    /// Drains the next outbound segment, if any.
    pub fn poll_segment(&mut self) -> Option<TcpSegment> {
        self.out.pop_front()
    }

    /// Drains the next application-visible event, if any.
    pub fn poll_event(&mut self) -> Option<ConnEvent> {
        self.events.pop_front()
    }

    /// Generates whatever output current state and windows permit: new
    /// data segments, a FIN, and/or a pure ACK. Arms timers as needed.
    pub fn fill_output(&mut self, now: SimTime) {
        // Arm a deferred TIME-WAIT deadline if needed.
        if self.state == TcpState::TimeWait && self.timewait_deadline.is_none() {
            self.timewait_deadline = Some(now + self.cfg.time_wait);
            self.rtx_deadline = None;
            self.persist_deadline = None;
        }

        let can_send_data = matches!(
            self.state,
            TcpState::Established
                | TcpState::CloseWait
                | TcpState::FinWait1
                | TcpState::Closing
                | TcpState::LastAck
        );

        let mut emitted = false;
        if can_send_data && self.syn_acked {
            loop {
                let flight = self.flight();
                let cc_room = self.cc.send_allowance(flight);
                let wnd_room = (self.snd_wnd as u64).saturating_sub(flight);
                let room = cc_room.min(wnd_room);
                let avail = self.sendbuf.available_from(self.snd_cursor) as u64;
                let n = room.min(avail).min(self.cfg.mss as u64);
                if n == 0 {
                    // Zero window with data pending: arm persist probing.
                    if avail > 0 && wnd_room == 0 && self.persist_deadline.is_none() {
                        self.persist_deadline = Some(now + self.rto.current_rto());
                    }
                    break;
                }
                let payload = self.sendbuf.slice(self.snd_cursor, n as usize);
                let is_last_data = self.snd_cursor + n == self.sendbuf.written();
                let fin_here = is_last_data && self.sendbuf.fin_queued();
                let seq = self.snd_tracker.to_seq(self.snd_cursor);
                let mut flags = TcpFlags::ACK;
                flags.psh = is_last_data;
                flags.fin = fin_here;
                let mut seg = self.make_segment(flags, seq, payload);
                seg.ack = self.rcv_ack_seq();
                self.stats.bytes_sent += n;
                self.push_out(seg, n);
                self.snd_cursor += n;
                if fin_here {
                    self.fin_sent = true;
                }
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((self.snd_cursor, now));
                }
                self.arm_rtx(now);
                self.ack_pending = false;
                emitted = true;
            }

            // A data-less FIN (everything already transmitted).
            if self.sendbuf.fin_queued()
                && !self.fin_sent
                && self.snd_cursor == self.sendbuf.written()
            {
                let seq = self.snd_tracker.to_seq(self.snd_cursor);
                let mut seg = self.make_segment(TcpFlags::FIN_ACK, seq, Bytes::new());
                seg.ack = self.rcv_ack_seq();
                self.push_out(seg, 0);
                self.fin_sent = true;
                self.arm_rtx(now);
                self.ack_pending = false;
                emitted = true;
            }
        }

        if self.ack_pending && !emitted && self.rcv_tracker.is_some() {
            self.emit_pure_ack();
        }
    }

    fn emit_pure_ack(&mut self) {
        let seq = self
            .snd_tracker
            .to_seq(self.snd_cursor.max(self.sendbuf.una()));
        let mut seg = self.make_segment(TcpFlags::ACK, seq, Bytes::new());
        seg.ack = self.rcv_ack_seq();
        self.push_out(seg, 0);
        self.ack_pending = false;
    }

    /// Retransmits the head of the unacked region (or the SYN/SYN-ACK/FIN
    /// as the state demands).
    fn retransmit_head(&mut self) {
        match self.state {
            TcpState::SynSent => {
                let iss = self.isn();
                let seg = self.make_segment(TcpFlags::SYN, iss, Bytes::new());
                self.push_out(seg, 0);
                return;
            }
            TcpState::SynRcvd => {
                let iss = self.isn();
                let mut seg = self.make_segment(TcpFlags::SYN_ACK, iss, Bytes::new());
                seg.ack = self.rcv_ack_seq();
                self.push_out(seg, 0);
                return;
            }
            _ => {}
        }
        let una = self.sendbuf.una();
        let payload = self.sendbuf.slice(una, self.cfg.mss as usize);
        if payload.is_empty() {
            if self.fin_sent && !self.fin_acked {
                // Re-send the FIN.
                let seq = self.snd_tracker.to_seq(self.sendbuf.written());
                let mut seg = self.make_segment(TcpFlags::FIN_ACK, seq, Bytes::new());
                seg.ack = self.rcv_ack_seq();
                self.push_out(seg, 0);
            }
            return;
        }
        let end = una + payload.len() as u64;
        let fin_here = self.fin_sent && self.sendbuf.fin_queued() && end == self.sendbuf.written();
        let seq = self.snd_tracker.to_seq(una);
        let mut flags = TcpFlags::ACK;
        flags.fin = fin_here;
        let n = payload.len() as u64;
        let mut seg = self.make_segment(flags, seq, payload);
        if self.rcv_tracker.is_some() {
            seg.ack = self.rcv_ack_seq();
        } else {
            seg.flags.ack = false;
        }
        self.stats.bytes_retransmitted += n;
        self.push_out(seg, 0);
    }

    // ----- helpers ---------------------------------------------------

    /// Unacked payload bytes in flight (first transmissions only).
    fn flight(&self) -> u64 {
        self.snd_cursor - self.sendbuf.una()
    }

    /// Anything (SYN, data, FIN) outstanding and unacknowledged?
    fn has_unacked(&self) -> bool {
        match self.state {
            TcpState::SynSent | TcpState::SynRcvd => true,
            _ => self.flight() > 0 || (self.fin_sent && !self.fin_acked),
        }
    }

    fn arm_rtx(&mut self, now: SimTime) {
        self.rtx_deadline = Some(now + self.rto.current_rto());
    }

    fn disarm_rtx_if_idle(&mut self) {
        if !self.has_unacked() {
            self.rtx_deadline = None;
        }
    }

    /// The ACK value reflecting everything consumed in order, including
    /// the peer's SYN and (once reached) FIN.
    fn rcv_ack_seq(&self) -> SeqNum {
        let t = self.rcv_tracker.expect("ack requires a receive anchor");
        let base = t.to_seq(self.recvbuf.nxt());
        if self.recvbuf.fin_reached() {
            base + 1
        } else {
            base
        }
    }

    fn make_segment(&self, flags: TcpFlags, seq: SeqNum, payload: Bytes) -> TcpSegment {
        TcpSegment {
            src_port: self.tuple.local.1,
            dst_port: self.tuple.remote.1,
            seq,
            ack: SeqNum(0),
            flags,
            window: self.recvbuf.window().min(u16::MAX as usize) as u16,
            payload,
        }
    }

    fn push_out(&mut self, seg: TcpSegment, _new_bytes: u64) {
        self.stats.segs_out += 1;
        self.out.push_back(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    const CLIENT_ISS: SeqNum = SeqNum(1_000);
    const SERVER_ISS: SeqNum = SeqNum(9_000_000);

    fn tuple_client() -> FourTuple {
        FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 40_000),
            remote: (Ipv4Addr::new(10, 0, 0, 100), 80),
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    /// A two-endpoint harness that shuttles segments instantly.
    struct Pair {
        client: TcpConn,
        server: Option<TcpConn>,
        now: SimTime,
    }

    impl Pair {
        fn new() -> Pair {
            let client = TcpConn::client(
                TcpConfig::default(),
                tuple_client(),
                CLIENT_ISS,
                SimTime::ZERO,
            );
            Pair {
                client,
                server: None,
                now: SimTime::ZERO,
            }
        }

        /// Exchanges segments until both sides go quiet.
        fn pump(&mut self) {
            loop {
                let mut moved = false;
                while let Some(seg) = self.client.poll_segment() {
                    moved = true;
                    match &mut self.server {
                        Some(s) => s.on_segment(self.now, &seg),
                        None if seg.flags.syn && !seg.flags.ack => {
                            let s = TcpConn::server_from_syn(
                                TcpConfig::default(),
                                tuple_client().flipped(),
                                SERVER_ISS,
                                &seg,
                                self.now,
                            );
                            self.server = Some(s);
                        }
                        None => {}
                    }
                }
                if let Some(s) = &mut self.server {
                    while let Some(seg) = s.poll_segment() {
                        moved = true;
                        self.client.on_segment(self.now, &seg);
                    }
                }
                if !moved {
                    break;
                }
            }
        }

        fn advance(&mut self, to: SimTime) {
            self.now = to;
            self.client.on_timer(to);
            if let Some(s) = &mut self.server {
                s.on_timer(to);
            }
        }

        fn established() -> Pair {
            let mut p = Pair::new();
            p.pump();
            assert_eq!(p.client.state(), TcpState::Established);
            assert_eq!(p.server.as_ref().unwrap().state(), TcpState::Established);
            p
        }

        fn server(&mut self) -> &mut TcpConn {
            self.server.as_mut().unwrap()
        }
    }

    #[test]
    fn three_way_handshake() {
        let mut p = Pair::new();
        assert_eq!(p.client.state(), TcpState::SynSent);
        p.pump();
        assert_eq!(p.client.state(), TcpState::Established);
        let s = p.server();
        assert_eq!(s.state(), TcpState::Established);
        // ISNs visible on both ends.
        assert_eq!(s.peer_isn(), Some(CLIENT_ISS));
        assert_eq!(s.isn(), SERVER_ISS);
    }

    #[test]
    fn handshake_emits_connected_events() {
        let mut p = Pair::established();
        let mut evs = Vec::new();
        while let Some(e) = p.client.poll_event() {
            evs.push(e);
        }
        assert!(evs.contains(&ConnEvent::Connected));
        let mut sevs = Vec::new();
        while let Some(e) = p.server().poll_event() {
            sevs.push(e);
        }
        assert!(sevs.contains(&ConnEvent::Connected));
    }

    #[test]
    fn data_transfer_both_directions() {
        let mut p = Pair::established();
        assert_eq!(p.client.send(p.now, b"hello"), 5);
        p.pump();
        let s = p.server();
        assert_eq!(s.readable(), 5);
        assert_eq!(s.recv(100).as_ref(), b"hello");
        let n = s.send(t(0), b"world!");
        assert_eq!(n, 6);
        p.pump();
        assert_eq!(p.client.recv(100).as_ref(), b"world!");
    }

    #[test]
    fn large_transfer_respects_mss_segmentation() {
        let mut p = Pair::established();
        let data = vec![7u8; 10_000];
        assert_eq!(p.client.send(p.now, &data), 10_000);
        p.pump();
        let got = p.server().recv(20_000);
        assert_eq!(got.len(), 10_000);
        assert!(got.iter().all(|&b| b == 7));
        // More than one segment was needed.
        assert!(p.client.stats().segs_out >= 7);
    }

    #[test]
    fn counters_track_directions() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"abc");
        p.pump();
        assert_eq!(p.client.app_bytes_written(), 3);
        assert_eq!(p.server().bytes_received(), 3);
        assert_eq!(p.client.last_ack_received(), 3);
        assert_eq!(p.server().app_bytes_read(), 0);
        let _ = p.server().recv(10);
        assert_eq!(p.server().app_bytes_read(), 3);
    }

    #[test]
    fn graceful_close_full_cycle() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"bye");
        p.client.close(p.now);
        assert_eq!(p.client.state(), TcpState::FinWait1);
        p.pump();
        let s = p.server();
        assert_eq!(s.recv(10).as_ref(), b"bye");
        assert!(s.peer_fin_received());
        assert_eq!(s.state(), TcpState::CloseWait);
        s.close(t(0));
        p.pump();
        assert_eq!(p.server().state(), TcpState::Closed);
        assert_eq!(p.client.state(), TcpState::TimeWait);
        // TIME-WAIT expires.
        p.advance(t(5_000));
        assert_eq!(p.client.state(), TcpState::Closed);
    }

    #[test]
    fn fin_events_fire() {
        let mut p = Pair::established();
        p.client.close(p.now);
        p.pump();
        let mut evs = Vec::new();
        while let Some(e) = p.server().poll_event() {
            evs.push(e);
        }
        assert!(evs.contains(&ConnEvent::PeerFin));
    }

    #[test]
    fn abort_sends_rst_and_peer_resets() {
        let mut p = Pair::established();
        p.client.abort(p.now);
        assert!(p.client.rst_generated());
        assert_eq!(p.client.state(), TcpState::Closed);
        p.pump();
        assert_eq!(p.server().state(), TcpState::Closed);
        let mut evs = Vec::new();
        while let Some(e) = p.server().poll_event() {
            evs.push(e);
        }
        assert!(evs.contains(&ConnEvent::Reset));
    }

    #[test]
    fn lost_segment_is_retransmitted_on_timeout() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"important");
        // Drop the data segment.
        let seg = p.client.poll_segment().unwrap();
        assert_eq!(seg.payload.as_ref(), b"important");
        assert!(p.client.poll_segment().is_none());
        // Fire the retransmission timer.
        let deadline = p.client.next_deadline().unwrap();
        p.advance(deadline);
        p.pump();
        assert_eq!(p.server().recv(100).as_ref(), b"important");
        assert_eq!(p.client.stats().rto_fires, 1);
        assert!(p.client.stats().bytes_retransmitted >= 9);
    }

    #[test]
    fn rto_backoff_doubles_between_retries() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"x");
        let _ = p.client.poll_segment(); // drop
        let d1 = p.client.next_deadline().unwrap();
        p.client.on_timer(d1);
        let _ = p.client.poll_segment(); // drop retransmission
        let d2 = p.client.next_deadline().unwrap();
        p.client.on_timer(d2);
        let _ = p.client.poll_segment(); // drop again
        let d3 = p.client.next_deadline().unwrap();
        let gap1 = d2 - d1;
        let gap2 = d3 - d2;
        assert_eq!(gap2, gap1 * 2, "exponential backoff");
    }

    #[test]
    fn retry_exhaustion_resets_connection() {
        let cfg = TcpConfig {
            max_retries: 3,
            ..Default::default()
        };
        let mut c = TcpConn::client(cfg, tuple_client(), CLIENT_ISS, SimTime::ZERO);
        let _ = c.poll_segment(); // SYN never answered
        for _ in 0..10 {
            if let Some(d) = c.next_deadline() {
                c.on_timer(d);
                let _ = c.poll_segment();
            }
        }
        assert_eq!(c.state(), TcpState::Closed);
        let mut evs = Vec::new();
        while let Some(e) = c.poll_event() {
            evs.push(e);
        }
        assert!(evs.contains(&ConnEvent::Reset));
    }

    #[test]
    fn out_of_order_segments_reassemble() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"aaaa");
        let first = p.client.poll_segment().unwrap();
        let _ = p.client.send(p.now, b"bbbb");
        let second = p.client.poll_segment().unwrap();
        // Deliver in reverse order.
        let s = p.server();
        s.on_segment(t(0), &second);
        assert_eq!(s.readable(), 0);
        s.on_segment(t(0), &first);
        assert_eq!(s.recv(100).as_ref(), b"aaaabbbb");
    }

    #[test]
    fn duplicate_acks_trigger_fast_retransmit() {
        let mut p = Pair::established();
        // Warm up so cwnd allows multiple segments at once.
        for _ in 0..20 {
            let _ = p.client.send(p.now, &vec![1u8; 1460]);
            p.pump();
            let _ = p.server().recv(1 << 20);
        }
        // Send 5 segments, drop the first, deliver the rest.
        let _ = p.client.send(p.now, &vec![2u8; 1460 * 5]);
        let lost = p.client.poll_segment().unwrap();
        let mut segs = Vec::new();
        while let Some(s) = p.client.poll_segment() {
            segs.push(s);
        }
        assert!(
            segs.len() >= 3,
            "need ≥3 following segments, got {}",
            segs.len()
        );
        for s in &segs {
            p.server().on_segment(t(1), s);
        }
        // Server generated dup acks; deliver them to the client.
        let mut acks = Vec::new();
        while let Some(a) = p.server().poll_segment() {
            acks.push(a);
        }
        assert!(acks.len() >= 3);
        for a in &acks {
            p.client.on_segment(t(1), a);
        }
        assert_eq!(p.client.stats().fast_retransmits, 1);
        // The fast retransmission fills the hole.
        let rtx = p.client.poll_segment().unwrap();
        assert_eq!(rtx.seq, lost.seq);
        p.server().on_segment(t(1), &rtx);
        let _ = p.server().recv(1 << 20);
        assert_eq!(p.server().bytes_received(), p.client.app_bytes_written());
    }

    #[test]
    fn zero_window_stalls_then_probe_resumes() {
        // Tiny server receive buffer, app never reads.
        let mut p = Pair::new();
        p.pump();
        // Replace server with a tiny-window one: simplest is to use default
        // pair and fill the 64 KiB window.
        let big = vec![3u8; 70_000];
        let _ = p.client.send(p.now, &big);
        p.pump();
        // Window is now zero (server app read nothing).
        let s = p.server.as_ref().unwrap();
        assert!(s.recvbuf.window() == 0);
        let received = s.bytes_received();
        assert!(received >= 64 * 1024 - 1);
        // Client has unsent data pending and a persist timer armed.
        assert!(p.client.persist_deadline.is_some() || p.client.flight() > 0);
        // Server app reads; window reopens; ack propagates.
        let _ = p.server().recv(1 << 20);
        // Fire the client's persist/rtx machinery until data flows again.
        for _ in 0..50 {
            if let Some(d) = p.client.next_deadline() {
                p.advance(d);
                p.pump();
            }
            if p.server.as_ref().unwrap().bytes_received() == 70_000 {
                break;
            }
            let _ = p.server().recv(1 << 20);
        }
        assert_eq!(p.server.as_ref().unwrap().bytes_received(), 70_000);
    }

    #[test]
    fn hold_buffer_serves_fetch_and_overflow() {
        let cfg = TcpConfig {
            hold_buf: Some(8),
            ..Default::default()
        };
        let mut client = TcpConn::client(
            TcpConfig::default(),
            tuple_client(),
            CLIENT_ISS,
            SimTime::ZERO,
        );
        let syn = client.poll_segment().unwrap();
        let mut server = TcpConn::server_from_syn(
            cfg,
            tuple_client().flipped(),
            SERVER_ISS,
            &syn,
            SimTime::ZERO,
        );
        let synack = server.poll_segment().unwrap();
        client.on_segment(SimTime::ZERO, &synack);
        while let Some(s) = client.poll_segment() {
            server.on_segment(SimTime::ZERO, &s);
        }
        let _ = client.send(SimTime::ZERO, b"0123456789ab");
        while let Some(s) = client.poll_segment() {
            server.on_segment(SimTime::ZERO, &s);
        }
        // App reads everything, but hold keeps it.
        let _ = server.recv(100);
        assert_eq!(server.hold_used(), 12);
        assert!(server.hold_overflow());
        assert_eq!(server.fetch_held(4, 4).unwrap().as_ref(), b"4567");
        server.release_hold_until(10);
        assert_eq!(server.hold_used(), 2);
        assert!(!server.hold_overflow());
        assert!(server.fetch_held(4, 4).is_none());
    }

    #[test]
    fn inject_in_order_fills_gap() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"abcd");
        let first = p.client.poll_segment().unwrap();
        let _ = p.client.send(p.now, b"efgh");
        let second = p.client.poll_segment().unwrap();
        // Lose the first; deliver the second (out of order).
        let s = p.server();
        s.on_segment(t(0), &second);
        assert_eq!(s.readable(), 0);
        // ST-TCP recovery injects the missing bytes.
        s.inject_in_order(0, &first.payload);
        assert_eq!(s.recv(100).as_ref(), b"abcdefgh");
    }

    #[test]
    fn rewind_unacked_restreams_suppressed_data() {
        // Model the ST-TCP backup: data "sent" (cursor advanced) but every
        // segment dropped; after takeover, rewind must re-offer the whole
        // unacked region as ordinary transmissions.
        let mut p = Pair::established();
        let payload = vec![9u8; 8 * 1460];
        let _ = p.client.send(p.now, &payload);
        // Suppress: throw away everything the client generated.
        while p.client.poll_segment().is_some() {}
        p.client.rewind_unacked(t(1));
        // The data streams again (cwnd-limited, so possibly over multiple
        // ack exchanges).
        for _ in 0..10 {
            p.pump();
            if p.server().bytes_received() == payload.len() as u64 {
                break;
            }
        }
        assert_eq!(p.server().recv(1 << 20).len(), payload.len());
    }

    #[test]
    fn rewind_unacked_reoffers_unacked_fin() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"tail");
        p.client.close(p.now);
        while p.client.poll_segment().is_some() {} // all suppressed
        p.client.rewind_unacked(t(1));
        p.pump();
        let s = p.server();
        assert_eq!(s.recv(100).as_ref(), b"tail");
        assert!(s.peer_fin_received(), "FIN was not re-offered");
    }

    #[test]
    fn force_retransmit_resends_head_immediately() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"data!");
        let _ = p.client.poll_segment(); // lost
        assert!(p.client.poll_segment().is_none());
        p.client.force_retransmit(t(1));
        let seg = p.client.poll_segment().unwrap();
        assert_eq!(seg.payload.as_ref(), b"data!");
    }

    #[test]
    fn simultaneous_close_reaches_time_wait_or_closed() {
        let mut p = Pair::established();
        p.client.close(p.now);
        p.server().close(t(0));
        // Exchange the crossed FINs.
        p.pump();
        let cs = p.client.state();
        let ss = p.server().state();
        for s in [cs, ss] {
            assert!(
                matches!(s, TcpState::TimeWait | TcpState::Closed),
                "state {s}"
            );
        }
    }

    #[test]
    fn syn_retransmission_answered_in_syn_rcvd() {
        let mut client = TcpConn::client(
            TcpConfig::default(),
            tuple_client(),
            CLIENT_ISS,
            SimTime::ZERO,
        );
        let syn = client.poll_segment().unwrap();
        let mut server = TcpConn::server_from_syn(
            TcpConfig::default(),
            tuple_client().flipped(),
            SERVER_ISS,
            &syn,
            SimTime::ZERO,
        );
        let synack1 = server.poll_segment().unwrap();
        // SYN-ACK lost; the client retransmits its SYN.
        let d = client.next_deadline().unwrap();
        client.on_timer(d);
        let syn2 = client.poll_segment().unwrap();
        assert!(syn2.flags.syn);
        server.on_segment(d, &syn2);
        let synack2 = server.poll_segment().unwrap();
        assert_eq!(synack2.seq, synack1.seq, "same ISS on re-send");
        client.on_segment(d, &synack2);
        assert_eq!(client.state(), TcpState::Established);
    }

    #[test]
    fn window_advertisement_reflects_unread_data() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, &vec![1u8; 10_000]);
        p.pump();
        // Ask the server to emit an ack and inspect its window.
        let _ = p.client.send(p.now, b"x");
        let mut seg = p.client.poll_segment().unwrap();
        p.server().on_segment(t(0), &seg);
        let ack = p.server().poll_segment().unwrap();
        assert!(ack.window < (64 * 1024_u32 - 10_000) as u16 + 1);
        // After the app reads, the next ack advertises more.
        let _ = p.server().recv(1 << 20);
        let _ = p.client.send(p.now, b"y");
        seg = p.client.poll_segment().unwrap();
        p.server().on_segment(t(0), &seg);
        let ack2 = p.server().poll_segment().unwrap();
        assert!(ack2.window > ack.window);
    }

    #[test]
    fn send_refused_when_closed() {
        let mut p = Pair::established();
        p.client.abort(p.now);
        assert_eq!(p.client.send(p.now, b"nope"), 0);
        assert_eq!(p.client.recv(10).len(), 0);
    }

    #[test]
    fn half_close_server_keeps_sending() {
        // Client closes its sending side; the server continues streaming
        // (the classic half-close), then closes.
        let mut p = Pair::established();
        p.client.close(p.now);
        p.pump();
        let s = p.server();
        assert_eq!(s.state(), TcpState::CloseWait);
        assert_eq!(s.send(t(0), b"still talking"), 13);
        p.pump();
        assert_eq!(p.client.recv(100).as_ref(), b"still talking");
        assert_eq!(p.client.state(), TcpState::FinWait2);
        p.server().close(t(0));
        p.pump();
        assert_eq!(p.server().state(), TcpState::Closed);
        assert_eq!(p.client.state(), TcpState::TimeWait);
    }

    #[test]
    fn time_wait_acks_retransmitted_fin() {
        let mut p = Pair::established();
        p.client.close(p.now);
        p.pump();
        // Capture the server's FIN for replay.
        p.server().close(t(0));
        let server_fin = {
            let s = p.server();
            let seg = s.poll_segment().unwrap();
            assert!(seg.flags.fin);
            seg
        };
        p.client.on_segment(t(0), &server_fin);
        while let Some(seg) = p.client.poll_segment() {
            p.server().on_segment(t(0), &seg);
        }
        assert_eq!(p.client.state(), TcpState::TimeWait);
        // The server's FIN is retransmitted (its ack was lost, say): the
        // TIME-WAIT client must re-ack it.
        p.client.on_segment(t(1), &server_fin);
        let ack = p.client.poll_segment().expect("re-ack from TIME-WAIT");
        assert!(ack.flags.ack && !ack.flags.fin);
    }

    #[test]
    fn data_arriving_in_fin_wait_is_still_delivered() {
        // We close first but the peer has data in flight: it must still be
        // readable.
        let mut p = Pair::established();
        p.client.close(p.now);
        // Deliver our FIN later; first the server sends data.
        let fin = p.client.poll_segment().unwrap();
        let _ = p.server().send(t(0), b"late data");
        let data = p.server().poll_segment().unwrap();
        p.client.on_segment(t(0), &data);
        assert_eq!(p.client.recv(100).as_ref(), b"late data");
        p.server().on_segment(t(0), &fin);
        p.pump();
    }

    #[test]
    fn duplicate_fin_is_idempotent() {
        let mut p = Pair::established();
        p.client.close(p.now);
        let fin = p.client.poll_segment().unwrap();
        let s = p.server();
        s.on_segment(t(0), &fin);
        s.on_segment(t(0), &fin);
        s.on_segment(t(0), &fin);
        assert_eq!(s.state(), TcpState::CloseWait);
        let mut fins = 0;
        while let Some(e) = s.poll_event() {
            if e == ConnEvent::PeerFin {
                fins += 1;
            }
        }
        assert_eq!(fins, 1, "PeerFin event must fire exactly once");
    }

    #[test]
    fn old_duplicate_segment_reacked_not_redelivered() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"abc");
        let seg = p.client.poll_segment().unwrap();
        p.server().on_segment(t(0), &seg);
        assert_eq!(p.server().recv(10).as_ref(), b"abc");
        // Replay the same segment: no new data, but an ACK is emitted so a
        // peer that missed the first ACK resynchronizes.
        while p.server().poll_segment().is_some() {}
        p.server().on_segment(t(1), &seg);
        assert_eq!(p.server().recv(10).len(), 0);
        let ack = p
            .server()
            .poll_segment()
            .expect("duplicate deserves an ack");
        assert!(ack.flags.ack);
        assert!(ack.payload.is_empty());
    }

    #[test]
    fn rst_in_syn_sent_kills_connection() {
        let mut c = TcpConn::client(
            TcpConfig::default(),
            tuple_client(),
            CLIENT_ISS,
            SimTime::ZERO,
        );
        let syn = c.poll_segment().unwrap();
        let rst = TcpSegment {
            src_port: syn.dst_port,
            dst_port: syn.src_port,
            seq: SeqNum(0),
            ack: syn.seq + 1,
            flags: TcpFlags {
                rst: true,
                ack: true,
                ..Default::default()
            },
            window: 0,
            payload: Bytes::new(),
        };
        c.on_segment(SimTime::ZERO, &rst);
        assert_eq!(c.state(), TcpState::Closed);
    }

    #[test]
    fn out_of_window_rst_is_ignored() {
        let mut p = Pair::established();
        // An RST far outside the receive window must not kill the conn
        // (blind-reset protection).
        let bogus = TcpSegment {
            src_port: 80,
            dst_port: 40_000,
            seq: p.server().isn() + 500_000,
            ack: SeqNum(0),
            flags: TcpFlags::RST,
            window: 0,
            payload: Bytes::new(),
        };
        p.client.on_segment(t(0), &bogus);
        assert_eq!(p.client.state(), TcpState::Established);
    }

    #[test]
    fn hold_fetch_across_partial_release_and_reads() {
        let cfg = TcpConfig {
            hold_buf: Some(1 << 20),
            ..Default::default()
        };
        let mut client = TcpConn::client(
            TcpConfig::default(),
            tuple_client(),
            CLIENT_ISS,
            SimTime::ZERO,
        );
        let syn = client.poll_segment().unwrap();
        let mut server = TcpConn::server_from_syn(
            cfg,
            tuple_client().flipped(),
            SERVER_ISS,
            &syn,
            SimTime::ZERO,
        );
        while let Some(s) = server.poll_segment() {
            client.on_segment(SimTime::ZERO, &s);
        }
        while let Some(s) = client.poll_segment() {
            server.on_segment(SimTime::ZERO, &s);
        }
        let _ = client.send(SimTime::ZERO, b"0123456789");
        while let Some(s) = client.poll_segment() {
            server.on_segment(SimTime::ZERO, &s);
        }
        let _ = server.recv(4); // app read 4
        server.release_hold_until(2); // backup confirmed 2
                                      // Fetchable region is [2, 10): reads don't affect it.
        assert_eq!(server.fetch_held(2, 100).unwrap().as_ref(), b"23456789");
        assert_eq!(server.fetch_held(6, 2).unwrap().as_ref(), b"67");
        assert!(server.fetch_held(1, 1).is_none());
    }

    #[test]
    fn snapshot_resume_preserves_stream_positions() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"0123456789");
        p.pump();
        let s = p.server();
        assert_eq!(s.recv(4).as_ref(), b"0123");
        let snap = s.snapshot().expect("live connection snapshots");
        assert_eq!(snap.rcv_start, 4);
        assert_eq!(snap.pending.as_ref(), b"456789");
        assert!(!snap.local_fin && !snap.peer_fin_consumed);

        let replica = TcpConn::resume(TcpConfig::default(), &snap);
        assert_eq!(replica.state(), TcpState::Established);
        assert_eq!(replica.bytes_received(), s.bytes_received());
        assert_eq!(replica.app_bytes_read(), 4);
        assert_eq!(replica.isn(), s.isn());
        assert_eq!(replica.peer_isn(), s.peer_isn());
    }

    #[test]
    fn resumed_replica_reads_pending_then_taps_new_data() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, b"abcdef");
        p.pump();
        let snap = p.server().snapshot().unwrap();
        let mut replica = TcpConn::resume(TcpConfig::default(), &snap);
        // Pending bytes are immediately readable on the replica…
        assert_eq!(replica.recv(100).as_ref(), b"abcdef");
        // …and tapped client segments continue the stream seamlessly.
        let _ = p.client.send(p.now, b"ghi");
        let seg = p.client.poll_segment().unwrap();
        replica.on_segment(t(1), &seg);
        assert_eq!(replica.recv(100).as_ref(), b"ghi");
    }

    #[test]
    fn resume_carries_unacked_send_data_and_fin() {
        let mut p = Pair::established();
        let s = p.server();
        let _ = s.send(t(0), b"tail");
        s.close(t(0));
        while s.poll_segment().is_some() {} // all lost
        let snap = s.snapshot().unwrap();
        assert_eq!(snap.unacked.as_ref(), b"tail");
        assert!(snap.local_fin);
        let mut replica = TcpConn::resume(TcpConfig::default(), &snap);
        assert_eq!(replica.state(), TcpState::FinWait1);
        // After a takeover the replica re-offers the suppressed region.
        replica.rewind_unacked(t(2));
        p.client.on_segment(t(2), &replica.poll_segment().unwrap());
        assert_eq!(p.client.recv(100).as_ref(), b"tail");
    }

    #[test]
    fn resume_does_not_reannounce_consumed_client_fin() {
        let mut p = Pair::established();
        p.client.close(p.now);
        p.pump();
        let s = p.server();
        assert!(s.peer_fin_received());
        let snap = s.snapshot().unwrap();
        assert!(snap.peer_fin_consumed);
        let mut replica = TcpConn::resume(TcpConfig::default(), &snap);
        assert_eq!(replica.state(), TcpState::CloseWait);
        assert!(replica.peer_fin_received());
        let mut evs = Vec::new();
        while let Some(e) = replica.poll_event() {
            evs.push(e);
        }
        assert!(!evs.contains(&ConnEvent::PeerFin), "FIN re-announced");
    }

    #[test]
    fn closed_and_aborted_connections_do_not_snapshot() {
        let mut p = Pair::established();
        p.client.abort(p.now);
        assert!(p.client.snapshot().is_none());
    }

    #[test]
    fn stats_accumulate_sensibly() {
        let mut p = Pair::established();
        let _ = p.client.send(p.now, &vec![0u8; 5000]);
        p.pump();
        let st = p.client.stats();
        assert_eq!(st.bytes_sent, 5000);
        assert_eq!(st.bytes_retransmitted, 0);
        assert!(st.segs_out >= 4);
        assert!(p.server().stats().segs_in >= 4);
    }
}
