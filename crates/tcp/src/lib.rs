//! # simtcp — a userspace TCP for the ST-TCP reproduction
//!
//! A full TCP implementation (handshake, sliding window with flow and
//! congestion control, retransmission with exponential backoff, graceful
//! close, reset handling) designed to run inside the deterministic
//! [`simnet`] simulator, plus the hook points the ST-TCP layer needs:
//!
//! * deterministic initial sequence numbers ([`endpoint::IsnPolicy`]),
//! * egress suppression for the backup ([`endpoint::EgressMode`]),
//! * FIN gating for `MaxDelayFIN` arbitration ([`endpoint::FinGate`]),
//! * the extended receive ("hold") buffer and missed-byte recovery
//!   ([`conn::TcpConn::fetch_held`], [`conn::TcpConn::inject_in_order`]),
//! * full observability of the paper's heartbeat fields
//!   (`LastByteReceived`, `LastAckReceived`, `LastAppByteWritten`,
//!   `LastAppByteRead`).
//!
//! The crate is a plain state-machine library: no I/O, no threads, no
//! wall-clock time. Hosts embed a [`endpoint::TcpEndpoint`] and shuttle
//! [`simnet::ip::Ipv4Packet`]s in and out.
//!
//! ## Example
//!
//! ```
//! use simtcp::endpoint::{EndpointConfig, ListenConfig, TcpEndpoint};
//! use simnet::time::SimTime;
//!
//! let now = SimTime::ZERO;
//! let mut server = TcpEndpoint::new(EndpointConfig { seed: 1, ..Default::default() });
//! let mut client = TcpEndpoint::new(EndpointConfig { seed: 2, ..Default::default() });
//! server.listen(80, ListenConfig::default());
//! let sock = client.connect(now, ("10.0.0.1".parse()?, 40000), ("10.0.0.9".parse()?, 80));
//!
//! // Shuttle packets until quiet (a simulator normally does this).
//! loop {
//!     let cp = client.poll_packets(now);
//!     let sp = server.poll_packets(now);
//!     if cp.is_empty() && sp.is_empty() { break; }
//!     for p in cp { server.on_packet(now, &p); }
//!     for p in sp { client.on_packet(now, &p); }
//! }
//! assert_eq!(client.conn(sock).unwrap().state(), simtcp::conn::TcpState::Established);
//! # Ok::<(), std::net::AddrParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cc;
pub mod conn;
pub mod endpoint;
pub mod recvbuf;
pub mod rto;
pub mod segment;
pub mod sendbuf;
pub mod seq;
pub mod socket;
mod wheel;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::conn::{ConnEvent, ConnStats, TcpConfig, TcpConn, TcpState};
    pub use crate::endpoint::{
        EgressMode, EndpointConfig, FinGate, IsnPolicy, ListenConfig, RstPolicy, TcpEndpoint,
    };
    pub use crate::rto::RtoConfig;
    pub use crate::segment::{TcpFlags, TcpSegment};
    pub use crate::seq::SeqNum;
    pub use crate::socket::{FourTuple, SocketEvent, SocketId};
}
