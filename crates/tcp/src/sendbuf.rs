//! The TCP send buffer.
//!
//! Operates in 64-bit *stream offset* space (offset 0 = first payload
//! byte); the connection layer converts to and from 32-bit wire sequence
//! numbers. The buffer retains every byte from the lowest unacknowledged
//! offset to the application's write position, serving both first
//! transmissions and retransmissions.

use bytes::Bytes;
use std::collections::VecDeque;

/// A byte-stream send buffer with retransmission support.
///
/// Tracks three positions: `una` (lowest unacknowledged), the caller's
/// transmission cursor (kept by the connection), and `written` (the
/// application's write position). `ST-TCP` reads `written` as the paper's
/// `LastAppByteWritten` heartbeat field.
#[derive(Debug, Clone)]
pub struct SendBuffer {
    /// Bytes covering stream offsets `[una, written)`.
    data: VecDeque<u8>,
    una: u64,
    written: u64,
    capacity: usize,
    fin_queued: bool,
}

impl SendBuffer {
    /// Creates an empty buffer that accepts up to `capacity` un-acked
    /// bytes.
    pub fn new(capacity: usize) -> SendBuffer {
        SendBuffer {
            data: VecDeque::new(),
            una: 0,
            written: 0,
            capacity,
            fin_queued: false,
        }
    }

    /// Reconstructs a buffer mid-stream from a re-integration snapshot.
    ///
    /// Offsets below `una` were acknowledged by the peer before the
    /// snapshot was taken and are gone forever; `unacked` covers
    /// `[una, una + unacked.len())` — exactly the bytes a retransmission
    /// may still need. The capacity is widened if the carried region
    /// alone would overflow it, so the resumed buffer is never born full
    /// beyond its own contents.
    pub fn resume(capacity: usize, una: u64, unacked: &[u8], fin_queued: bool) -> SendBuffer {
        let mut data = VecDeque::with_capacity(unacked.len());
        data.extend(unacked.iter().copied());
        SendBuffer {
            data,
            una,
            written: una + unacked.len() as u64,
            capacity: capacity.max(unacked.len()),
            fin_queued,
        }
    }

    /// The lowest unacknowledged stream offset.
    pub fn una(&self) -> u64 {
        self.una
    }

    /// The application's write position (total bytes ever written). This
    /// is the paper's `LastAppByteWritten`.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Bytes currently buffered (written but not yet acked).
    pub fn buffered(&self) -> usize {
        self.data.len()
    }

    /// Free space for application writes.
    pub fn free_space(&self) -> usize {
        self.capacity - self.data.len()
    }

    /// True once the application has closed its sending side.
    pub fn fin_queued(&self) -> bool {
        self.fin_queued
    }

    /// The stream offset the FIN occupies (one past the last data byte),
    /// if the sending side has been closed.
    pub fn fin_offset(&self) -> Option<u64> {
        self.fin_queued.then_some(self.written)
    }

    /// Appends application data, limited by free space. Returns the number
    /// of bytes accepted (0 after the sending side is closed).
    pub fn write(&mut self, buf: &[u8]) -> usize {
        if self.fin_queued {
            return 0;
        }
        let n = buf.len().min(self.free_space());
        self.data.extend(&buf[..n]);
        self.written += n as u64;
        n
    }

    /// Closes the sending side: no further writes are accepted and a FIN
    /// occupies the offset just past the last written byte. Idempotent.
    pub fn queue_fin(&mut self) {
        self.fin_queued = true;
    }

    /// Bytes available at or beyond `from` (i.e. not yet transmitted when
    /// `from` is the send cursor).
    pub fn available_from(&self, from: u64) -> usize {
        debug_assert!(from >= self.una && from <= self.written);
        (self.written - from) as usize
    }

    /// Copies up to `max` bytes starting at stream offset `off`.
    ///
    /// Used for both first transmission and retransmission; returns an
    /// empty value when `off` is at or past the write position.
    ///
    /// # Panics
    ///
    /// Panics if `off` is below `una` (those bytes have been acked and
    /// discarded — asking for them is a connection-layer bug).
    pub fn slice(&self, off: u64, max: usize) -> Bytes {
        assert!(off >= self.una, "offset {off} below una {}", self.una);
        if off >= self.written {
            return Bytes::new();
        }
        let start = (off - self.una) as usize;
        let len = ((self.written - off) as usize).min(max);
        let mut v = Vec::with_capacity(len);
        for i in start..start + len {
            v.push(self.data[i]);
        }
        Bytes::from(v)
    }

    /// Acknowledges everything below stream offset `upto`, discarding it.
    /// Returns the number of newly acknowledged bytes. Offsets at or below
    /// the current `una`, or beyond `written`, are clamped.
    pub fn ack_to(&mut self, upto: u64) -> u64 {
        let upto = upto.clamp(self.una, self.written);
        let n = upto - self.una;
        self.data.drain(..n as usize);
        self.una = upto;
        n
    }

    /// True when every written byte has been acknowledged (FIN sequencing
    /// is tracked by the connection, not here).
    pub fn all_acked(&self) -> bool {
        self.una == self.written
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_and_slice() {
        let mut b = SendBuffer::new(100);
        assert_eq!(b.write(b"hello world"), 11);
        assert_eq!(b.written(), 11);
        assert_eq!(b.slice(0, 5).as_ref(), b"hello");
        assert_eq!(b.slice(6, 100).as_ref(), b"world");
        assert_eq!(b.slice(11, 10).len(), 0);
    }

    #[test]
    fn capacity_limits_writes() {
        let mut b = SendBuffer::new(8);
        assert_eq!(b.write(b"0123456789"), 8);
        assert_eq!(b.free_space(), 0);
        assert_eq!(b.write(b"x"), 0);
        let _ = b.ack_to(4);
        assert_eq!(b.free_space(), 4);
        assert_eq!(b.write(b"abcdef"), 4);
        assert_eq!(b.slice(8, 10).as_ref(), b"abcd");
    }

    #[test]
    fn ack_trims_and_counts() {
        let mut b = SendBuffer::new(100);
        let _ = b.write(b"abcdefgh");
        assert_eq!(b.ack_to(3), 3);
        assert_eq!(b.una(), 3);
        assert_eq!(b.buffered(), 5);
        // Duplicate / old ack is a no-op.
        assert_eq!(b.ack_to(2), 0);
        assert_eq!(b.una(), 3);
        // Ack beyond written clamps.
        assert_eq!(b.ack_to(100), 5);
        assert!(b.all_acked());
    }

    #[test]
    fn retransmission_slice_after_partial_ack() {
        let mut b = SendBuffer::new(100);
        let _ = b.write(b"abcdefgh");
        let _ = b.ack_to(2);
        assert_eq!(b.slice(2, 3).as_ref(), b"cde");
        assert_eq!(b.slice(5, 100).as_ref(), b"fgh");
    }

    #[test]
    #[should_panic(expected = "below una")]
    fn slicing_acked_bytes_panics() {
        let mut b = SendBuffer::new(100);
        let _ = b.write(b"abcd");
        let _ = b.ack_to(2);
        let _ = b.slice(1, 1);
    }

    #[test]
    fn fin_blocks_further_writes() {
        let mut b = SendBuffer::new(100);
        let _ = b.write(b"done");
        assert!(!b.fin_queued());
        assert_eq!(b.fin_offset(), None);
        b.queue_fin();
        assert!(b.fin_queued());
        assert_eq!(b.fin_offset(), Some(4));
        assert_eq!(b.write(b"more"), 0);
        assert_eq!(b.written(), 4);
        b.queue_fin(); // idempotent
        assert_eq!(b.fin_offset(), Some(4));
    }

    #[test]
    fn available_from_cursor() {
        let mut b = SendBuffer::new(100);
        let _ = b.write(b"0123456789");
        assert_eq!(b.available_from(0), 10);
        assert_eq!(b.available_from(7), 3);
        assert_eq!(b.available_from(10), 0);
    }

    #[test]
    fn resume_mid_stream() {
        let b = SendBuffer::resume(100, 1_000, b"abcd", false);
        assert_eq!(b.una(), 1_000);
        assert_eq!(b.written(), 1_004);
        assert_eq!(b.slice(1_000, 10).as_ref(), b"abcd");
        assert_eq!(b.slice(1_002, 10).as_ref(), b"cd");
        assert!(!b.fin_queued());
    }

    #[test]
    fn resume_with_fin_and_acks() {
        let mut b = SendBuffer::resume(100, 50, b"xyz", true);
        assert!(b.fin_queued());
        assert_eq!(b.fin_offset(), Some(53));
        assert_eq!(b.write(b"more"), 0, "closed side refuses writes");
        assert_eq!(b.ack_to(52), 2);
        assert_eq!(b.slice(52, 10).as_ref(), b"z");
        assert_eq!(b.ack_to(53), 1);
        assert!(b.all_acked());
    }

    #[test]
    fn resume_widens_capacity_for_carried_region() {
        let b = SendBuffer::resume(2, 0, b"abcdef", false);
        assert_eq!(b.buffered(), 6);
        assert_eq!(b.free_space(), 0);
    }

    #[test]
    fn large_stream_offsets() {
        let mut b = SendBuffer::new(1 << 16);
        let chunk = vec![0xAB; 1 << 14];
        let mut total = 0u64;
        for _ in 0..1000 {
            let n = b.write(&chunk);
            total += n as u64;
            let _ = b.ack_to(b.written());
        }
        assert_eq!(b.una(), total);
        assert!(b.all_acked());
    }
}
