//! TCP segment representation and wire format.
//!
//! Segments use the real 20-byte TCP header (no options — the MSS is
//! configured out of band, window scaling is unnecessary at simulated LAN
//! bandwidth-delay products) and the standard pseudo-header checksum.

use bytes::{BufMut, Bytes, BytesMut};
use core::fmt;
use std::net::Ipv4Addr;

use simnet::ip::ChecksumAccumulator;

use crate::seq::SeqNum;

/// Length of the (option-less) TCP header in bytes.
pub const TCP_HEADER_LEN: usize = 20;

/// TCP header flags.
///
/// Only the five flags the protocol logic uses are modelled; the
/// representation is still the real wire bit layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags {
    /// Synchronize sequence numbers (connection open).
    pub syn: bool,
    /// Acknowledgment field is valid.
    pub ack: bool,
    /// Sender has finished sending (graceful close).
    pub fin: bool,
    /// Reset the connection (abort).
    pub rst: bool,
    /// Push: deliver promptly (informational only here).
    pub psh: bool,
}

impl TcpFlags {
    /// A pure-ACK flag set.
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };

    /// A SYN flag set (active open).
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        ack: false,
        fin: false,
        rst: false,
        psh: false,
    };

    /// A SYN+ACK flag set (passive-open reply).
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        ack: true,
        fin: false,
        rst: false,
        psh: false,
    };

    /// A FIN+ACK flag set (graceful close).
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        ack: true,
        fin: true,
        rst: false,
        psh: false,
    };

    /// An RST flag set (abort).
    pub const RST: TcpFlags = TcpFlags {
        syn: false,
        ack: false,
        fin: false,
        rst: true,
        psh: false,
    };

    /// Encodes to the low byte of the header's flags field.
    pub fn to_bits(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    /// Decodes from the low byte of the header's flags field.
    pub fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
        }
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut any = false;
        for (set, c) in [
            (self.syn, 'S'),
            (self.ack, 'A'),
            (self.fin, 'F'),
            (self.rst, 'R'),
            (self.psh, 'P'),
        ] {
            if set {
                write!(f, "{c}")?;
                any = true;
            }
        }
        if !any {
            write!(f, "-")?;
        }
        Ok(())
    }
}

/// A zero-allocation fixed-offset view of an encoded segment's header.
///
/// The flight recorder derives causal span ids from wire-observable
/// header fields on the hottest datapath; a full [`TcpSegment::decode`]
/// would copy the payload and verify the checksum, both wasted work for
/// observability. `peek_segment` reads only the fixed header offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentPeek {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Raw sequence number.
    pub seq: u32,
    /// Raw acknowledgment number.
    pub ack: u32,
    /// The raw flag byte ([`TcpFlags::to_bits`] encoding).
    pub flags: u8,
    /// Payload bytes after the header.
    pub data_len: u32,
}

impl SegmentPeek {
    /// A direction-independent connection tag (the two ports, sorted),
    /// identical for both flows of one connection on every host.
    pub fn conn_tag(&self) -> u32 {
        let lo = self.src_port.min(self.dst_port) as u32;
        let hi = self.src_port.max(self.dst_port) as u32;
        lo | (hi << 16)
    }

    /// True for a bare acknowledgment: no payload and no SYN/FIN/RST.
    pub fn is_pure_ack(&self) -> bool {
        self.data_len == 0 && self.flags & 0x07 == 0 && self.flags & 0x10 != 0
    }
}

/// Peeks an encoded segment's header without copying the payload or
/// verifying the checksum. Returns `None` on truncation or a bad data
/// offset; corrupt-but-well-formed input is the checksum's job at the
/// real decode site, not the observer's.
pub fn peek_segment(wire: &[u8]) -> Option<SegmentPeek> {
    if wire.len() < TCP_HEADER_LEN {
        return None;
    }
    let doff = (wire[12] >> 4) as usize * 4;
    if doff < TCP_HEADER_LEN || wire.len() < doff {
        return None;
    }
    Some(SegmentPeek {
        src_port: u16::from_be_bytes([wire[0], wire[1]]),
        dst_port: u16::from_be_bytes([wire[2], wire[3]]),
        seq: u32::from_be_bytes([wire[4], wire[5], wire[6], wire[7]]),
        ack: u32::from_be_bytes([wire[8], wire[9], wire[10], wire[11]]),
        flags: wire[13],
        data_len: (wire.len() - doff) as u32,
    })
}

/// A TCP segment: header fields plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpSegment {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte (or of the SYN/FIN).
    pub seq: SeqNum,
    /// Acknowledgment number (valid when `flags.ack`).
    pub ack: SeqNum,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Error returned when decoding a TCP segment fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentDecodeError {
    /// Input shorter than the header, or than the declared data offset.
    Truncated,
    /// Data offset field below 5 words.
    BadDataOffset,
    /// Pseudo-header checksum mismatch.
    BadChecksum,
}

impl fmt::Display for SegmentDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentDecodeError::Truncated => write!(f, "segment shorter than header"),
            SegmentDecodeError::BadDataOffset => write!(f, "invalid data offset"),
            SegmentDecodeError::BadChecksum => write!(f, "tcp checksum mismatch"),
        }
    }
}

impl std::error::Error for SegmentDecodeError {}

/// The 12-byte TCP pseudo-header, on the stack.
fn pseudo_header(src: Ipv4Addr, dst: Ipv4Addr, tcp_len: usize) -> [u8; 12] {
    let mut ph = [0u8; 12];
    ph[0..4].copy_from_slice(&src.octets());
    ph[4..8].copy_from_slice(&dst.octets());
    ph[9] = 6; // protocol = TCP
    ph[10..12].copy_from_slice(&(tcp_len as u16).to_be_bytes());
    ph
}

impl TcpSegment {
    /// The number of sequence numbers this segment occupies: payload bytes
    /// plus one for SYN and one for FIN.
    pub fn seq_len(&self) -> u32 {
        self.payload.len() as u32 + self.flags.syn as u32 + self.flags.fin as u32
    }

    /// Total TCP length on the wire (header + payload).
    pub fn wire_len(&self) -> usize {
        TCP_HEADER_LEN + self.payload.len()
    }

    /// Serializes the segment, computing the pseudo-header checksum over
    /// the given IP endpoints.
    pub fn encode(&self, src_ip: Ipv4Addr, dst_ip: Ipv4Addr) -> Bytes {
        let mut hdr = [0u8; TCP_HEADER_LEN];
        hdr[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        hdr[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        hdr[4..8].copy_from_slice(&self.seq.0.to_be_bytes());
        hdr[8..12].copy_from_slice(&self.ack.0.to_be_bytes());
        hdr[12] = 5 << 4; // data offset = 5 words
        hdr[13] = self.flags.to_bits();
        hdr[14..16].copy_from_slice(&self.window.to_be_bytes());

        // Stream the checksum over pseudo-header + header + payload —
        // no concatenated temporary (this runs once per segment).
        let mut acc = ChecksumAccumulator::new();
        acc.push(&pseudo_header(src_ip, dst_ip, self.wire_len()));
        acc.push(&hdr);
        acc.push(&self.payload);
        let csum = acc.finish();
        hdr[16..18].copy_from_slice(&csum.to_be_bytes());

        let mut out = BytesMut::with_capacity(self.wire_len());
        out.put_slice(&hdr);
        out.put_slice(&self.payload);
        out.freeze()
    }

    /// Parses a segment, verifying the pseudo-header checksum.
    ///
    /// # Errors
    ///
    /// Returns a [`SegmentDecodeError`] on truncation, a bad data offset,
    /// or checksum mismatch.
    pub fn decode(
        wire: &[u8],
        src_ip: Ipv4Addr,
        dst_ip: Ipv4Addr,
    ) -> Result<TcpSegment, SegmentDecodeError> {
        if wire.len() < TCP_HEADER_LEN {
            return Err(SegmentDecodeError::Truncated);
        }
        let doff = (wire[12] >> 4) as usize * 4;
        if doff < TCP_HEADER_LEN {
            return Err(SegmentDecodeError::BadDataOffset);
        }
        if wire.len() < doff {
            return Err(SegmentDecodeError::Truncated);
        }
        let mut acc = ChecksumAccumulator::new();
        acc.push(&pseudo_header(src_ip, dst_ip, wire.len()));
        acc.push(wire);
        if acc.finish() != 0 {
            return Err(SegmentDecodeError::BadChecksum);
        }
        Ok(TcpSegment {
            src_port: u16::from_be_bytes([wire[0], wire[1]]),
            dst_port: u16::from_be_bytes([wire[2], wire[3]]),
            seq: SeqNum(u32::from_be_bytes([wire[4], wire[5], wire[6], wire[7]])),
            ack: SeqNum(u32::from_be_bytes([wire[8], wire[9], wire[10], wire[11]])),
            flags: TcpFlags::from_bits(wire[13]),
            window: u16::from_be_bytes([wire[14], wire[15]]),
            payload: Bytes::copy_from_slice(&wire[doff..]),
        })
    }
}

impl fmt::Display for TcpSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}->{} [{}] seq={} ack={} win={} len={}",
            self.src_port,
            self.dst_port,
            self.flags,
            self.seq,
            self.ack,
            self.window,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(10, 0, 0, last)
    }

    fn sample() -> TcpSegment {
        TcpSegment {
            src_port: 4321,
            dst_port: 80,
            seq: SeqNum(0xdead_beef),
            ack: SeqNum(0x1234_5678),
            flags: TcpFlags {
                ack: true,
                psh: true,
                ..Default::default()
            },
            window: 65_000,
            payload: Bytes::from_static(b"GET / HTTP/1.0\r\n"),
        }
    }

    #[test]
    fn roundtrip() {
        let s = sample();
        let wire = s.encode(ip(1), ip(2));
        assert_eq!(TcpSegment::decode(&wire, ip(1), ip(2)).unwrap(), s);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let s = TcpSegment {
            payload: Bytes::new(),
            flags: TcpFlags::SYN,
            ..sample()
        };
        let wire = s.encode(ip(1), ip(2));
        assert_eq!(wire.len(), TCP_HEADER_LEN);
        assert_eq!(TcpSegment::decode(&wire, ip(1), ip(2)).unwrap(), s);
    }

    #[test]
    fn checksum_covers_ip_endpoints() {
        // The same bytes verified against different IPs must fail: this is
        // what the pseudo-header is for.
        let s = sample();
        let wire = s.encode(ip(1), ip(2));
        assert_eq!(
            TcpSegment::decode(&wire, ip(1), ip(3)),
            Err(SegmentDecodeError::BadChecksum)
        );
    }

    #[test]
    fn corrupted_payload_rejected() {
        let s = sample();
        let mut wire = s.encode(ip(1), ip(2)).to_vec();
        let last = wire.len() - 1;
        wire[last] ^= 0x01;
        assert_eq!(
            TcpSegment::decode(&wire, ip(1), ip(2)),
            Err(SegmentDecodeError::BadChecksum)
        );
    }

    #[test]
    fn truncated_rejected() {
        let wire = sample().encode(ip(1), ip(2));
        assert_eq!(
            TcpSegment::decode(&wire[..10], ip(1), ip(2)),
            Err(SegmentDecodeError::Truncated)
        );
    }

    #[test]
    fn bad_data_offset_rejected() {
        let mut wire = sample().encode(ip(1), ip(2)).to_vec();
        wire[12] = 2 << 4;
        assert_eq!(
            TcpSegment::decode(&wire, ip(1), ip(2)),
            Err(SegmentDecodeError::BadDataOffset)
        );
    }

    #[test]
    fn flags_bit_layout_matches_rfc() {
        // FIN=0x01, SYN=0x02, RST=0x04, PSH=0x08, ACK=0x10.
        assert_eq!(TcpFlags::SYN.to_bits(), 0x02);
        assert_eq!(TcpFlags::SYN_ACK.to_bits(), 0x12);
        assert_eq!(TcpFlags::ACK.to_bits(), 0x10);
        assert_eq!(TcpFlags::FIN_ACK.to_bits(), 0x11);
        assert_eq!(TcpFlags::RST.to_bits(), 0x04);
        for bits in 0..32u8 {
            assert_eq!(TcpFlags::from_bits(bits).to_bits(), bits & 0x1f);
        }
    }

    #[test]
    fn peek_matches_full_decode() {
        let s = sample();
        let wire = s.encode(ip(1), ip(2));
        let h = peek_segment(&wire).unwrap();
        assert_eq!(h.src_port, s.src_port);
        assert_eq!(h.dst_port, s.dst_port);
        assert_eq!(h.seq, s.seq.0);
        assert_eq!(h.ack, s.ack.0);
        assert_eq!(h.flags, s.flags.to_bits());
        assert_eq!(h.data_len as usize, s.payload.len());
        assert!(!h.is_pure_ack(), "carries payload");
        assert!(peek_segment(&wire[..10]).is_none());
    }

    #[test]
    fn peek_conn_tag_is_direction_independent() {
        let fwd = sample().encode(ip(1), ip(2));
        let mut rev = sample();
        std::mem::swap(&mut rev.src_port, &mut rev.dst_port);
        rev.payload = Bytes::new();
        let rev = rev.encode(ip(2), ip(1));
        let f = peek_segment(&fwd).unwrap();
        let r = peek_segment(&rev).unwrap();
        assert_eq!(f.conn_tag(), r.conn_tag());
        assert!(r.is_pure_ack(), "no payload, ACK set, no SYN/FIN/RST");
    }

    #[test]
    fn seq_len_counts_syn_and_fin() {
        let mut s = sample();
        assert_eq!(s.seq_len(), 16);
        s.flags.syn = true;
        assert_eq!(s.seq_len(), 17);
        s.flags.fin = true;
        assert_eq!(s.seq_len(), 18);
        s.payload = Bytes::new();
        assert_eq!(s.seq_len(), 2);
    }

    #[test]
    fn display_shows_flags() {
        let s = sample();
        let txt = s.to_string();
        assert!(txt.contains("AP"), "{txt}");
        assert_eq!(TcpFlags::default().to_string(), "-");
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SA");
    }
}
