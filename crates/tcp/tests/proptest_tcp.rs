//! Property-based tests for the TCP substrate: sequence arithmetic, wire
//! formats, buffer invariants, and reassembly correctness under arbitrary
//! segmentation, reordering, and duplication.

use bytes::Bytes;
use proptest::collection::vec;
use proptest::prelude::*;
use std::net::Ipv4Addr;

use simtcp::recvbuf::RecvBuffer;
use simtcp::segment::{TcpFlags, TcpSegment};
use simtcp::sendbuf::SendBuffer;
use simtcp::seq::{SeqNum, SeqTracker};

// ---------------------------------------------------------------------
// Sequence arithmetic
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn seq_add_sub_roundtrip(base: u32, delta: u32) {
        let s = SeqNum(base);
        prop_assert_eq!((s + delta) - delta, s);
        prop_assert_eq!((s + delta) - s, delta);
    }

    #[test]
    fn seq_diff_antisymmetric(a: u32, b: u32) {
        let (x, y) = (SeqNum(a), SeqNum(b));
        prop_assert_eq!(x.diff(y), y.diff(x).wrapping_neg());
        // lt/gt are consistent with diff (strictly ordered unless equal or
        // at the ambiguous antipode).
        if x.diff(y) != i32::MIN && a != b {
            prop_assert_ne!(x.lt(y), y.lt(x));
        }
    }

    #[test]
    fn seq_window_membership_matches_arithmetic(start: u32, len in 0u32..1_000_000, off in 0u32..2_000_000) {
        let s = SeqNum(start);
        let probe = s + off;
        prop_assert_eq!(probe.in_window(s, len), off < len);
    }

    #[test]
    fn tracker_roundtrips_within_half_space(isn: u32, off in 0u64..(1u64 << 40), skew in -1_000_000i64..1_000_000) {
        let t = SeqTracker::new(SeqNum(isn));
        let seq = t.to_seq(off);
        let expected = (off as i64 + skew).max(0) as u64;
        prop_assert_eq!(t.to_offset(seq, expected), off as i64);
    }
}

// ---------------------------------------------------------------------
// Segment wire format
// ---------------------------------------------------------------------

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(syn, ack, fin, rst, psh)| TcpFlags {
            syn,
            ack,
            fin,
            rst,
            psh,
        })
}

fn arb_segment() -> impl Strategy<Value = TcpSegment> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        arb_flags(),
        any::<u16>(),
        vec(any::<u8>(), 0..1600),
    )
        .prop_map(|(sp, dp, seq, ack, flags, win, payload)| TcpSegment {
            src_port: sp,
            dst_port: dp,
            seq: SeqNum(seq),
            ack: SeqNum(ack),
            flags,
            window: win,
            payload: Bytes::from(payload),
        })
}

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from)
}

proptest! {
    #[test]
    fn segment_roundtrips(seg in arb_segment(), src in arb_ip(), dst in arb_ip()) {
        let wire = seg.encode(src, dst);
        prop_assert_eq!(TcpSegment::decode(&wire, src, dst).unwrap(), seg);
    }

    #[test]
    fn segment_single_bit_corruption_detected(
        seg in arb_segment(),
        src in arb_ip(),
        dst in arb_ip(),
        bit_idx: usize,
    ) {
        let mut wire = seg.encode(src, dst).to_vec();
        let nbits = wire.len() * 8;
        let i = bit_idx % nbits;
        wire[i / 8] ^= 1 << (i % 8);
        // The pseudo-header checksum must reject any single-bit flip —
        // unless the flip lands in the data-offset upper nibble, where it
        // changes the declared header length and is rejected or re-framed
        // before the checksum. Either way, decoding must not return the
        // original segment unchanged.
        if let Ok(decoded) = TcpSegment::decode(&wire, src, dst) {
            prop_assert_ne!(decoded, seg);
        }
    }

    /// The segment decoder is total: arbitrary bytes of any length
    /// either decode or error, never panic and never over-read.
    #[test]
    fn segment_decode_never_panics(
        wire in vec(any::<u8>(), 0..2048),
        src in arb_ip(),
        dst in arb_ip(),
    ) {
        let _ = TcpSegment::decode(&wire, src, dst);
    }

    /// Any truncation of a valid segment is rejected (or at minimum
    /// never yields the original segment).
    #[test]
    fn segment_truncation_rejected(
        seg in arb_segment(),
        src in arb_ip(),
        dst in arb_ip(),
        cut in 1usize..64,
    ) {
        let wire = seg.encode(src, dst);
        let cut = cut.min(wire.len());
        if let Ok(decoded) = TcpSegment::decode(&wire[..wire.len() - cut], src, dst) {
            prop_assert_ne!(decoded, seg);
        }
    }

    #[test]
    fn segment_wrong_endpoints_rejected(seg in arb_segment(), src in arb_ip(), dst in arb_ip()) {
        prop_assume!(src != dst);
        let wire = seg.encode(src, dst);
        // Swapping the endpoints breaks the pseudo-header checksum unless
        // they're interchangeable in the sum (commutative!). The sum is
        // commutative over the two addresses, so swapping src/dst aliases;
        // use a *different* address instead.
        let other = Ipv4Addr::new(1, 2, 3, 4);
        prop_assume!(other != src && other != dst);
        prop_assert!(TcpSegment::decode(&wire, src, other).is_err());
    }
}

// ---------------------------------------------------------------------
// Send buffer conservation
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn sendbuf_conserves_bytes(ops in vec((vec(any::<u8>(), 1..200), 0u16..400), 1..60)) {
        let mut sb = SendBuffer::new(4096);
        let mut shadow: Vec<u8> = Vec::new(); // every byte ever accepted
        let mut acked = 0u64;
        for (data, ack_step) in ops {
            let n = sb.write(&data);
            shadow.extend_from_slice(&data[..n]);
            prop_assert_eq!(sb.written(), shadow.len() as u64);
            // Everything still buffered matches the shadow stream.
            let buffered = sb.slice(sb.una(), usize::MAX >> 1);
            prop_assert_eq!(buffered.as_ref(), &shadow[sb.una() as usize..]);
            // Ack a prefix.
            let target = (acked + ack_step as u64).min(sb.written());
            let newly = sb.ack_to(target);
            prop_assert_eq!(newly, target.saturating_sub(acked));
            acked = acked.max(target);
            prop_assert!(sb.buffered() <= 4096);
        }
    }
}

// ---------------------------------------------------------------------
// Receive reassembly: arbitrary segmentation + reorder + duplication
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]
    #[test]
    fn reassembly_is_identity(
        stream in vec(any::<u8>(), 1..3000),
        cuts in vec(1usize..200, 0..40),
        shuffle_seed: u64,
        dup_first: bool,
    ) {
        // Cut the stream into segments.
        let mut segs: Vec<(u64, Bytes)> = Vec::new();
        let mut at = 0usize;
        for c in cuts {
            if at >= stream.len() { break; }
            let end = (at + c).min(stream.len());
            segs.push((at as u64, Bytes::copy_from_slice(&stream[at..end])));
            at = end;
        }
        if at < stream.len() {
            segs.push((at as u64, Bytes::copy_from_slice(&stream[at..])));
        }
        // Deterministic pseudo-shuffle.
        let mut order: Vec<usize> = (0..segs.len()).collect();
        let mut state = shuffle_seed;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut rb = RecvBuffer::new(1 << 20, None);
        if dup_first {
            for &i in &order {
                let (off, data) = &segs[i];
                let _ = rb.receive(*off as i64, data, false);
            }
        }
        for &i in &order {
            let (off, data) = &segs[i];
            let _ = rb.receive(*off as i64, data, false);
        }
        prop_assert_eq!(rb.nxt(), stream.len() as u64);
        let all = rb.read(usize::MAX >> 1);
        prop_assert_eq!(all.as_ref(), &stream[..]);
    }

    #[test]
    fn hold_buffer_preserves_fetchable_history(
        stream in vec(any::<u8>(), 1..2000),
        reads in vec(1usize..300, 0..20),
        release_to in 0u64..2000,
    ) {
        let mut rb = RecvBuffer::new(1 << 20, Some(1 << 20));
        let _ = rb.receive(0, &Bytes::copy_from_slice(&stream), false);
        for r in reads {
            let _ = rb.read(r);
        }
        let release_to = release_to.min(stream.len() as u64);
        rb.release_until(release_to);
        // Everything from release_pos to nxt is fetchable and correct,
        // regardless of what the application has read.
        if release_to < stream.len() as u64 {
            let fetched = rb.fetch(release_to, usize::MAX >> 1).unwrap();
            prop_assert_eq!(fetched.as_ref(), &stream[release_to as usize..]);
        } else {
            prop_assert!(rb.fetch(release_to, 1).is_none());
        }
        // Nothing below release_pos (and read_pos) survives.
        if release_to > 0 && rb.read_pos() > 0 {
            let low = release_to.min(rb.read_pos());
            if low > 0 {
                prop_assert!(rb.fetch(low - 1, 1).is_none());
            }
        }
    }

    #[test]
    fn window_clamp_never_exceeds_capacity(
        offers in vec((0u64..5_000, vec(any::<u8>(), 1..500)), 1..40),
    ) {
        let capacity = 2_048usize;
        let mut rb = RecvBuffer::new(capacity, None);
        for (off, data) in offers {
            let _ = rb.receive(off as i64, &Bytes::from(data), false);
            // The unread in-order region never exceeds the advertised
            // capacity.
            prop_assert!(rb.readable() <= capacity);
            prop_assert_eq!(rb.window(), capacity - rb.readable());
        }
    }
}

// ---------------------------------------------------------------------
// End-to-end connection property: eventual exactly-once delivery over a
// lossy wire, driven purely by the state machines and their timers.
// ---------------------------------------------------------------------

mod lossy_wire {
    use super::*;
    use simnet::time::SimTime;
    use simtcp::conn::{TcpConfig, TcpConn, TcpState};

    fn tuple() -> simtcp::socket::FourTuple {
        simtcp::socket::FourTuple {
            local: (Ipv4Addr::new(10, 0, 0, 1), 40_000),
            remote: (Ipv4Addr::new(10, 0, 0, 100), 80),
        }
    }

    /// Deterministic per-delivery drop decision.
    fn drop_this(seed: u64, counter: u64, loss_pct: u8) -> bool {
        let mut h = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(counter);
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % 100) < loss_pct as u64
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn stream_survives_heavy_loss(
            seed: u64,
            loss_pct in 0u8..45,
            payload_len in 1usize..40_000,
        ) {
            let now0 = SimTime::ZERO;
            let mut a = TcpConn::client(TcpConfig::default(), tuple(), simtcp::seq::SeqNum(1), now0);
            let mut b: Option<TcpConn> = None;
            let payload: Vec<u8> = (0..payload_len).map(|i| (i % 251) as u8).collect();
            let mut sent = 0usize;
            let mut received: Vec<u8> = Vec::new();
            let mut now = now0;
            let mut counter = 0u64;
            let mut iterations = 0u32;

            loop {
                iterations += 1;
                prop_assert!(iterations < 40_000, "no progress after many rounds");
                // Drain a → b.
                let mut moved = false;
                while let Some(seg) = a.poll_segment() {
                    counter += 1;
                    moved = true;
                    if drop_this(seed, counter, loss_pct) {
                        continue;
                    }
                    match &mut b {
                        Some(conn) => conn.on_segment(now, &seg),
                        None if seg.flags.syn && !seg.flags.ack => {
                            b = Some(TcpConn::server_from_syn(
                                TcpConfig::default(),
                                tuple().flipped(),
                                simtcp::seq::SeqNum(777),
                                &seg,
                                now,
                            ));
                        }
                        None => {}
                    }
                }
                // Drain b → a.
                if let Some(conn) = &mut b {
                    while let Some(seg) = conn.poll_segment() {
                        counter += 1;
                        moved = true;
                        if drop_this(seed, counter, loss_pct) {
                            continue;
                        }
                        a.on_segment(now, &seg);
                    }
                }
                // Application pumps.
                if a.state() == TcpState::Established && sent < payload.len() {
                    sent += a.send(now, &payload[sent..]);
                }
                if let Some(conn) = &mut b {
                    let chunk = conn.recv(1 << 20);
                    received.extend_from_slice(&chunk);
                }
                if received.len() == payload.len() {
                    break;
                }
                if moved {
                    continue;
                }
                // Quiet: advance virtual time to the next timer.
                let next = [a.next_deadline(), b.as_ref().and_then(|c| c.next_deadline())]
                    .into_iter()
                    .flatten()
                    .min();
                match next {
                    Some(d) => {
                        now = now.max(d);
                        a.on_timer(now);
                        if let Some(conn) = &mut b {
                            conn.on_timer(now);
                        }
                    }
                    None => prop_assert!(false, "deadlock: no timers, no traffic"),
                }
                // Give up if either side died (possible at extreme loss with
                // capped retries) — then the property is vacuous, skip.
                if a.state() == TcpState::Closed
                    || b.as_ref().is_some_and(|c| c.state() == TcpState::Closed)
                {
                    return Ok(());
                }
            }
            prop_assert_eq!(received, payload, "stream corrupted by loss/retransmission");
        }
    }
}
