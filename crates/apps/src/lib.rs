//! # sttcp-apps — workloads, clients, and scenarios for ST-TCP
//!
//! Everything needed to *exercise* the [`sttcp`] core:
//!
//! * [`apps`] — deterministic server applications (streamer,
//!   request/response worker, sink) satisfying ST-TCP's replica contract.
//! * [`client`] — a verifying TCP client that checks every received byte
//!   against the deterministic [`pattern`] and records a progress series
//!   (the headless pie chart of the paper's Demo 1).
//! * [`scenario`] — topology builders: the paper's Figure 2 setup
//!   (client + primary + backup + switch + serial cable + multicast tap)
//!   and the plain-TCP baselines, plus schedulable fault injections for
//!   every Table 1 row.
//! * [`plain`] — the non-fault-tolerant baseline server.
//!
//! ## Quickstart
//!
//! ```
//! use std::rc::Rc;
//! use simnet::time::SimTime;
//! use sttcp_apps::apps::StreamApp;
//! use sttcp_apps::client::ClientWorkload;
//! use sttcp_apps::scenario::ScenarioBuilder;
//!
//! // A 64 KiB download that survives a primary crash at t = 1s.
//! let mut s = ScenarioBuilder::new(
//!     Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
//!     ClientWorkload::Download { total: 64 * 1024 },
//! )
//! .seed(7)
//! .build();
//! s.crash_primary_at(SimTime::from_secs(1));
//! s.world.run_until(SimTime::from_secs(20));
//! assert!(s.client_finished());
//! assert_eq!(s.client_log().integrity_violations, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod chaos;
pub mod client;
pub mod explore;
pub mod pattern;
pub mod plain;
pub mod pool;
pub mod scenario;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::apps::{CommitStreamApp, ReqRespApp, SinkApp, StreamApp};
    pub use crate::chaos::{
        run_chaos_case, shrink_schedule, ChaosAction, ChaosOptions, ChaosReport, ChaosWorkload,
        FaultSchedule, LinkSel, ShrinkResult, Side, TimedAction,
    };
    pub use crate::client::{ClientConfig, ClientLog, ClientWorkload, ReconnectPolicy, TcpClient};
    pub use crate::explore::{
        build_lattice, explore_case, pair_offsets, probe_milestones, Anchor, AnchorKind,
        CaseResult, ExploreSummary, GrammarOp, Lattice, ViolationCase,
    };
    pub use crate::pattern::{fill_pattern, pattern_byte, pattern_chunk, verify_pattern};
    pub use crate::plain::{PlainServer, PlainServerConfig};
    pub use crate::pool::{
        pool_expectation, run_pool_case, PoolReport, PoolScenario, PoolScenarioBuilder,
    };
    pub use crate::scenario::{
        build_baseline, Addressing, AppMaker, BaselineScenario, Scenario, ScenarioBuilder,
    };
}
