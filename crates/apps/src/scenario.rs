//! Topology builders: the paper's experimental setup (Figure 2) in code.
//!
//! The standard ST-TCP scenario is: a client (doubling as the gateway),
//! the primary, and the backup, all on one Ethernet switch; a serial
//! null-modem cable between the servers; the service IP aliased on both
//! servers; and a static ARP entry on the client mapping the service IP
//! to a **multicast** Ethernet address so the switch floods every client
//! frame to both servers — the tap.
//!
//! Builders also exist for the two baselines the paper compares against:
//! a plain single server ("ST-TCP disabled", Demo 3) and a plain primary
//! plus a plain hot standby that requires a client reconnect (Demo 1's
//! contrast).

use std::net::Ipv4Addr;
use std::rc::Rc;

use simnet::iplayer::IpInterface;
use simnet::link::{LinkDir, LinkId, LinkParams, SwitchId};
use simnet::mac::MacAddr;
use simnet::node::{NicId, NodeId};
use simnet::profile::Component;
use simnet::serial::{SerialId, SerialParams};
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;

use simtcp::conn::TcpConfig;
use simtcp::socket::FourTuple;

use sttcp::app::Application;
use sttcp::config::{Role, StTcpConfig};
use sttcp::heartbeat::conn_key;
use sttcp::server::{AppCrashMode, ServerSetup, StTcpServer};

use crate::client::{ClientConfig, ClientLog, ClientWorkload, ReconnectPolicy, TcpClient};
use crate::plain::{PlainServer, PlainServerConfig};

/// The fixed addressing plan of the standard topology.
#[derive(Debug, Clone, Copy)]
pub struct Addressing {
    /// The client / gateway host.
    pub client_ip: Ipv4Addr,
    /// The primary's private address.
    pub primary_ip: Ipv4Addr,
    /// The backup's private address.
    pub backup_ip: Ipv4Addr,
    /// The shared service address.
    pub service_ip: Ipv4Addr,
    /// The service port.
    pub service_port: u16,
    /// The client's MAC.
    pub client_mac: MacAddr,
    /// The primary's MAC.
    pub primary_mac: MacAddr,
    /// The backup's MAC.
    pub backup_mac: MacAddr,
    /// The multicast Ethernet address the client maps the service IP to
    /// (the paper's `multiEA`).
    pub multi_ea: MacAddr,
}

impl Default for Addressing {
    fn default() -> Self {
        Addressing {
            client_ip: Ipv4Addr::new(10, 0, 0, 1),
            primary_ip: Ipv4Addr::new(10, 0, 0, 2),
            backup_ip: Ipv4Addr::new(10, 0, 0, 3),
            service_ip: Ipv4Addr::new(10, 0, 0, 100),
            service_port: 80,
            client_mac: MacAddr::unicast(1),
            primary_mac: MacAddr::unicast(2),
            backup_mac: MacAddr::unicast(3),
            multi_ea: MacAddr::multicast(100),
        }
    }
}

/// A factory closure producing identical deterministic app replicas.
pub type AppMaker = Rc<dyn Fn() -> Box<dyn Application>>;

/// Builder for the standard ST-TCP scenario.
pub struct ScenarioBuilder {
    seed: u64,
    sttcp: StTcpConfig,
    tcp: TcpConfig,
    app: AppMaker,
    workload: ClientWorkload,
    extra_clients: Vec<ClientWorkload>,
    connect_at: SimDuration,
    link: LinkParams,
    serial: SerialParams,
    serial_links: usize,
    addressing: Addressing,
}

impl ScenarioBuilder {
    /// Starts a builder with an app factory and a client workload.
    pub fn new(app: AppMaker, workload: ClientWorkload) -> ScenarioBuilder {
        ScenarioBuilder {
            seed: 1,
            sttcp: StTcpConfig::default(),
            tcp: TcpConfig::default(),
            app,
            workload,
            extra_clients: Vec::new(),
            connect_at: SimDuration::from_millis(100),
            link: LinkParams::lan(),
            serial: SerialParams::rs232(),
            serial_links: 1,
            addressing: Addressing::default(),
        }
    }

    /// Adds additional client hosts, each with its own workload against
    /// the same service (own IP `10.0.(1+i/240).(10+i%240)`, own switch
    /// port). All clients share the multicast-tap ARP entry, so the
    /// backup replicates every connection; the heartbeat then carries
    /// one record per connection.
    pub fn extra_clients(mut self, workloads: Vec<ClientWorkload>) -> Self {
        self.extra_clients = workloads;
        self
    }

    /// Sets the world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the ST-TCP configuration (heartbeat period, thresholds, …).
    pub fn sttcp(mut self, cfg: StTcpConfig) -> Self {
        self.sttcp = cfg;
        self
    }

    /// Sets the TCP configuration used by servers and client.
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.tcp = cfg;
        self
    }

    /// Sets the Ethernet link parameters.
    pub fn link(mut self, params: LinkParams) -> Self {
        self.link = params;
        self
    }

    /// Sets the serial channel parameters.
    pub fn serial(mut self, params: SerialParams) -> Self {
        self.serial = params;
        self
    }

    /// Sets the number of parallel serial heartbeat links between the
    /// servers (default 1). With `n` links, connection heartbeat records
    /// are sharded `conn_key % n` across them; link 0 is the classic
    /// null-modem cable.
    pub fn serial_links(mut self, n: usize) -> Self {
        assert!(n >= 1, "at least one serial link is required");
        self.serial_links = n;
        self
    }

    /// Sets when (after start) the client connects.
    pub fn connect_at(mut self, at: SimDuration) -> Self {
        self.connect_at = at;
        self
    }

    /// Wires the world and starts it.
    pub fn build(self) -> Scenario {
        let a = self.addressing;
        let mut world = World::new(self.seed);

        // Node ids are assigned densely in add order; the ServerSetups
        // need them for STONITH, so fix the order up front.
        let client_id = NodeId(0);
        let primary_id = NodeId(1);
        let backup_id = NodeId(2);

        // --- client (gateway) ---
        let mut client_iface = IpInterface::new(NicId(0), a.client_mac, a.client_ip);
        // The tap: service IP resolves to the multicast EA.
        client_iface.add_arp(a.service_ip, a.multi_ea);
        client_iface.add_arp(a.primary_ip, a.primary_mac);
        client_iface.add_arp(a.backup_ip, a.backup_mac);
        let client_cfg = ClientConfig {
            server: (a.service_ip, a.service_port),
            local_port: 40_000,
            workload: self.workload.clone(),
            connect_at: self.connect_at,
            reconnect: None,
            tcp: self.tcp.clone(),
            seed: self.seed ^ 0xc11e,
        };
        let client = TcpClient::new(client_cfg, client_iface);

        // --- servers ---
        let mk_server = |role: Role, my_ip, my_mac, peer_ip, peer_mac, peer_node, seed| {
            let mut iface = IpInterface::new(NicId(0), my_mac, my_ip);
            iface.add_alias(a.service_ip);
            iface.add_arp(a.client_ip, a.client_mac);
            iface.add_arp(peer_ip, peer_mac);
            let setup = ServerSetup {
                role,
                sttcp: self.sttcp.clone(),
                tcp: self.tcp.clone(),
                service_ip: a.service_ip,
                service_port: a.service_port,
                private_ip: my_ip,
                peer_private_ip: peer_ip,
                peer_node,
                gateway_ip: a.client_ip,
                isn_salt: 0x5757_5757 ^ self.seed,
                seed,
                rank: 0,
                pool: Vec::new(),
            };
            let app = self.app.clone();
            StTcpServer::new(setup, iface, Box::new(move || app()))
        };
        let primary = mk_server(
            Role::Primary,
            a.primary_ip,
            a.primary_mac,
            a.backup_ip,
            a.backup_mac,
            backup_id,
            self.seed ^ 0x9f1a,
        );
        let backup = mk_server(
            Role::Backup,
            a.backup_ip,
            a.backup_mac,
            a.primary_ip,
            a.primary_mac,
            primary_id,
            self.seed ^ 0xbac0,
        );

        assert_eq!(world.add_node("client", Box::new(client)), client_id);
        assert_eq!(world.add_node("primary", Box::new(primary)), primary_id);
        assert_eq!(world.add_node("backup", Box::new(backup)), backup_id);

        // Extra client hosts at 10.(i/60000).(1+(i%60000)/240).(10+i%240):
        // a fresh third octet every 240 hosts keeps clients clear of the
        // fixed 10.0.0.x plan (gateway, servers, service IP), and a fresh
        // second octet every 60 000 hosts (240 hosts x 250 subnets) lets
        // the 100k-connection scale ramp address every client. The first
        // 60 000 addresses are identical to the old single-plane plan.
        assert!(
            self.extra_clients.len() <= 240 * 250 * 255,
            "extra-client addressing plan exhausted"
        );
        let mut clients = vec![client_id];
        let mut extra_macs = Vec::new();
        for (i, workload) in self.extra_clients.iter().enumerate() {
            let r = i % 60_000;
            let ip = Ipv4Addr::new(
                10,
                (i / 60_000) as u8,
                1 + (r / 240) as u8,
                10 + (r % 240) as u8,
            );
            let mac = MacAddr::unicast(10 + i as u32);
            let mut iface = IpInterface::new(NicId(0), mac, ip);
            iface.add_arp(a.service_ip, a.multi_ea);
            let cfg = ClientConfig {
                server: (a.service_ip, a.service_port),
                local_port: 40_000,
                workload: workload.clone(),
                connect_at: self.connect_at + SimDuration::from_millis(i as u64 + 1),
                reconnect: None,
                tcp: self.tcp.clone(),
                seed: self.seed ^ (0xe0_00 + i as u64),
            };
            let id = world.add_node(
                &format!("client{}", i + 1),
                Box::new(TcpClient::new(cfg, iface)),
            );
            clients.push(id);
            extra_macs.push((id, mac, ip));
        }
        // Servers must be able to answer every client (static ARP).
        for (_, mac, ip) in &extra_macs {
            for sid in [primary_id, backup_id] {
                // The interface lives inside the server; patching ARP after
                // construction needs a setter.
                world
                    .node_mut::<StTcpServer>(sid)
                    .expect("server type")
                    .add_arp(*ip, *mac);
            }
        }

        let cn = world.add_nic(client_id, a.client_mac);
        let pn = world.add_nic(primary_id, a.primary_mac);
        let bn = world.add_nic(backup_id, a.backup_mac);
        let switch = world.add_switch(3 + extra_macs.len());
        let link_client = world.connect_to_switch(client_id, cn, switch, 0, self.link);
        let link_primary = world.connect_to_switch(primary_id, pn, switch, 1, self.link);
        let link_backup = world.connect_to_switch(backup_id, bn, switch, 2, self.link);
        for (port_off, (id, mac, _)) in extra_macs.iter().enumerate() {
            let nic = world.add_nic(*id, *mac);
            world.connect_to_switch(*id, nic, switch, 3 + port_off, self.link);
        }
        // The tap group: client frames to the service multicast EA reach
        // exactly the two server ports (IGMP-snooping membership) instead
        // of flooding to every client port — same tap semantics, O(1)
        // per frame regardless of client count.
        world.join_multicast(switch, a.multi_ea, 1);
        world.join_multicast(switch, a.multi_ea, 2);
        let (serial, sp_primary, sp_backup) =
            world.connect_serial(primary_id, backup_id, self.serial);
        world
            .node_mut::<StTcpServer>(primary_id)
            .expect("primary type")
            .set_serial_port(sp_primary);
        world
            .node_mut::<StTcpServer>(backup_id)
            .expect("backup type")
            .set_serial_port(sp_backup);
        for _ in 1..self.serial_links {
            let (_, spp, spb) = world.connect_serial(primary_id, backup_id, self.serial);
            world
                .node_mut::<StTcpServer>(primary_id)
                .expect("primary type")
                .add_serial_link(spp);
            world
                .node_mut::<StTcpServer>(backup_id)
                .expect("backup type")
                .add_serial_link(spb);
        }

        // Profiler attribution: client hosts are application load, the
        // servers are the ST-TCP protocol machinery.
        for &id in &clients {
            world.set_node_component(id, Component::App);
        }
        world.set_node_component(primary_id, Component::Sttcp);
        world.set_node_component(backup_id, Component::Sttcp);

        world.start();
        Scenario {
            world,
            client: client_id,
            clients,
            primary: primary_id,
            backup: backup_id,
            switch,
            link_client,
            link_primary,
            link_backup,
            serial,
            addressing: a,
        }
    }
}

/// A fully wired, started ST-TCP world.
pub struct Scenario {
    /// The simulation world.
    pub world: World,
    /// The client / gateway node.
    pub client: NodeId,
    /// All client nodes (the first is the gateway client).
    pub clients: Vec<NodeId>,
    /// The (initial) primary node.
    pub primary: NodeId,
    /// The (initial) backup node.
    pub backup: NodeId,
    /// The Ethernet switch.
    pub switch: SwitchId,
    /// Client ↔ switch link.
    pub link_client: LinkId,
    /// Primary ↔ switch link.
    pub link_primary: LinkId,
    /// Backup ↔ switch link.
    pub link_backup: LinkId,
    /// The serial null-modem channel.
    pub serial: SerialId,
    /// The addressing plan.
    pub addressing: Addressing,
}

impl Scenario {
    /// The (first) client's observation log.
    pub fn client_log(&self) -> &ClientLog {
        self.log_of(self.client)
    }

    /// The observation log of any client node.
    pub fn log_of(&self, client: NodeId) -> &ClientLog {
        self.world
            .node::<TcpClient>(client)
            .expect("client type")
            .log()
    }

    /// True once the (first) client's workload completed.
    pub fn client_finished(&self) -> bool {
        self.finished(self.client)
    }

    /// True once the given client's workload completed.
    pub fn finished(&self, client: NodeId) -> bool {
        self.world
            .node::<TcpClient>(client)
            .expect("client type")
            .is_finished()
    }

    /// Immutable access to a server node.
    pub fn server(&self, node: NodeId) -> &StTcpServer {
        self.world.node::<StTcpServer>(node).expect("server type")
    }

    /// The connection key of the client's first connection (for digest
    /// and heartbeat assertions).
    pub fn first_conn_key(&self) -> u32 {
        conn_key(FourTuple {
            local: (self.addressing.service_ip, self.addressing.service_port),
            remote: (self.addressing.client_ip, 40_000),
        })
    }

    /// Schedules a HW/OS crash of the primary (Table 1 row 1).
    pub fn crash_primary_at(&mut self, at: SimTime) {
        let n = self.primary;
        self.world.schedule(at, move |w| w.crash_node(n));
    }

    /// Schedules a HW/OS crash of the backup.
    pub fn crash_backup_at(&mut self, at: SimTime) {
        let n = self.backup;
        self.world.schedule(at, move |w| w.crash_node(n));
    }

    /// Schedules a NIC failure on one of the servers (Table 1 row 4).
    pub fn fail_nic_at(&mut self, node: NodeId, at: SimTime) {
        self.world.schedule(at, move |w| w.fail_nic(node, NicId(0)));
    }

    /// Schedules an application crash on a server (Table 1 rows 2-3,
    /// Demo 4).
    pub fn crash_app_at(&mut self, node: NodeId, at: SimTime, mode: AppCrashMode) {
        self.world.schedule(at, move |w| {
            let now = w.now();
            w.note_fault(format!("app crash ({mode:?}) on n{}", node.0));
            if let Some(server) = w.node_mut::<StTcpServer>(node) {
                server.inject_app_crash(now, mode);
            }
        });
    }

    /// Schedules a serial-cable failure.
    pub fn fail_serial_at(&mut self, at: SimTime) {
        let s = self.serial;
        self.world.schedule(at, move |w| w.fail_serial(s));
    }

    /// Schedules a loss burst toward the *primary*: the next `n` TCP
    /// frames addressed to the service IP are dropped on the
    /// switch→primary direction (Table 1 row 5's primary-side case —
    /// handled by ordinary TCP retransmission, no ST-TCP action).
    pub fn drop_primary_tap_at(&mut self, at: SimTime, n: u64) {
        Self::drop_tap(
            &mut self.world,
            self.link_primary,
            self.addressing.service_ip,
            at,
            n,
        );
    }

    /// Schedules a loss burst on the backup's tap: the next `n` TCP
    /// frames addressed to the service IP are dropped on the
    /// switch→backup direction, while heartbeats keep flowing (Table 1
    /// row 5).
    pub fn drop_backup_tap_at(&mut self, at: SimTime, n: u64) {
        Self::drop_tap(
            &mut self.world,
            self.link_backup,
            self.addressing.service_ip,
            at,
            n,
        );
    }

    /// Schedules a *time-boxed* outage toward the primary: every TCP frame
    /// addressed to the service IP on the switch→primary direction is
    /// dropped for `duration`, then delivery resumes. Ordinary client
    /// retransmission repairs this without any ST-TCP action (Table 1 row
    /// 5, primary side).
    pub fn drop_primary_tap_for(&mut self, at: SimTime, duration: SimDuration) {
        let link = self.link_primary;
        let service_ip = self.addressing.service_ip;
        self.world.schedule(at, move |w| {
            w.set_link_filter(
                link,
                LinkDir::BtoA,
                Some(Box::new(move |frame| {
                    matches!(IpInterface::decap(frame),
                             Some(pkt) if pkt.proto == simnet::ip::IpProto::Tcp
                                 && pkt.dst == service_ip)
                })),
            );
            w.schedule_in(duration, move |w| {
                w.set_link_filter(link, LinkDir::BtoA, None);
            });
        });
    }

    pub(crate) fn drop_tap(
        world: &mut World,
        link: LinkId,
        service_ip: Ipv4Addr,
        at: SimTime,
        n: u64,
    ) {
        world.schedule(at, move |w| {
            let mut budget = n;
            // `connect_to_switch` makes the node endpoint `a` and the
            // switch endpoint `b`, so switch→server traffic travels B→A.
            w.set_link_filter(
                link,
                LinkDir::BtoA,
                Some(Box::new(move |frame| {
                    if budget == 0 {
                        return false;
                    }
                    let Some(pkt) = IpInterface::decap(frame) else {
                        return false;
                    };
                    if pkt.proto == simnet::ip::IpProto::Tcp && pkt.dst == service_ip {
                        budget -= 1;
                        return true;
                    }
                    false
                })),
            );
        });
    }
}

/// A plain client↔server pair on a switch — "ST-TCP disabled" (Demo 3),
/// optionally with a plain hot standby on its own address (Demo 1
/// baseline).
pub struct BaselineScenario {
    /// The simulation world.
    pub world: World,
    /// The client node.
    pub client: NodeId,
    /// The plain primary node.
    pub primary: NodeId,
    /// The plain standby node, when built with one.
    pub standby: Option<NodeId>,
    /// Client ↔ switch link.
    pub link_client: LinkId,
    /// Primary ↔ switch link.
    pub link_primary: LinkId,
    /// The addressing plan.
    pub addressing: Addressing,
}

impl BaselineScenario {
    /// The client's observation log.
    pub fn client_log(&self) -> &ClientLog {
        self.world
            .node::<TcpClient>(self.client)
            .expect("client type")
            .log()
    }

    /// True once the client's workload completed.
    pub fn client_finished(&self) -> bool {
        self.world
            .node::<TcpClient>(self.client)
            .expect("client type")
            .is_finished()
    }

    /// Schedules a HW/OS crash of the primary.
    pub fn crash_primary_at(&mut self, at: SimTime) {
        let n = self.primary;
        self.world.schedule(at, move |w| w.crash_node(n));
    }
}

/// Builds the plain baseline: client + plain server, and optionally a
/// plain standby on `10.0.0.4` that the client's reconnect policy fails
/// over to.
pub fn build_baseline(
    seed: u64,
    app: AppMaker,
    workload: ClientWorkload,
    tcp: TcpConfig,
    with_standby: Option<ReconnectPolicy>,
) -> BaselineScenario {
    let a = Addressing::default();
    let standby_ip = Ipv4Addr::new(10, 0, 0, 4);
    let standby_mac = MacAddr::unicast(4);
    let mut world = World::new(seed);

    let mut client_iface = IpInterface::new(NicId(0), a.client_mac, a.client_ip);
    // No multicast trick here: the service IP belongs to the primary alone.
    client_iface.add_arp(a.service_ip, a.primary_mac);
    client_iface.add_arp(standby_ip, standby_mac);
    let client_cfg = ClientConfig {
        server: (a.service_ip, a.service_port),
        local_port: 40_000,
        workload,
        connect_at: SimDuration::from_millis(100),
        reconnect: with_standby.clone(),
        tcp: tcp.clone(),
        seed: seed ^ 0xc11e,
    };
    let client_id = world.add_node("client", Box::new(TcpClient::new(client_cfg, client_iface)));

    let mut primary_iface = IpInterface::new(NicId(0), a.primary_mac, a.primary_ip);
    primary_iface.add_alias(a.service_ip);
    primary_iface.add_arp(a.client_ip, a.client_mac);
    let primary_cfg = PlainServerConfig {
        port: a.service_port,
        tcp: tcp.clone(),
        seed: seed ^ 0x9147,
        ..Default::default()
    };
    let app2 = app.clone();
    let primary_id = world.add_node(
        "plain-primary",
        Box::new(PlainServer::new(
            primary_cfg,
            primary_iface,
            Box::new(move || app2()),
        )),
    );

    let standby_id = with_standby.is_some().then(|| {
        let mut iface = IpInterface::new(NicId(0), standby_mac, standby_ip);
        iface.add_arp(a.client_ip, a.client_mac);
        let cfg = PlainServerConfig {
            port: a.service_port,
            tcp: tcp.clone(),
            seed: seed ^ 0x57b1,
            ..Default::default()
        };
        let app3 = app.clone();
        world.add_node(
            "plain-standby",
            Box::new(PlainServer::new(cfg, iface, Box::new(move || app3()))),
        )
    });

    let ports = if standby_id.is_some() { 3 } else { 2 };
    let switch = world.add_switch(ports);
    let cn = world.add_nic(client_id, a.client_mac);
    let pn = world.add_nic(primary_id, a.primary_mac);
    let link_client = world.connect_to_switch(client_id, cn, switch, 0, LinkParams::lan());
    let link_primary = world.connect_to_switch(primary_id, pn, switch, 1, LinkParams::lan());
    if let Some(sid) = standby_id {
        let sn = world.add_nic(sid, standby_mac);
        world.connect_to_switch(sid, sn, switch, 2, LinkParams::lan());
    }
    world.start();
    BaselineScenario {
        world,
        client: client_id,
        primary: primary_id,
        standby: standby_id,
        link_client,
        link_primary,
        addressing: a,
    }
}
