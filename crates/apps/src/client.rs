//! The verifying client node (and, per the paper's setup, the gateway).
//!
//! An unmodified TCP client that drives a workload against the service
//! address and *verifies every byte* it receives against the
//! deterministic pattern — so a failover that duplicated, dropped,
//! reordered, or corrupted anything is caught at an exact offset. It also
//! records a `(time, bytes)` progress series, the headless equivalent of
//! Demo 1's pie chart.
//!
//! The client knows nothing about ST-TCP. Its only optional concession to
//! the *baseline* comparison is a reconnect policy: plain-TCP clients
//! facing a dead server eventually give up and reconnect (to a standby
//! address) and restart their transfer — the paper's "the client would
//! have to re-connect".

use bytes::Bytes;
use std::net::Ipv4Addr;

use simnet::flight::{FlightKind, SpanId};
use simnet::frame::EthernetFrame;
use simnet::ip::IpProto;
use simnet::iplayer::IpInterface;
use simnet::node::{NicId, Node, NodeCtx, SerialPortId, TimerId, TimerToken};
use simnet::profile::Component;
use simnet::time::{SimDuration, SimTime};

use simtcp::conn::TcpConfig;
use simtcp::endpoint::{EndpointConfig, IsnPolicy, RstPolicy, TcpEndpoint};
use simtcp::segment::{peek_segment, SegmentPeek};
use simtcp::socket::{SocketEvent, SocketId};

use crate::apps::ReqRespApp;
use crate::pattern::{pattern_chunk, verify_pattern};

const TOKEN_CONNECT: TimerToken = TimerToken(1);
const TOKEN_TCP: TimerToken = TimerToken(2);
const TOKEN_CHAT: TimerToken = TimerToken(3);
const TOKEN_STALL: TimerToken = TimerToken(4);

/// What the client does once connected.
#[derive(Debug, Clone)]
pub enum ClientWorkload {
    /// Request `GET <total>\n` and receive `total` verified pattern bytes
    /// (Demo 1, 2, 3, 5).
    Download {
        /// Response bytes to request.
        total: u64,
    },
    /// Send a `chunk`-byte pattern slab every `period`, expecting it
    /// echoed back verbatim; stop after `count` slabs (Demo 4 — keeps the
    /// application active in both directions so lag detectors have
    /// something to observe).
    EchoChat {
        /// Bytes per slab.
        chunk: usize,
        /// Send period.
        period: SimDuration,
        /// Slabs to send.
        count: u32,
    },
    /// Send a deterministic request line every `period` and verify each
    /// response against [`ReqRespApp::response_for`]; stop after `count`
    /// round trips. Unlike [`ClientWorkload::Download`], the expected
    /// byte stream is built request-by-request, so the integrity check
    /// covers interactive traffic, not the fixed pattern.
    ReqResp {
        /// Request period.
        period: SimDuration,
        /// Requests to send.
        count: u32,
    },
    /// Connect and stay silent (the quiet-client case that forces the
    /// gateway-ping detection path in Demo 5).
    Idle,
}

/// Baseline-only reconnect behaviour for plain-TCP comparisons.
#[derive(Debug, Clone)]
pub struct ReconnectPolicy {
    /// Declare the connection dead after this long without progress.
    pub stall_timeout: SimDuration,
    /// Addresses to (re)connect to, round-robin.
    pub targets: Vec<(Ipv4Addr, u16)>,
    /// Pause before reconnecting.
    pub reconnect_delay: SimDuration,
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Service address to connect to first.
    pub server: (Ipv4Addr, u16),
    /// First local port (reconnects increment it).
    pub local_port: u16,
    /// The workload.
    pub workload: ClientWorkload,
    /// Delay after world start before connecting.
    pub connect_at: SimDuration,
    /// Baseline reconnect policy; `None` for a patient client (ST-TCP
    /// runs — the whole point is that the client never needs one).
    pub reconnect: Option<ReconnectPolicy>,
    /// TCP tuning.
    pub tcp: TcpConfig,
    /// Seed for the client's TCP stack (ISNs).
    pub seed: u64,
}

/// Everything the client observed, for assertions and reporting.
#[derive(Debug, Clone, Default)]
pub struct ClientLog {
    /// `(time, cumulative-in-connection response bytes)` samples.
    pub progress: Vec<(SimTime, u64)>,
    /// Position in the current response stream (resets on restart).
    pub response_pos: u64,
    /// Total verified bytes across all connection attempts.
    pub total_received: u64,
    /// Pattern mismatches observed (must stay 0 in every ST-TCP run).
    pub integrity_violations: u64,
    /// Completed echo round trips.
    pub echo_roundtrips: u32,
    /// Times the client connected successfully.
    pub connects: Vec<SimTime>,
    /// Connection resets observed.
    pub resets: u32,
    /// Reconnection attempts made (baseline only).
    pub reconnects: u32,
    /// When the workload finished, if it did.
    pub finished_at: Option<SimTime>,
    /// When the client observed a FIN from the server.
    pub server_fin_at: Option<SimTime>,
}

impl ClientLog {
    /// The longest gap between consecutive progress samples within
    /// `[from, to]` — the client-visible stall (Demo 1/2's failover time
    /// as the user experiences it).
    pub fn longest_stall(&self, from: SimTime, to: SimTime) -> SimDuration {
        let mut last = from;
        let mut worst = SimDuration::ZERO;
        for &(t, _) in &self.progress {
            if t < from {
                continue;
            }
            if t > to {
                break;
            }
            worst = worst.max(t.saturating_since(last));
            last = t;
        }
        worst.max(to.saturating_since(last))
    }

    /// The `(start, end)` of the longest stall within `[from, to]` — the
    /// same gap [`ClientLog::longest_stall`] measures, as a window the
    /// phase timeline can be anchored to. `start` is the last progress
    /// sample before the gap; `end` is the first sample after it (or `to`
    /// if progress never resumed). `None` if no samples fall in range and
    /// the range itself is empty.
    pub fn longest_stall_window(&self, from: SimTime, to: SimTime) -> Option<(SimTime, SimTime)> {
        if to <= from {
            return None;
        }
        let mut last = from;
        let mut worst = SimDuration::ZERO;
        let mut window = (from, to);
        for &(t, _) in &self.progress {
            if t < from {
                continue;
            }
            if t > to {
                break;
            }
            if t.saturating_since(last) > worst {
                worst = t.saturating_since(last);
                window = (last, t);
            }
            last = t;
        }
        if to.saturating_since(last) > worst {
            window = (last, to);
        }
        Some(window)
    }
}

/// The client node. See the [module docs](self).
pub struct TcpClient {
    cfg: ClientConfig,
    iface: IpInterface,
    tcp: TcpEndpoint,
    sock: Option<SocketId>,
    /// Index into `reconnect.targets` for the next attempt.
    next_target: usize,
    /// Ports consumed so far (offset from `local_port`).
    attempts: u16,
    chat_sent: u32,
    /// Stream position of the next byte to send in EchoChat.
    chat_tx_pos: u64,
    /// ReqResp: expected response stream, built as requests are issued.
    rr_expected: Vec<u8>,
    /// ReqResp: cumulative end offset of each response (round-trip marks).
    rr_ends: Vec<u64>,
    /// ReqResp: unsent tail of the current request line (carry-over when
    /// the send buffer was full).
    rr_pending: Vec<u8>,
    tcp_timer: Option<(TimerId, SimTime)>,
    last_progress_at: SimTime,
    log: ClientLog,
    finished: bool,
}

impl std::fmt::Debug for TcpClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpClient")
            .field("sock", &self.sock)
            .field("received", &self.log.total_received)
            .finish_non_exhaustive()
    }
}

impl TcpClient {
    /// Creates a client on the given interface (which also answers pings:
    /// the client host doubles as the gateway in the paper's Figure 2).
    pub fn new(cfg: ClientConfig, iface: IpInterface) -> TcpClient {
        let endpoint_cfg = EndpointConfig {
            tcp: cfg.tcp.clone(),
            isn: IsnPolicy::Random,
            rst_policy: RstPolicy::Send,
            seed: cfg.seed,
        };
        TcpClient {
            cfg,
            iface,
            tcp: TcpEndpoint::new(endpoint_cfg),
            sock: None,
            next_target: 0,
            attempts: 0,
            chat_sent: 0,
            chat_tx_pos: 0,
            rr_expected: Vec::new(),
            rr_ends: Vec::new(),
            rr_pending: Vec::new(),
            tcp_timer: None,
            last_progress_at: SimTime::ZERO,
            log: ClientLog::default(),
            finished: false,
        }
    }

    /// The observation log.
    pub fn log(&self) -> &ClientLog {
        &self.log
    }

    /// True once the workload has completed successfully.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    fn connect(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let target = match (&self.cfg.reconnect, self.attempts) {
            (Some(p), n) if n > 0 && !p.targets.is_empty() => {
                let t = p.targets[self.next_target % p.targets.len()];
                self.next_target += 1;
                t
            }
            _ => self.cfg.server,
        };
        let local = (self.iface.addr(), self.cfg.local_port + self.attempts);
        self.attempts += 1;
        let sock = self.tcp.connect(now, local, target);
        self.sock = Some(sock);
        // A restarted download begins from scratch.
        self.log.response_pos = 0;
        self.chat_sent = 0;
        self.rr_expected.clear();
        self.rr_ends.clear();
        self.rr_pending.clear();
        self.last_progress_at = now;
    }

    /// The deterministic `i`-th request line for the ReqResp workload.
    fn reqresp_line(i: u32) -> Vec<u8> {
        format!("q{i:06}-{:08x}\n", i.wrapping_mul(0x9e37_79b9)).into_bytes()
    }

    fn on_connected(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        self.log.connects.push(now);
        self.last_progress_at = now;
        let Some(sock) = self.sock else { return };
        match self.cfg.workload.clone() {
            ClientWorkload::Download { total } => {
                let req = format!("GET {total}\n");
                let _ = self.tcp.send(now, sock, req.as_bytes());
            }
            ClientWorkload::EchoChat { period, .. } | ClientWorkload::ReqResp { period, .. } => {
                ctx.set_timer(period, TOKEN_CHAT);
            }
            ClientWorkload::Idle => {}
        }
    }

    fn on_readable(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let Some(sock) = self.sock else { return };
        loop {
            let data = self.tcp.recv(sock, 64 * 1024);
            if data.is_empty() {
                break;
            }
            let mismatch = match self.cfg.workload {
                // ReqResp verifies against the per-request expected
                // stream; everything else against the fixed pattern.
                ClientWorkload::ReqResp { .. } => {
                    let start = self.log.response_pos as usize;
                    self.rr_expected.get(start..start + data.len()) != Some(&data[..])
                }
                _ => verify_pattern(self.log.response_pos, &data).is_some(),
            };
            if mismatch {
                self.log.integrity_violations += 1;
            }
            self.log.response_pos += data.len() as u64;
            self.log.total_received += data.len() as u64;
            self.last_progress_at = now;
            self.log.progress.push((now, self.log.response_pos));
            match self.cfg.workload {
                ClientWorkload::Download { total } => {
                    if self.log.response_pos >= total && !self.finished {
                        self.finished = true;
                        self.log.finished_at = Some(now);
                        self.tcp.close(now, sock);
                    }
                }
                ClientWorkload::EchoChat { chunk, count, .. } => {
                    let done = self.log.response_pos / chunk as u64;
                    self.log.echo_roundtrips = done as u32;
                    if done >= count as u64 && !self.finished {
                        self.finished = true;
                        self.log.finished_at = Some(now);
                        self.tcp.close(now, sock);
                    }
                }
                ClientWorkload::ReqResp { count, .. } => {
                    let done = self
                        .rr_ends
                        .iter()
                        .take_while(|&&end| end <= self.log.response_pos)
                        .count();
                    self.log.echo_roundtrips = done as u32;
                    if self.chat_sent >= count && done >= count as usize && !self.finished {
                        self.finished = true;
                        self.log.finished_at = Some(now);
                        self.tcp.close(now, sock);
                    }
                }
                ClientWorkload::Idle => {}
            }
        }
    }

    fn on_chat_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        if let ClientWorkload::ReqResp { period, count } = self.cfg.workload {
            if self.finished {
                return;
            }
            if let Some(sock) = self.sock {
                if !self.rr_pending.is_empty() {
                    // Finish handing the previous line to TCP first — a
                    // request must never interleave with another.
                    let pending = std::mem::take(&mut self.rr_pending);
                    let n = self.tcp.send(now, sock, &pending);
                    self.rr_pending = pending[n..].to_vec();
                } else if self.chat_sent < count {
                    let line = Self::reqresp_line(self.chat_sent);
                    self.chat_sent += 1;
                    // The whole line will eventually reach the server (via
                    // the carry-over), so its response joins the expected
                    // stream now.
                    let resp = ReqRespApp::response_for(&line[..line.len() - 1]);
                    self.rr_expected.extend_from_slice(&resp);
                    self.rr_ends.push(self.rr_expected.len() as u64);
                    let n = self.tcp.send(now, sock, &line);
                    self.rr_pending = line[n..].to_vec();
                }
            }
            ctx.set_timer(period, TOKEN_CHAT);
            return;
        }
        let ClientWorkload::EchoChat {
            chunk,
            period,
            count,
        } = self.cfg.workload
        else {
            return;
        };
        if self.finished {
            return;
        }
        if self.chat_sent < count {
            if let Some(sock) = self.sock {
                let slab = pattern_chunk(self.chat_tx_pos, chunk);
                let n = self.tcp.send(now, sock, &slab);
                self.chat_tx_pos += n as u64;
                if n == chunk {
                    self.chat_sent += 1;
                }
                // Partial sends re-offer the remainder on the next tick.
            }
        }
        ctx.set_timer(period, TOKEN_CHAT);
    }

    fn on_stall_check(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        let Some(policy) = self.cfg.reconnect.clone() else {
            return;
        };
        if !self.finished
            && self.sock.is_some()
            && now.saturating_since(self.last_progress_at) >= policy.stall_timeout
        {
            // Give up on this connection, reconnect after the delay.
            if let Some(sock) = self.sock.take() {
                self.tcp.abort(now, sock);
            }
            self.log.reconnects += 1;
            ctx.trace("client: stalled; reconnecting".to_string());
            ctx.set_timer(policy.reconnect_delay, TOKEN_CONNECT);
        }
        ctx.set_timer(policy.stall_timeout / 2, TOKEN_STALL);
    }

    fn drain_events(&mut self, ctx: &mut NodeCtx<'_>) -> bool {
        let mut any = false;
        while let Some((sock, ev)) = self.tcp.poll_event() {
            if Some(sock) != self.sock {
                continue;
            }
            any = true;
            match ev {
                SocketEvent::Connected => self.on_connected(ctx),
                SocketEvent::DataReadable => self.on_readable(ctx),
                SocketEvent::PeerFin => {
                    let now = ctx.now();
                    self.log.server_fin_at.get_or_insert(now);
                    self.tcp.close(now, sock);
                }
                SocketEvent::Reset => {
                    self.log.resets += 1;
                    if let Some(p) = self.cfg.reconnect.clone() {
                        if !self.finished {
                            self.sock = None;
                            self.log.reconnects += 1;
                            ctx.set_timer(p.reconnect_delay, TOKEN_CONNECT);
                        }
                    }
                }
                SocketEvent::Closed | SocketEvent::Accepted => {}
            }
        }
        any
    }

    /// Records a datapath segment in the flight recorder. Both ends of
    /// the wire derive the same span from the header fields, so client
    /// sends pair with server delivers in the dump (and vice versa).
    fn flight_segment(ctx: &mut NodeCtx<'_>, h: &SegmentPeek, outbound: bool) {
        let span = SpanId::segment(h.src_port, h.dst_port, h.seq, h.flags);
        if h.is_pure_ack() {
            ctx.flight(
                span,
                SpanId::NONE,
                FlightKind::SegAck {
                    conn: h.conn_tag(),
                    ack: h.ack,
                },
            );
        } else if outbound {
            ctx.flight(
                span,
                SpanId::NONE,
                FlightKind::SegSend {
                    conn: h.conn_tag(),
                    seq: h.seq,
                    len: h.data_len,
                    flags: h.flags,
                },
            );
        } else {
            ctx.flight(
                span,
                SpanId::NONE,
                FlightKind::SegDeliver {
                    conn: h.conn_tag(),
                    seq: h.seq,
                    len: h.data_len,
                    flags: h.flags,
                },
            );
        }
    }

    fn flush(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        ctx.profile_enter(Component::Tcp);
        loop {
            let had = self.drain_events(ctx);
            let pkts = self.tcp.poll_packets(now);
            if !had && pkts.is_empty() {
                break;
            }
            for pkt in pkts {
                if pkt.proto == IpProto::Tcp {
                    if let Some(h) = peek_segment(&pkt.payload) {
                        Self::flight_segment(ctx, &h, true);
                    }
                }
                if let Some(frame) = self.iface.encap(&pkt) {
                    ctx.send_frame(self.iface.nic, frame);
                }
            }
        }
        ctx.profile_exit();
        let want = self.tcp.next_deadline();
        match (want, self.tcp_timer) {
            (Some(d), Some((_, at))) if d == at => {}
            (Some(d), prev) => {
                if let Some((id, _)) = prev {
                    ctx.cancel_timer(id);
                }
                let id = ctx.set_timer(d.saturating_since(now), TOKEN_TCP);
                self.tcp_timer = Some((id, d));
            }
            (None, Some((id, _))) => {
                ctx.cancel_timer(id);
                self.tcp_timer = None;
            }
            (None, None) => {}
        }
    }
}

impl Node for TcpClient {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.set_timer(self.cfg.connect_at, TOKEN_CONNECT);
        if let Some(p) = &self.cfg.reconnect {
            let first = p.stall_timeout / 2;
            ctx.set_timer(first, TOKEN_STALL);
        }
    }

    fn on_frame(&mut self, ctx: &mut NodeCtx<'_>, _nic: NicId, frame: EthernetFrame) {
        if let Some(pkt) = IpInterface::decap(&frame) {
            match pkt.proto {
                IpProto::Icmp => {
                    // The client host is the gateway: answer pings.
                    let _ = self.iface.handle_icmp(ctx, &pkt);
                }
                IpProto::Tcp if self.iface.accepts(pkt.dst) => {
                    if let Some(h) = peek_segment(&pkt.payload) {
                        Self::flight_segment(ctx, &h, false);
                    }
                    ctx.profile_enter(Component::Tcp);
                    self.tcp.on_packet(ctx.now(), &pkt);
                    ctx.profile_exit();
                }
                _ => {}
            }
        }
        self.flush(ctx);
    }

    fn on_serial(&mut self, _ctx: &mut NodeCtx<'_>, _port: SerialPortId, _data: Bytes) {}

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: TimerToken) {
        match token {
            TOKEN_CONNECT if self.sock.is_none() && !self.finished => {
                self.connect(ctx);
            }
            TOKEN_TCP => {
                self.tcp_timer = None;
                self.tcp.on_time(ctx.now());
            }
            TOKEN_CHAT => self.on_chat_tick(ctx),
            TOKEN_STALL => self.on_stall_check(ctx),
            _ => {}
        }
        self.flush(ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_stall_finds_gap() {
        let mut log = ClientLog::default();
        for ms in [100u64, 200, 300, 1_300, 1_400] {
            log.progress.push((SimTime::from_millis(ms), ms));
        }
        let stall = log.longest_stall(SimTime::ZERO, SimTime::from_millis(1_500));
        assert_eq!(stall, SimDuration::from_millis(1_000));
    }

    #[test]
    fn longest_stall_counts_tail() {
        let mut log = ClientLog::default();
        log.progress.push((SimTime::from_millis(100), 1));
        let stall = log.longest_stall(SimTime::ZERO, SimTime::from_millis(5_000));
        assert_eq!(stall, SimDuration::from_millis(4_900));
    }

    #[test]
    fn longest_stall_empty_log_is_whole_window() {
        let log = ClientLog::default();
        assert_eq!(
            log.longest_stall(SimTime::from_millis(10), SimTime::from_millis(110)),
            SimDuration::from_millis(100)
        );
    }

    #[test]
    fn stall_window_brackets_the_gap_longest_stall_measures() {
        let mut log = ClientLog::default();
        for ms in [100u64, 200, 300, 1_300, 1_400] {
            log.progress.push((SimTime::from_millis(ms), ms));
        }
        let (from, to) = (SimTime::ZERO, SimTime::from_millis(1_500));
        let (start, end) = log.longest_stall_window(from, to).unwrap();
        assert_eq!(start, SimTime::from_millis(300));
        assert_eq!(end, SimTime::from_millis(1_300));
        assert_eq!(end.saturating_since(start), log.longest_stall(from, to));
    }

    #[test]
    fn stall_window_tail_ends_at_to() {
        let mut log = ClientLog::default();
        log.progress.push((SimTime::from_millis(100), 1));
        let (start, end) = log
            .longest_stall_window(SimTime::ZERO, SimTime::from_millis(5_000))
            .unwrap();
        assert_eq!(start, SimTime::from_millis(100));
        assert_eq!(end, SimTime::from_millis(5_000));
    }

    #[test]
    fn stall_window_empty_range_is_none() {
        let log = ClientLog::default();
        assert!(log
            .longest_stall_window(SimTime::from_millis(5), SimTime::from_millis(5))
            .is_none());
    }
}
