//! N-replica standby-pool scenario: one active plus K ≥ 2 tapping
//! backups, pairwise serial heartbeat links, rank-ordered takeover with
//! quorum-checked fencing, and continuous re-integration.
//!
//! [`PoolScenarioBuilder`] wires the paper's Figure 2 topology widened to
//! N servers: every replica aliases the service IP, taps the client's
//! multicast frames, and exchanges heartbeats with every other member
//! over both IP and a dedicated null-modem cable per pair. Faults reuse
//! the chaos vocabulary ([`FaultSchedule`]): in a pool world,
//! `Side::Primary` addresses the rank-0 member and `Side::Backup` the
//! rank-1 member, so the stock generators kill the takeover chain in
//! order while deeper members supply quorum.
//!
//! [`run_pool_case`] is the pool counterpart of
//! [`crate::chaos::run_chaos_case`]: same verifying download workload,
//! same determinism contract (equal `(seed, schedule, opts)` ⇒ equal
//! [`PoolReport::fingerprint`]), judged by
//! [`sttcp::invariant::check_pool`] — which adds the
//! `quorum-fence-precedes-takeover` invariant on top of the pairwise
//! properties.

use std::net::Ipv4Addr;
use std::rc::Rc;

use simnet::iplayer::IpInterface;
use simnet::link::{LinkDir, LinkId, LinkParams, SwitchId};
use simnet::mac::MacAddr;
use simnet::node::{NicId, NodeId};
use simnet::serial::{SerialId, SerialParams};
use simnet::time::{SimDuration, SimTime};
use simnet::world::World;

use simtcp::conn::TcpConfig;
use simtcp::socket::FourTuple;

use sttcp::config::{Role, StTcpConfig};
use sttcp::events::StTcpEvent;
use sttcp::heartbeat::conn_key;
use sttcp::invariant::{self, ClientView, Outcome, PoolExpectation, ServerView, Violation};
use sttcp::pool::PoolPeer;
use sttcp::server::{ServerSetup, StTcpServer};

use crate::apps::StreamApp;
use crate::chaos::{chaos_config, ChaosAction, ChaosOptions, FaultSchedule, LinkSel, Side};
use crate::client::{ClientConfig, ClientLog, ClientWorkload, TcpClient};
use crate::scenario::{Addressing, AppMaker, Scenario};

/// Builder for an N-replica pool world (default three replicas: one
/// active, two standbys — the smallest pool where fencing is a real
/// quorum vote rather than degenerate STONITH).
pub struct PoolScenarioBuilder {
    seed: u64,
    replicas: usize,
    sttcp: StTcpConfig,
    tcp: TcpConfig,
    app: AppMaker,
    workload: ClientWorkload,
    connect_at: SimDuration,
    link: LinkParams,
    serial: SerialParams,
}

impl PoolScenarioBuilder {
    /// Starts a builder with an app factory and a client workload.
    pub fn new(app: AppMaker, workload: ClientWorkload) -> PoolScenarioBuilder {
        PoolScenarioBuilder {
            seed: 1,
            replicas: 3,
            sttcp: StTcpConfig::default(),
            tcp: TcpConfig::default(),
            app,
            workload,
            connect_at: SimDuration::from_millis(100),
            link: LinkParams::lan(),
            serial: SerialParams::rs232(),
        }
    }

    /// Sets the world seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the replica count (2..=8; 2 is the degenerate pair-shaped
    /// pool where every fence is a self-quorum STONITH).
    pub fn replicas(mut self, n: usize) -> Self {
        assert!((2..=8).contains(&n), "pool size {n} out of range 2..=8");
        self.replicas = n;
        self
    }

    /// Sets the ST-TCP configuration shared by every member.
    pub fn sttcp(mut self, cfg: StTcpConfig) -> Self {
        self.sttcp = cfg;
        self
    }

    /// Sets the TCP configuration used by servers and client.
    pub fn tcp(mut self, cfg: TcpConfig) -> Self {
        self.tcp = cfg;
        self
    }

    /// Wires the world and starts it.
    pub fn build(self) -> PoolScenario {
        let a = Addressing::default();
        let n = self.replicas;
        let mut world = World::new(self.seed);

        let ips: Vec<Ipv4Addr> = (0..n)
            .map(|i| Ipv4Addr::new(10, 0, 0, 2 + i as u8))
            .collect();
        let macs: Vec<MacAddr> = (0..n).map(|i| MacAddr::unicast(2 + i as u32)).collect();
        let client_id = NodeId(0);
        let server_ids: Vec<NodeId> = (0..n).map(|i| NodeId(1 + i)).collect();

        // --- client (gateway), tapping via the multicast EA ---
        let mut client_iface = IpInterface::new(NicId(0), a.client_mac, a.client_ip);
        client_iface.add_arp(a.service_ip, a.multi_ea);
        for (ip, mac) in ips.iter().zip(macs.iter()) {
            client_iface.add_arp(*ip, *mac);
        }
        let client_cfg = ClientConfig {
            server: (a.service_ip, a.service_port),
            local_port: 40_000,
            workload: self.workload.clone(),
            connect_at: self.connect_at,
            reconnect: None,
            tcp: self.tcp.clone(),
            seed: self.seed ^ 0xc11e,
        };
        let client = TcpClient::new(client_cfg, client_iface);
        assert_eq!(world.add_node("client", Box::new(client)), client_id);

        // --- pool members, rank i at 10.0.0.(2+i) ---
        for i in 0..n {
            let mut iface = IpInterface::new(NicId(0), macs[i], ips[i]);
            iface.add_alias(a.service_ip);
            iface.add_arp(a.client_ip, a.client_mac);
            for j in 0..n {
                if j != i {
                    iface.add_arp(ips[j], macs[j]);
                }
            }
            let pool: Vec<PoolPeer> = (0..n)
                .filter(|&j| j != i)
                .map(|j| PoolPeer {
                    rank: j as u8,
                    ip: ips[j],
                    node: server_ids[j],
                })
                .collect();
            // Pair-mode peer fields are unused in pool mode but must
            // point at a real member; use the neighbour.
            let peer = if i == 0 { 1 } else { 0 };
            let setup = ServerSetup {
                role: if i == 0 { Role::Primary } else { Role::Backup },
                sttcp: self.sttcp.clone(),
                tcp: self.tcp.clone(),
                service_ip: a.service_ip,
                service_port: a.service_port,
                private_ip: ips[i],
                peer_private_ip: ips[peer],
                peer_node: server_ids[peer],
                gateway_ip: a.client_ip,
                isn_salt: 0x5757_5757 ^ self.seed,
                seed: self.seed ^ (0x9f1a + i as u64),
                rank: i as u8,
                pool,
            };
            let app = self.app.clone();
            let server = StTcpServer::new(setup, iface, Box::new(move || app()));
            let name = format!("pool{i}");
            assert_eq!(world.add_node(&name, Box::new(server)), server_ids[i]);
        }

        // --- switch fabric ---
        let cn = world.add_nic(client_id, a.client_mac);
        let nics: Vec<_> = (0..n)
            .map(|i| world.add_nic(server_ids[i], macs[i]))
            .collect();
        let switch = world.add_switch(1 + n);
        let link_client = world.connect_to_switch(client_id, cn, switch, 0, self.link);
        let server_links: Vec<LinkId> = (0..n)
            .map(|i| world.connect_to_switch(server_ids[i], nics[i], switch, 1 + i, self.link))
            .collect();

        // --- pairwise null-modem mesh ---
        let mut serials = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                let (sid, port_i, port_j) =
                    world.connect_serial(server_ids[i], server_ids[j], self.serial);
                world
                    .node_mut::<StTcpServer>(server_ids[i])
                    .expect("server type")
                    .add_pool_serial(port_i, ips[j]);
                world
                    .node_mut::<StTcpServer>(server_ids[j])
                    .expect("server type")
                    .add_pool_serial(port_j, ips[i]);
                serials.push(sid);
            }
        }

        // Profiler attribution: client is application load, members are
        // the pool protocol machinery.
        world.set_node_component(client_id, simnet::profile::Component::App);
        for &sid in &server_ids {
            world.set_node_component(sid, simnet::profile::Component::Pool);
        }

        world.start();
        PoolScenario {
            world,
            client: client_id,
            servers: server_ids,
            ips,
            switch,
            link_client,
            server_links,
            serials,
            addressing: a,
        }
    }
}

/// A fully wired, started pool world.
pub struct PoolScenario {
    /// The simulation world.
    pub world: World,
    /// The client / gateway node.
    pub client: NodeId,
    /// Pool member nodes, indexed by initial rank.
    pub servers: Vec<NodeId>,
    /// Pool member private IPs, indexed by initial rank.
    pub ips: Vec<Ipv4Addr>,
    /// The Ethernet switch.
    pub switch: SwitchId,
    /// Client ↔ switch link.
    pub link_client: LinkId,
    /// Member ↔ switch links, indexed by initial rank.
    pub server_links: Vec<LinkId>,
    /// The pairwise serial channels, in `(i, j), i < j` order.
    pub serials: Vec<SerialId>,
    /// The addressing plan.
    pub addressing: Addressing,
}

impl PoolScenario {
    /// Immutable access to pool member `i` (by initial rank).
    pub fn server(&self, i: usize) -> &StTcpServer {
        self.world
            .node::<StTcpServer>(self.servers[i])
            .expect("server type")
    }

    /// The client's observation log.
    pub fn client_log(&self) -> &ClientLog {
        self.world
            .node::<TcpClient>(self.client)
            .expect("client type")
            .log()
    }

    /// The connection key of the client's first connection (for digest
    /// and heartbeat assertions).
    pub fn first_conn_key(&self) -> u32 {
        conn_key(FourTuple {
            local: (self.addressing.service_ip, self.addressing.service_port),
            remote: (self.addressing.client_ip, 40_000),
        })
    }

    /// True once the client's workload completed.
    pub fn client_finished(&self) -> bool {
        self.world
            .node::<TcpClient>(self.client)
            .expect("client type")
            .is_finished()
    }

    /// Schedules a HW/OS crash of member `i`.
    pub fn crash_at(&mut self, i: usize, at: SimTime) {
        let node = self.servers[i];
        self.world.schedule(at, move |w| w.crash_node(node));
    }

    /// Schedules a warm reboot of member `i` (no-op if still powered).
    pub fn reboot_at(&mut self, i: usize, at: SimTime) {
        let node = self.servers[i];
        self.world.schedule(at, move |w| {
            if !w.is_powered(node) {
                w.restore_node(node);
            }
        });
    }
}

impl FaultSchedule {
    /// Schedules every action into a pool world. `Side::Primary` targets
    /// the rank-0 member and `Side::Backup` the rank-1 member (nodes and
    /// links alike); the remaining members are never addressed directly
    /// and act as the pool's depth. `SerialFail`/`SerialRestore` hit the
    /// rank-0 ↔ rank-1 cable; the rest of the mesh stays up.
    pub fn apply_pool(&self, s: &mut PoolScenario) {
        for ta in &self.actions {
            let at = SimTime::from_millis(ta.at_ms);
            let node = |side: Side| -> NodeId {
                match side {
                    Side::Primary => s.servers[0],
                    Side::Backup => s.servers[1],
                }
            };
            let link = |sel: LinkSel| -> LinkId {
                match sel {
                    LinkSel::Client => s.link_client,
                    LinkSel::Primary => s.server_links[0],
                    LinkSel::Backup => s.server_links[1],
                }
            };
            match ta.action {
                ChaosAction::Crash(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.crash_node(n));
                }
                ChaosAction::Reboot(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| {
                        if !w.is_powered(n) {
                            w.restore_node(n);
                        }
                    });
                }
                ChaosAction::NicDown(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.fail_nic(n, NicId(0)));
                }
                ChaosAction::NicUp(side) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| w.restore_nic(n, NicId(0)));
                }
                ChaosAction::LinkCut(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| w.cut_link(l));
                }
                ChaosAction::LinkRestore(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| w.restore_link(l));
                }
                ChaosAction::LinkLoss(sel, pct) => {
                    let l = link(sel);
                    let p = f64::from(pct.min(100)) / 100.0;
                    s.world.schedule(at, move |w| {
                        w.set_link_loss(l, LinkDir::AtoB, p);
                        w.set_link_loss(l, LinkDir::BtoA, p);
                    });
                }
                ChaosAction::LinkLossEnd(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.set_link_loss(l, LinkDir::AtoB, 0.0);
                        w.set_link_loss(l, LinkDir::BtoA, 0.0);
                    });
                }
                ChaosAction::DropTap(count) => {
                    let l = s.server_links[1];
                    let ip = s.addressing.service_ip;
                    Scenario::drop_tap(&mut s.world, l, ip, at, u64::from(count));
                }
                ChaosAction::CorruptFrames(sel, count) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.corrupt_frames(l, LinkDir::BtoA, u64::from(count))
                    });
                }
                ChaosAction::SerialFail => {
                    let ser = s.serials[0];
                    s.world.schedule(at, move |w| w.fail_serial(ser));
                }
                ChaosAction::SerialRestore => {
                    let ser = s.serials[0];
                    s.world.schedule(at, move |w| w.restore_serial(ser));
                }
                ChaosAction::AppCrash(side, mode) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| {
                        let now = w.now();
                        w.note_fault(format!("app crash ({mode:?}) on n{}", n.0));
                        if let Some(server) = w.node_mut::<StTcpServer>(n) {
                            server.inject_app_crash(now, mode);
                        }
                    });
                }
                ChaosAction::Dup(sel, count) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.dup_frames(l, LinkDir::BtoA, u64::from(count))
                    });
                }
                ChaosAction::Reorder(sel, count) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.reorder_frames(l, LinkDir::BtoA, u64::from(count))
                    });
                }
                ChaosAction::Jitter(sel, ms) => {
                    let l = link(sel);
                    let max = SimDuration::from_millis(u64::from(ms));
                    s.world.schedule(at, move |w| {
                        w.set_link_jitter(l, LinkDir::AtoB, max);
                        w.set_link_jitter(l, LinkDir::BtoA, max);
                    });
                }
                ChaosAction::JitterEnd(sel) => {
                    let l = link(sel);
                    s.world.schedule(at, move |w| {
                        w.set_link_jitter(l, LinkDir::AtoB, SimDuration::ZERO);
                        w.set_link_jitter(l, LinkDir::BtoA, SimDuration::ZERO);
                    });
                }
                ChaosAction::ByzantineHb(side, mode) => {
                    let n = node(side);
                    s.world.schedule(at, move |w| {
                        w.note_fault(format!("byzantine hb ({mode:?}) on n{}", n.0));
                        if let Some(server) = w.node_mut::<StTcpServer>(n) {
                            server.inject_byzantine_hb(mode);
                        }
                    });
                }
            }
        }
    }
}

/// Derives the [`PoolExpectation`] a schedule makes legitimate in a
/// three-member pool. Conservative in the same sense as
/// [`FaultSchedule::expectation`]: the strict envelope is only claimed
/// for the crash/reboot (and pure-byzantine) shapes the pool generators
/// emit; anything more exotic widens the envelope rather than risking a
/// false violation.
pub fn pool_expectation(schedule: &FaultSchedule) -> PoolExpectation {
    use ChaosAction::*;

    let crashes: Vec<u64> = schedule
        .actions
        .iter()
        .filter(|a| matches!(a.action, Crash(_)))
        .map(|a| a.at_ms)
        .collect();

    // A takeover chain needs the previous fence to complete before the
    // next active dies: with crashes packed tighter than detection +
    // fence + STONITH, the last survivor can end up a minority that is
    // (correctly) unable to assemble a quorum — blocked, not split.
    let crashes_packed = crashes
        .windows(2)
        .any(|w| w[1].saturating_sub(w[0]) < 2_000);

    let pure_byzantine = !schedule.actions.is_empty()
        && schedule
            .actions
            .iter()
            .all(|a| matches!(a.action, ByzantineHb(..)));

    // Beyond crash/reboot/byzantine the pool envelope is not modeled
    // precisely; widen it instead of guessing.
    let exotic = schedule
        .actions
        .iter()
        .any(|a| !matches!(a.action, Crash(_) | Reboot(_) | ByzantineHb(..)));

    PoolExpectation {
        service_may_be_lost: crashes_packed || exotic,
        unrecoverable_gap_possible: exotic,
        verdicts_possible: !schedule.actions.is_empty(),
        // One takeover per crash, plus one for a byzantine active that
        // gets condemned and fenced by the honest majority.
        max_takeovers: crashes.len() as u32 + u32::from(pure_byzantine),
        max_stall: if exotic {
            None
        } else {
            Some(SimDuration::from_secs(15))
        },
    }
}

/// Everything a pool chaos run produced.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// The checker's classification.
    pub outcome: Outcome,
    /// Violated invariants (empty unless `outcome` is `Violation`).
    pub violations: Vec<Violation>,
    /// The client as the checker saw it.
    pub client: ClientView,
    /// Every member's event log, indexed by initial rank.
    pub member_events: Vec<Vec<StTcpEvent>>,
    /// Every member's rank at end of run (rejoiners get fresh ranks).
    pub final_ranks: Vec<u8>,
    /// Which member (by initial rank) ended the run active, if any.
    pub active_at_end: Option<usize>,
    /// `(start, end)` of the longest client stall, when measurable.
    pub stall_window: Option<(SimTime, SimTime)>,
    /// Every injected fault, as `(time, description)` in injection order.
    pub faults: Vec<(SimTime, String)>,
    /// Flight-recorder tail, captured when the run violated an
    /// invariant (or when [`ChaosOptions::flight_always`] asked for
    /// it). Deliberately excluded from [`PoolReport::fingerprint`].
    pub flight: Option<simnet::flight::FlightSnapshot>,
}

impl PoolReport {
    /// A stable digest of everything observable — equal `(seed,
    /// schedule, opts)` must produce equal fingerprints regardless of
    /// thread count (what `tests/pool.rs` pins).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(format!("{:?}", self.outcome).as_bytes());
        eat(format!("{:?}", self.violations).as_bytes());
        eat(format!("{:?}", self.client).as_bytes());
        eat(format!("{:?}", self.member_events).as_bytes());
        eat(format!("{:?}", self.final_ranks).as_bytes());
        h
    }

    /// Total takeovers observed across the pool.
    pub fn takeovers(&self) -> u64 {
        self.member_events
            .iter()
            .flatten()
            .filter(|e| matches!(e, StTcpEvent::TookOver { .. }))
            .count() as u64
    }
}

/// Runs one pool chaos case: three replicas, verifying download
/// workload, re-integration enabled (rebooted members rejoin as fresh
/// backups), then [`invariant::check_pool`]. Fully deterministic in
/// `(seed, schedule, opts)`.
pub fn run_pool_case(seed: u64, schedule: &FaultSchedule, opts: &ChaosOptions) -> PoolReport {
    let mut s = PoolScenarioBuilder::new(
        Rc::new(|| Box::new(StreamApp::new(4096, false)) as _),
        ClientWorkload::Download {
            total: opts.total_bytes,
        },
    )
    .seed(seed)
    .sttcp(StTcpConfig {
        reintegrate: true,
        ..chaos_config()
    })
    .build();

    if !opts.trace {
        s.world.set_trace_capacity(opts.trace_capacity);
    }
    schedule.apply_pool(&mut s);
    let end = SimTime::ZERO + opts.horizon;
    s.world.run_until(end);

    if opts.trace {
        for r in s.world.trace().records() {
            eprintln!("{r}");
        }
    }

    let scheduled_crash = |i: usize| -> Option<SimTime> {
        let side = match i {
            0 => Side::Primary,
            1 => Side::Backup,
            _ => return None,
        };
        schedule
            .actions
            .iter()
            .filter(|a| a.action == ChaosAction::Crash(side))
            .map(|a| SimTime::from_millis(a.at_ms))
            .min()
    };

    let n = s.servers.len();
    let mut views = Vec::with_capacity(n);
    let mut member_events = Vec::with_capacity(n);
    let mut final_ranks = Vec::with_capacity(n);
    let mut active_at_end = None;
    for i in 0..n {
        let srv = s.server(i);
        let events = srv.events().to_vec();
        views.push(ServerView {
            configured_role: if i == 0 { Role::Primary } else { Role::Backup },
            events: events.clone(),
            powered_off_at: srv.was_powered_off().then(|| scheduled_crash(i)).flatten(),
            cold_standby: srv.cold_standby(),
            active_at_end: srv.is_active(),
        });
        if srv.is_active() {
            active_at_end = Some(i);
        }
        member_events.push(events);
        final_ranks.push(srv.pool_rank());
    }

    let log = s.client_log();
    let from = log
        .connects
        .first()
        .copied()
        .unwrap_or(SimTime::from_millis(100));
    let to = log.finished_at.unwrap_or(end);
    let client = ClientView {
        bytes_ok: log.total_received,
        integrity_violations: log.integrity_violations,
        resets: u64::from(log.resets),
        finished: s.client_finished(),
        longest_stall: log.longest_stall(from, to),
    };

    let report = invariant::check_pool(&views, &client, &pool_expectation(schedule));
    let flight = (report.outcome == Outcome::Violation || opts.flight_always).then(|| {
        s.world
            .flight_snapshot(opts.flight_window_ms.map(SimDuration::from_millis))
    });
    PoolReport {
        outcome: report.outcome,
        violations: report.violations,
        client,
        member_events,
        final_ranks,
        active_at_end,
        stall_window: log.longest_stall_window(from, to),
        faults: s.world.faults().to_vec(),
        flight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_schedules_are_coherent() {
        let a = FaultSchedule::generate_pool(3);
        assert_eq!(a, FaultSchedule::generate_pool(3));
        for seed in 0..100 {
            let s = FaultSchedule::generate_pool(seed);
            let crashes: Vec<&crate::chaos::TimedAction> = s
                .actions
                .iter()
                .filter(|t| matches!(t.action, ChaosAction::Crash(_)))
                .collect();
            assert_eq!(crashes.len(), 2, "seed {seed}: {s}");
            assert_eq!(crashes[0].action, ChaosAction::Crash(Side::Primary));
            assert_eq!(crashes[1].action, ChaosAction::Crash(Side::Backup));
            assert!(
                crashes[1].at_ms >= crashes[0].at_ms + 2_500,
                "seed {seed}: second kill must wait for the first fence: {s}"
            );
            let reparsed: FaultSchedule = s.to_string().parse().unwrap();
            assert_eq!(reparsed, s, "seed {seed}");
            let exp = pool_expectation(&s);
            assert!(!exp.service_may_be_lost, "seed {seed}: {s}");
            assert_eq!(exp.max_takeovers, 2);
            assert!(exp.verdicts_possible);
        }
    }

    #[test]
    fn pool_expectation_widens_for_packed_or_exotic_schedules() {
        let packed: FaultSchedule = "@500 crash primary; @900 crash backup".parse().unwrap();
        let e = pool_expectation(&packed);
        assert!(e.service_may_be_lost, "minority survivor may block");

        let exotic: FaultSchedule = "@500 crash primary; @600 loss client 30; @900 loss-end client"
            .parse()
            .unwrap();
        let e = pool_expectation(&exotic);
        assert!(e.service_may_be_lost);
        assert!(e.max_stall.is_none());

        let byz: FaultSchedule = "@500 byz-hb primary regress".parse().unwrap();
        let e = pool_expectation(&byz);
        assert!(!e.service_may_be_lost);
        assert_eq!(e.max_takeovers, 1);

        let quiet = FaultSchedule::default();
        assert!(!pool_expectation(&quiet).verdicts_possible);
    }

    #[test]
    fn quiet_pool_run_is_clean_and_silent() {
        let schedule = FaultSchedule::default();
        let report = run_pool_case(11, &schedule, &ChaosOptions::quick());
        assert_eq!(report.outcome, Outcome::Clean, "{:?}", report.violations);
        assert!(report.client.finished);
        assert_eq!(report.takeovers(), 0);
        assert_eq!(report.active_at_end, Some(0));
        assert_eq!(report.final_ranks, vec![0, 1, 2]);
    }

    #[test]
    fn active_kill_fails_over_by_rank_with_quorum_fence() {
        let schedule: FaultSchedule = "@800 crash primary".parse().unwrap();
        let report = run_pool_case(7, &schedule, &ChaosOptions::quick());
        assert_eq!(
            report.outcome,
            Outcome::Recovered,
            "{:?}",
            report.violations
        );
        assert!(report.client.finished);
        assert_eq!(report.takeovers(), 1);
        // The lowest-rank live backup, not the deeper one, takes over.
        assert_eq!(report.active_at_end, Some(1));
        let rank1 = &report.member_events[1];
        let quorum = rank1
            .iter()
            .find_map(|e| match e {
                StTcpEvent::FenceQuorumReached { votes, at, .. } => Some((*votes, *at)),
                _ => None,
            })
            .expect("taker must reach a fence quorum");
        // Both survivors vote: the candidate plus the rank-2 witness.
        assert_eq!(quorum.0, 2);
        let took = rank1
            .iter()
            .find_map(|e| match e {
                StTcpEvent::TookOver { at } => Some(*at),
                _ => None,
            })
            .unwrap();
        assert!(quorum.1 <= took);
    }

    #[test]
    fn sequential_kills_exhaust_to_deepest_backup() {
        let schedule: FaultSchedule = "@800 crash primary; @4500 crash backup".parse().unwrap();
        let report = run_pool_case(19, &schedule, &ChaosOptions::default());
        assert_eq!(
            report.outcome,
            Outcome::Recovered,
            "{:?}",
            report.violations
        );
        assert!(report.client.finished);
        assert_eq!(report.takeovers(), 2);
        assert_eq!(report.active_at_end, Some(2));
    }

    #[test]
    fn rebooted_member_rejoins_with_fresh_rank() {
        let schedule: FaultSchedule = "@800 crash primary; @1500 reboot primary".parse().unwrap();
        let report = run_pool_case(23, &schedule, &ChaosOptions::default());
        assert_eq!(
            report.outcome,
            Outcome::Recovered,
            "{:?}",
            report.violations
        );
        assert!(report.client.finished);
        // The ex-active rejoined under a rank behind every configured one.
        assert!(
            report.final_ranks[0] >= 3,
            "rejoiner kept rank {} instead of moving to the back",
            report.final_ranks[0]
        );
        assert!(report.member_events[0]
            .iter()
            .any(|e| matches!(e, StTcpEvent::ReintegrationCompleted { .. })));
    }

    #[test]
    fn pool_case_is_deterministic() {
        let schedule = FaultSchedule::generate_pool(5);
        let a = run_pool_case(5, &schedule, &ChaosOptions::quick());
        let b = run_pool_case(5, &schedule, &ChaosOptions::quick());
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
