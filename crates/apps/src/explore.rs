//! Bounded-exhaustive fault-timing exploration: the milestone lattice.
//!
//! Random chaos ([`crate::chaos`]) samples the fault-timing space; this
//! module *enumerates* a bounded slice of it. A fault-free probe run is
//! harvested for protocol milestones ([`sttcp::milestone`]): connection
//! establishment, first data byte, hold-buffer arming, each heartbeat
//! round, FIN hold/release. Fault injection times are then quantized to
//! a lattice anchored on those milestones — at each one, just before,
//! just after, and midway between each adjacent pair — so a bug that
//! only fires in the narrow window between two protocol events occupies
//! a lattice point by construction instead of waiting for a lucky seed.
//!
//! The action grammar is pruned to the faults whose *timing* matters:
//! crash, NIC failure, cable cut, serial failure, application crash,
//! byzantine heartbeats — the one-shot state transitions — plus *flap*
//! composites (a NIC / cable / serial outage repaired after a fixed
//! dwell). Flaps are first-class grammar actions because several
//! protocol windows only open *after* a repair — a retransmission
//! backlog draining through a healed NIC, reintegration over a healed
//! cable — and no single one-shot action can open them. Budgeted
//! episodes (loss bursts, corruption, jitter) are left to the random
//! hunt; their effect integrates over a window, so milestone-relative
//! placement adds nothing an episode straddling the milestone does not
//! already cover.
//!
//! Two tiers are enumerated:
//!
//! * **1-fault**: every grammar action at every anchor (including the
//!   ±ε and between-milestone anchors).
//! * **2-fault**: every ordered pair of grammar actions; the first at
//!   every milestone `At` time, the second at every later milestone
//!   time *and* at a fixed set of protocol-characteristic offsets
//!   after the first (ε, half and full heartbeat period, the detection
//!   timeout, the flap dwell and dwell-plus-periods). The offsets
//!   exist because the first fault shifts every downstream milestone —
//!   the fault-free trace's absolute times stop describing the
//!   perturbed run's phases — so the second fault is also quantized
//!   *relative to the first*. Pairs are canonicalized: same-instant
//!   pairs run in one representative order (the mirrored schedule is
//!   behaviorally a permutation of the same injection batch), and
//!   vacuous second actions are pruned.
//!
//! **Pruning soundness.** A pruned point is never silently dropped from
//! a violation class; each rule removes only schedules whose observable
//! behavior equals that of a *retained* schedule:
//!
//! * *Mirror canonicalization* (same-instant pairs): both orders inject
//!   the same action set at the same virtual instant; the retained
//!   representative exercises the same batch.
//! * *Dead-node vacuity*: after `crash s`, any second action on node
//!   `s` (its NIC, link, application, heartbeat source) acts on a
//!   powered-off node. The world is byte-identical to the retained
//!   1-fault schedule `crash s`, which is always in the lattice.
//! * *Idempotent re-injection*: a second `app-crash` on an already-dead
//!   application, a second `serial-fail` on a dead cable, or an exact
//!   repeat of a one-shot action changes nothing; the retained 1-fault
//!   point covers it. An identical *flap* repeated at the same instant
//!   is likewise a duplicate injection batch — but a repeat at a later
//!   time is two spaced (or overlap-extended) outages, a genuinely new
//!   schedule, and is retained.
//!
//! Every lattice point runs through [`run_chaos_case`] and is judged by
//! the same [`sttcp::invariant::check`] oracle as the random hunt;
//! violations shrink through the same [`shrink_schedule`] delta
//! debugger. Enumeration order is deterministic, so a fold over
//! [`Lattice::schedules`] is bit-identical at any thread count.

use std::collections::{BTreeMap, BTreeSet};

use sttcp::events::StTcpEvent;
use sttcp::invariant::Outcome;
use sttcp::milestone::{harvest, Milestone, MilestoneKind};
use sttcp::server::{AppCrashMode, ByzantineHbMode};

use crate::chaos::{
    chaos_config, run_chaos_case, shrink_schedule, ChaosAction, ChaosOptions, ChaosReport,
    FaultSchedule, LinkSel, ShrinkResult, Side,
};

/// Schema identifier stamped into every coverage report this explorer
/// emits; bump when the report layout changes.
pub const EXPLORE_SCHEMA_VERSION: u32 = 1;

/// How far "just before" / "just after" anchors sit from their
/// milestone, in virtual milliseconds. Small enough to land inside the
/// same protocol phase, large enough to order distinctly against the
/// milestone's own event batch.
pub const EPSILON_MS: u64 = 5;

/// Dwell of a flap composite: how long the faulted resource stays down
/// before the matching repair fires, in virtual milliseconds. Chosen
/// to out-last the heartbeat detection timeout (3 × 200 ms) so a flap
/// is *observable* as an outage — a shorter flap is a strictly gentler
/// version of the same transition pair.
pub const FLAP_DWELL_MS: u64 = 800;

/// One grammar element: a single one-shot fault, or a transient *flap*
/// composite — `fault` at the anchor, `repair` [`FLAP_DWELL_MS`]
/// later. A flap occupies one grammar slot: treating the outage and
/// its repair as separate lattice faults would spend both slots of a
/// 2-fault schedule on the outage alone and leave nothing to compose
/// with the post-repair window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrammarOp {
    /// A single one-shot fault.
    Single(ChaosAction),
    /// `fault` at the anchor, `repair` [`FLAP_DWELL_MS`] later.
    Flap {
        /// The outage injected at the anchor.
        fault: ChaosAction,
        /// The matching repair, [`FLAP_DWELL_MS`] after the anchor.
        repair: ChaosAction,
    },
}

impl GrammarOp {
    /// The action injected at the anchor itself. Vacuity reasons about
    /// this initiating transition: a repair on a node that a prior
    /// fault powered off is as inert as its fault.
    pub fn initiating(self) -> ChaosAction {
        match self {
            GrammarOp::Single(a) | GrammarOp::Flap { fault: a, .. } => a,
        }
    }

    /// Appends this op's timed actions to `s`, anchored at `at_ms`.
    pub fn push_onto(self, s: &mut FaultSchedule, at_ms: u64) {
        match self {
            GrammarOp::Single(a) => s.push(at_ms, a),
            GrammarOp::Flap { fault, repair } => {
                s.push(at_ms, fault);
                s.push(at_ms + FLAP_DWELL_MS, repair);
            }
        }
    }
}

/// The pruned action grammar: the one-shot state-transition faults
/// whose injection *timing* is the variable under test, plus the flap
/// composites, enumerated in a fixed canonical order (pair
/// canonicalization compares indices into this list).
pub fn grammar() -> Vec<GrammarOp> {
    let mut g = Vec::new();
    for side in [Side::Primary, Side::Backup] {
        g.push(GrammarOp::Single(ChaosAction::Crash(side)));
        g.push(GrammarOp::Single(ChaosAction::NicDown(side)));
        g.push(GrammarOp::Single(ChaosAction::LinkCut(side.link())));
        for mode in [
            AppCrashMode::SilentNoCleanup,
            AppCrashMode::CleanupFin,
            AppCrashMode::CleanupRst,
        ] {
            g.push(GrammarOp::Single(ChaosAction::AppCrash(side, mode)));
        }
        for mode in [ByzantineHbMode::Freeze, ByzantineHbMode::Regress] {
            g.push(GrammarOp::Single(ChaosAction::ByzantineHb(side, mode)));
        }
        g.push(GrammarOp::Flap {
            fault: ChaosAction::NicDown(side),
            repair: ChaosAction::NicUp(side),
        });
        g.push(GrammarOp::Flap {
            fault: ChaosAction::LinkCut(side.link()),
            repair: ChaosAction::LinkRestore(side.link()),
        });
    }
    g.push(GrammarOp::Single(ChaosAction::SerialFail));
    g.push(GrammarOp::Flap {
        fault: ChaosAction::SerialFail,
        repair: ChaosAction::SerialRestore,
    });
    g
}

/// The quantized offsets at which the pair tier places its second
/// fault relative to the first, in virtual milliseconds: ε, half and
/// full heartbeat period, the detection timeout, and the flap dwell
/// alone and stretched by heartbeat periods (the windows right after a
/// flap's repair). Derived from [`chaos_config`], so the offsets track
/// the protocol's actual timescales.
pub fn pair_offsets() -> Vec<u64> {
    let cfg = chaos_config();
    let hp = cfg.hb_period.as_millis();
    let ht = cfg.hb_timeout().as_millis();
    let mut offs = vec![
        EPSILON_MS,
        hp / 2,
        hp,
        ht,
        FLAP_DWELL_MS,
        FLAP_DWELL_MS + hp / 2,
        FLAP_DWELL_MS + hp,
        FLAP_DWELL_MS + 2 * hp,
    ];
    offs.sort_unstable();
    offs.dedup();
    offs.retain(|&d| d > 0);
    offs
}

/// Where an anchor sits relative to its milestone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnchorKind {
    /// `EPSILON_MS` before the milestone.
    Before,
    /// Exactly at the milestone.
    At,
    /// `EPSILON_MS` after the milestone.
    After,
    /// Midway between this milestone and the next distinct one.
    Between,
}

impl AnchorKind {
    /// Stable key for coverage reports.
    pub fn key(self) -> &'static str {
        match self {
            AnchorKind::Before => "before",
            AnchorKind::At => "at",
            AnchorKind::After => "after",
            AnchorKind::Between => "between",
        }
    }
}

/// One quantized injection time, tagged with the milestone that anchors
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Anchor {
    /// Injection time in virtual milliseconds.
    pub at_ms: u64,
    /// Position relative to the anchoring milestone.
    pub kind: AnchorKind,
    /// The anchoring milestone (for `Between`, the earlier one).
    pub milestone: MilestoneKind,
}

/// Builds the full anchor set from a harvested milestone list: at /
/// just-before / just-after each milestone, plus the midpoint between
/// each adjacent pair of distinct milestone times. Deduplicated by time
/// (first tag wins), time 0 excluded (the world needs one instant of
/// healthy start-up for a "before everything" point to differ from not
/// running at all — the empty schedule covers that).
pub fn anchors(milestones: &[Milestone]) -> Vec<Anchor> {
    // Distinct milestone times in order, each with the first kind
    // harvested at that time (milestones arrive sorted by (at, kind)).
    let mut times: Vec<(u64, MilestoneKind)> = Vec::new();
    for m in milestones {
        let ms = m.at.as_millis();
        if times.last().map(|&(t, _)| t) != Some(ms) {
            times.push((ms, m.kind));
        }
    }

    let mut out: Vec<Anchor> = Vec::new();
    let mut push = |at_ms: u64, kind: AnchorKind, milestone: MilestoneKind| {
        if at_ms > 0 && !out.iter().any(|a| a.at_ms == at_ms) {
            out.push(Anchor {
                at_ms,
                kind,
                milestone,
            });
        }
    };
    for &(t, kind) in &times {
        push(t.saturating_sub(EPSILON_MS), AnchorKind::Before, kind);
        push(t, AnchorKind::At, kind);
        push(t + EPSILON_MS, AnchorKind::After, kind);
    }
    for w in times.windows(2) {
        let (t1, kind) = w[0];
        let t2 = w[1].0;
        push(t1 + (t2 - t1) / 2, AnchorKind::Between, kind);
    }
    out.sort_by_key(|a| a.at_ms);
    out
}

/// The node a grammar action acts on or through — `None` for the serial
/// cable, which belongs to both.
fn side_of(a: ChaosAction) -> Option<Side> {
    match a {
        ChaosAction::Crash(s)
        | ChaosAction::NicDown(s)
        | ChaosAction::AppCrash(s, _)
        | ChaosAction::ByzantineHb(s, _) => Some(s),
        ChaosAction::LinkCut(LinkSel::Primary) => Some(Side::Primary),
        ChaosAction::LinkCut(LinkSel::Backup) => Some(Side::Backup),
        _ => None,
    }
}

/// True when `second`, injected at or after `first` (`same_instant`
/// says which), cannot change the world's observable behavior — see
/// the module docs for why each rule maps the pruned pair onto a
/// retained schedule.
pub fn vacuous_after(first: GrammarOp, second: GrammarOp, same_instant: bool) -> bool {
    // The node is powered off: nothing on it — fault or repair — can
    // observably change.
    if let GrammarOp::Single(ChaosAction::Crash(s)) = first {
        return side_of(second.initiating()) == Some(s);
    }
    match (first, second) {
        // The application is already gone; crash mode of a dead app is
        // unobservable.
        (
            GrammarOp::Single(ChaosAction::AppCrash(s, _)),
            GrammarOp::Single(ChaosAction::AppCrash(s2, _)),
        ) => s == s2,
        // One-shot re-injection: a dead cable stays dead, a downed NIC
        // stays down, a byzantine mode re-armed is the same lie.
        (GrammarOp::Single(a), GrammarOp::Single(b)) => a == b,
        // An identical flap at the same instant duplicates the batch;
        // a repeat at a later time is a spaced or overlap-extended
        // double outage — a real schedule — and is retained.
        (GrammarOp::Flap { .. }, _) => same_instant && first == second,
        _ => false,
    }
}

/// The enumerated lattice: every schedule to run, in deterministic
/// order, plus the bookkeeping a coverage report needs.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Milestones the anchors were derived from.
    pub milestones: Vec<Milestone>,
    /// The full anchor set (1-fault tier).
    pub anchors: Vec<Anchor>,
    /// The relative offsets the pair tier adds to each first-fault
    /// time ([`pair_offsets`]).
    pub offsets: Vec<u64>,
    /// Every lattice point, 1-fault tier first, then the canonicalized
    /// 2-fault tier, in enumeration order.
    pub schedules: Vec<FaultSchedule>,
    /// Points in the 1-fault tier (prefix of `schedules`).
    pub single_points: usize,
    /// Ordered `(t1, t2)` time pairs the pair tier enumerated (the raw
    /// pair product is this times the squared grammar size).
    pub pair_time_pairs: usize,
    /// Points in the 2-fault tier.
    pub pair_points: usize,
    /// Same-instant mirror pairs canonicalized away.
    pub mirrored_pruned: usize,
    /// Vacuous second actions pruned.
    pub vacuous_pruned: usize,
}

/// Enumerates the lattice for a milestone list. 1-fault points use all
/// anchors; 2-fault points anchor the first fault at the milestone
/// `At` times (the ±ε / midpoint refinement is a single-fault luxury —
/// quadratic in pairs it would outgrow a nightly budget without adding
/// a new *ordering* of protocol phases) and the second fault at every
/// later `At` time plus every [`pair_offsets`] delta after the first.
pub fn build_lattice(milestones: &[Milestone]) -> Lattice {
    let g = grammar();
    let offsets = pair_offsets();
    let anchor_list = anchors(milestones);
    let at_times: Vec<u64> = anchor_list
        .iter()
        .filter(|a| a.kind == AnchorKind::At)
        .map(|a| a.at_ms)
        .collect();

    let mut schedules = Vec::new();
    for a in &anchor_list {
        for &op in &g {
            let mut s = FaultSchedule::default();
            op.push_onto(&mut s, a.at_ms);
            s.sort();
            schedules.push(s);
        }
    }
    let single_points = schedules.len();

    let mut mirrored = 0usize;
    let mut vacuous = 0usize;
    let mut time_pairs = 0usize;
    for (i1, &t1) in at_times.iter().enumerate() {
        // Second-fault times: later milestones, plus the quantized
        // offsets after t1. BTreeSet dedups the collisions (an offset
        // landing exactly on a milestone) and fixes enumeration order.
        let mut t2s: BTreeSet<u64> = at_times[i1..].iter().copied().collect();
        for &d in &offsets {
            t2s.insert(t1 + d);
        }
        for &t2 in &t2s {
            time_pairs += 1;
            for (g1, &op1) in g.iter().enumerate() {
                for (g2, &op2) in g.iter().enumerate() {
                    if t1 == t2 && g1 > g2 {
                        mirrored += 1;
                        continue;
                    }
                    if vacuous_after(op1, op2, t1 == t2) {
                        vacuous += 1;
                        continue;
                    }
                    let mut s = FaultSchedule::default();
                    op1.push_onto(&mut s, t1);
                    op2.push_onto(&mut s, t2);
                    s.sort();
                    schedules.push(s);
                }
            }
        }
    }
    let pair_points = schedules.len() - single_points;

    Lattice {
        milestones: milestones.to_vec(),
        anchors: anchor_list,
        offsets,
        schedules,
        single_points,
        pair_time_pairs: time_pairs,
        pair_points,
        mirrored_pruned: mirrored,
        vacuous_pruned: vacuous,
    }
}

/// Runs the fault-free probe and harvests its milestones. The probe
/// runs under the same `(seed, opts)` as every lattice point, so the
/// milestones are exactly the phase boundaries the faulted runs will
/// perturb.
pub fn probe_milestones(seed: u64, opts: &ChaosOptions) -> (Vec<Milestone>, ChaosReport) {
    let report = run_chaos_case(seed, &FaultSchedule::default(), opts);
    let ms = harvest(
        &report.primary_events,
        &report.backup_events,
        chaos_config().hb_period,
    );
    (ms, report)
}

/// What one lattice point produced, reduced to what the fold needs.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// The checker's classification.
    pub outcome: Outcome,
    /// Stable digest of everything observable in the run.
    pub fingerprint: u64,
    /// Detector verdicts fired in either server's log, by stable key,
    /// in log order (verdict-matrix coverage).
    pub verdicts: Vec<&'static str>,
    /// Violated invariant names (empty unless `outcome` is
    /// `Violation`).
    pub violated: Vec<&'static str>,
}

/// Executes one lattice point and reduces it to a [`CaseResult`].
pub fn explore_case(seed: u64, schedule: &FaultSchedule, opts: &ChaosOptions) -> CaseResult {
    let report = run_chaos_case(seed, schedule, opts);
    let verdicts = report
        .primary_events
        .iter()
        .chain(report.backup_events.iter())
        .filter_map(|e| match e {
            StTcpEvent::PeerDeclaredFailed { reason, .. } => Some(reason.key()),
            _ => None,
        })
        .collect();
    CaseResult {
        outcome: report.outcome,
        fingerprint: report.fingerprint(),
        verdicts,
        violated: report.violations.iter().map(|v| v.invariant).collect(),
    }
}

/// A lattice point that violated an invariant, with its shrunk
/// reproducer.
#[derive(Debug, Clone)]
pub struct ViolationCase {
    /// Index into [`Lattice::schedules`].
    pub index: usize,
    /// The violating schedule as enumerated.
    pub schedule: FaultSchedule,
    /// Violated invariant names, sorted (the dedup class key).
    pub invariants: Vec<&'static str>,
    /// The shrunk reproducer.
    pub shrunk: FaultSchedule,
    /// Chaos runs the shrinker spent.
    pub shrink_runs: usize,
    /// Flight-recorder tail from replaying the shrunk reproducer — the
    /// trace that ships with the repro.
    pub flight: Option<simnet::flight::FlightSnapshot>,
}

/// Order-sensitive fold of an exploration — build it by calling
/// [`ExploreSummary::add`] over case results **in lattice order**; the
/// result (and any report rendered from it) is then bit-identical at
/// any thread count.
#[derive(Debug, Clone, Default)]
pub struct ExploreSummary {
    /// Lattice points executed.
    pub points: usize,
    /// Count per [`Outcome`], keyed by stable name.
    pub outcomes: BTreeMap<&'static str, u64>,
    /// Distinct behavior fingerprints, with multiplicity.
    pub fingerprints: BTreeMap<u64, u64>,
    /// Verdict-matrix coverage: detector key → points where it fired.
    pub verdict_cells: BTreeMap<&'static str, u64>,
    /// Violating points in lattice order, one per distinct invariant
    /// class (later points repeating an already-seen class are counted
    /// in `violation_points` but not shrunk again).
    pub violations: Vec<ViolationCase>,
    /// Total violating points, including class repeats.
    pub violation_points: usize,
}

/// Stable name for an outcome, used as a report key.
pub fn outcome_key(o: Outcome) -> &'static str {
    match o {
        Outcome::Clean => "clean",
        Outcome::Recovered => "recovered",
        Outcome::DetectedUnrecoverable => "detected_unrecoverable",
        Outcome::ServiceLost => "service_lost",
        Outcome::Violation => "violation",
    }
}

impl ExploreSummary {
    /// Folds one case result in. `shrink` maps a violating schedule to
    /// its minimized reproducer — pass [`shrink_point`] for the real
    /// thing; tests stub it to keep folds cheap.
    pub fn add(
        &mut self,
        index: usize,
        schedule: &FaultSchedule,
        case: &CaseResult,
        shrink: &mut dyn FnMut(&FaultSchedule) -> ShrinkResult,
    ) {
        self.points += 1;
        *self.outcomes.entry(outcome_key(case.outcome)).or_insert(0) += 1;
        *self.fingerprints.entry(case.fingerprint).or_insert(0) += 1;
        let mut seen = Vec::new();
        for v in &case.verdicts {
            if !seen.contains(v) {
                seen.push(v);
                *self.verdict_cells.entry(v).or_insert(0) += 1;
            }
        }
        if case.outcome == Outcome::Violation {
            self.violation_points += 1;
            let mut invariants = case.violated.clone();
            invariants.sort_unstable();
            invariants.dedup();
            if !self.violations.iter().any(|v| v.invariants == invariants) {
                let r = shrink(schedule);
                self.violations.push(ViolationCase {
                    index,
                    schedule: schedule.clone(),
                    invariants,
                    shrunk: r.schedule,
                    shrink_runs: r.runs,
                    flight: r.flight,
                });
            }
        }
    }
}

/// The real shrinker for [`ExploreSummary::add`]: delta-debug the
/// schedule under the same `(seed, opts)` that exposed it.
pub fn shrink_point(seed: u64, opts: &ChaosOptions, schedule: &FaultSchedule) -> ShrinkResult {
    shrink_schedule(seed, schedule, opts)
}

/// A deterministic stride subset of `total` lattice indices with at
/// most `budget` members, spanning the whole lattice — the PR-CI smoke
/// runs this; the nightly tier runs everything. Returns all indices
/// when the budget covers them.
pub fn budget_indices(total: usize, budget: usize) -> Vec<usize> {
    if budget == 0 || total == 0 {
        return Vec::new();
    }
    if budget >= total {
        return (0..total).collect();
    }
    // Evenly spaced without floats: index i*total/budget is strictly
    // increasing because budget < total.
    (0..budget).map(|i| i * total / budget).collect()
}

/// Default explore horizon/size knobs: the quick chaos profile. One
/// lattice has tens of thousands of points; each must stay cheap.
pub fn explore_opts() -> ChaosOptions {
    ChaosOptions::quick()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simnet::time::SimTime;
    use sttcp::milestone::MilestoneKind;

    fn ms(kind: MilestoneKind, at_ms: u64) -> Milestone {
        Milestone {
            kind,
            at: SimTime::from_millis(at_ms),
        }
    }

    #[test]
    fn grammar_is_fixed_and_deduplicated() {
        let g = grammar();
        assert_eq!(g.len(), 22);
        for (i, a) in g.iter().enumerate() {
            assert!(!g[..i].contains(a), "duplicate grammar op {a:?}");
        }
        let flaps = g
            .iter()
            .filter(|op| matches!(op, GrammarOp::Flap { .. }))
            .count();
        assert_eq!(flaps, 5, "nic x2, cable x2, serial");
        // Every flap pairs a fault with its matching repair kind.
        for op in &g {
            if let GrammarOp::Flap { fault, repair } = op {
                let expected = match fault.kind() {
                    "nic-down" => "nic-up",
                    "cut" => "restore",
                    "serial-fail" => "serial-restore",
                    other => panic!("unexpected flap fault kind {other}"),
                };
                assert_eq!(repair.kind(), expected);
            }
        }
    }

    #[test]
    fn pair_offsets_are_sorted_positive_and_cover_the_flap_dwell() {
        let offs = pair_offsets();
        assert!(offs.windows(2).all(|w| w[0] < w[1]));
        assert!(offs.iter().all(|&d| d > 0));
        assert!(offs.contains(&EPSILON_MS));
        assert!(offs.contains(&FLAP_DWELL_MS));
        // At least one offset strictly after the dwell: the post-repair
        // window a flap exists to open.
        assert!(offs.iter().any(|&d| d > FLAP_DWELL_MS));
    }

    #[test]
    fn flap_expands_to_fault_then_repair() {
        let op = GrammarOp::Flap {
            fault: ChaosAction::NicDown(Side::Primary),
            repair: ChaosAction::NicUp(Side::Primary),
        };
        let mut s = FaultSchedule::default();
        op.push_onto(&mut s, 200);
        s.sort();
        assert_eq!(s.to_string(), "@200 nic-down primary; @1000 nic-up primary");
        assert_eq!(op.initiating(), ChaosAction::NicDown(Side::Primary));
    }

    #[test]
    fn anchors_cover_before_at_after_and_midpoints() {
        let m = [
            ms(MilestoneKind::Established, 30),
            ms(MilestoneKind::HoldArmed, 30),
            ms(MilestoneKind::HbRound(1), 200),
        ];
        let a = anchors(&m);
        let at = |t: u64| a.iter().find(|x| x.at_ms == t);
        assert_eq!(at(25).unwrap().kind, AnchorKind::Before);
        assert_eq!(at(30).unwrap().kind, AnchorKind::At);
        assert_eq!(at(35).unwrap().kind, AnchorKind::After);
        assert_eq!(at(115).unwrap().kind, AnchorKind::Between);
        assert_eq!(at(200).unwrap().kind, AnchorKind::At);
        // Sorted, unique, no time-zero anchor.
        assert!(a.windows(2).all(|w| w[0].at_ms < w[1].at_ms));
        assert!(a.iter().all(|x| x.at_ms > 0));
    }

    #[test]
    fn pair_tier_is_canonicalized_and_pruned() {
        let m = [
            ms(MilestoneKind::Established, 100),
            ms(MilestoneKind::HbRound(1), 200),
        ];
        let lat = build_lattice(&m);
        let g = grammar().len();
        assert_eq!(lat.single_points, lat.anchors.len() * g);
        assert!(lat.mirrored_pruned > 0);
        assert!(lat.vacuous_pruned > 0);
        // Each at-time contributes the later at-times plus the offset
        // grid (deduplicated): t1=100 collides with the 200 milestone
        // via the hb-period offset, t1=200 has only itself as a later
        // milestone.
        let offs = pair_offsets();
        assert_eq!(lat.pair_time_pairs, (2 + offs.len() - 1) + (1 + offs.len()));
        // Every pair schedule is time-sorted and holds 2–4 timed
        // actions (two singles up to two flaps).
        for s in &lat.schedules[lat.single_points..] {
            assert!((2..=4).contains(&s.len()), "bad pair arity {s}");
            assert!(s.actions.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        }
        // Exactly one same-instant ordering survives per unordered op
        // pair: the mirrored count is (g choose 2) per at-time.
        assert_eq!(lat.mirrored_pruned, 2 * g * (g - 1) / 2);
        // The accounting adds up: enumerated + pruned = the raw product
        // over the enumerated time pairs.
        assert_eq!(
            lat.pair_points + lat.mirrored_pruned + lat.vacuous_pruned,
            lat.pair_time_pairs * g * g
        );
    }

    #[test]
    fn lattice_contains_the_post_repair_crash_window() {
        // The window that motivates flap composites: a transient NIC
        // outage at a heartbeat round, repaired, then an application
        // crash one heartbeat period after the repair — the shape that
        // exposed the PR-1 held-RST bug.
        let m = [
            ms(MilestoneKind::Established, 30),
            ms(MilestoneKind::HbRound(1), 200),
        ];
        let lat = build_lattice(&m);
        let want = "@200 nic-down primary; @1000 nic-up primary; @1200 app-crash primary rst";
        assert!(
            lat.schedules.iter().any(|s| s.to_string() == want),
            "missing lattice point {want}"
        );
    }

    #[test]
    fn vacuity_rules_match_their_soundness_argument() {
        use ChaosAction::*;
        use GrammarOp::Single;
        let nic_flap = |side: Side| GrammarOp::Flap {
            fault: NicDown(side),
            repair: NicUp(side),
        };
        // Dead node: anything on the crashed side is vacuous…
        assert!(vacuous_after(
            Single(Crash(Side::Primary)),
            Single(NicDown(Side::Primary)),
            false
        ));
        assert!(vacuous_after(
            Single(Crash(Side::Primary)),
            Single(AppCrash(Side::Primary, AppCrashMode::CleanupRst)),
            false
        ));
        assert!(vacuous_after(
            Single(Crash(Side::Primary)),
            Single(LinkCut(LinkSel::Primary)),
            false
        ));
        // …including a flap initiated on the dead side…
        assert!(vacuous_after(
            Single(Crash(Side::Primary)),
            nic_flap(Side::Primary),
            false
        ));
        // …but the serial cable and the other side are not.
        assert!(!vacuous_after(
            Single(Crash(Side::Primary)),
            Single(SerialFail),
            false
        ));
        assert!(!vacuous_after(
            Single(Crash(Side::Primary)),
            Single(Crash(Side::Backup)),
            false
        ));
        assert!(!vacuous_after(
            Single(Crash(Side::Primary)),
            nic_flap(Side::Backup),
            false
        ));
        // App death is per-side and mode-independent.
        assert!(vacuous_after(
            Single(AppCrash(Side::Backup, AppCrashMode::SilentNoCleanup)),
            Single(AppCrash(Side::Backup, AppCrashMode::CleanupFin)),
            false
        ));
        assert!(!vacuous_after(
            Single(AppCrash(Side::Backup, AppCrashMode::SilentNoCleanup)),
            Single(Crash(Side::Backup)),
            false
        ));
        // Byzantine mode *changes* are a real new behavior.
        assert!(!vacuous_after(
            Single(ByzantineHb(Side::Primary, ByzantineHbMode::Freeze)),
            Single(ByzantineHb(Side::Primary, ByzantineHbMode::Regress)),
            false
        ));
        assert!(vacuous_after(
            Single(ByzantineHb(Side::Primary, ByzantineHbMode::Freeze)),
            Single(ByzantineHb(Side::Primary, ByzantineHbMode::Freeze)),
            false
        ));
        // Identical flaps collapse only at the same instant; spaced
        // repeats are a double outage and stay.
        assert!(vacuous_after(
            nic_flap(Side::Primary),
            nic_flap(Side::Primary),
            true
        ));
        assert!(!vacuous_after(
            nic_flap(Side::Primary),
            nic_flap(Side::Primary),
            false
        ));
        // A flap never swallows a later one-shot: a permanent NIC-down
        // after a transient one is a new world.
        assert!(!vacuous_after(
            nic_flap(Side::Primary),
            Single(NicDown(Side::Primary)),
            false
        ));
    }

    #[test]
    fn budget_indices_span_and_respect_budget() {
        assert_eq!(budget_indices(10, 20), (0..10).collect::<Vec<_>>());
        let sub = budget_indices(1000, 10);
        assert_eq!(sub.len(), 10);
        assert_eq!(sub[0], 0);
        assert!(sub.windows(2).all(|w| w[0] < w[1]));
        assert!(*sub.last().unwrap() >= 900);
        assert!(budget_indices(0, 5).is_empty());
        assert!(budget_indices(5, 0).is_empty());
    }

    #[test]
    fn summary_folds_violation_classes_once() {
        let mut s = ExploreSummary::default();
        let sched: FaultSchedule = "@100 crash primary".parse().unwrap();
        let case = CaseResult {
            outcome: Outcome::Violation,
            fingerprint: 7,
            verdicts: vec!["hb_both_links_down", "hb_both_links_down"],
            violated: vec!["client-completion"],
        };
        let mut stub = |s: &FaultSchedule| ShrinkResult {
            schedule: s.clone(),
            runs: 0,
            flight: None,
        };
        s.add(0, &sched, &case, &mut stub);
        s.add(1, &sched, &case, &mut stub);
        assert_eq!(s.points, 2);
        assert_eq!(s.violation_points, 2);
        assert_eq!(s.violations.len(), 1, "same class shrunk once");
        // A per-case repeated verdict counts once per point.
        assert_eq!(s.verdict_cells["hb_both_links_down"], 2);
    }
}
